//! The machine simulator ("assembly level" in the paper's terminology).
//!
//! Executes a linked [`AsmProgram`] over the same memory image and output
//! encoding as the IR interpreter, so fault-free runs of the two layers are
//! bit-identical. Fault injection flips a single bit in the *architected
//! destination* of a randomly chosen dynamic instruction — GPR/XMM bits,
//! a condition flag, or the value just written to memory — mirroring
//! PIN-based injectors (paper §4.3).

use crate::mir::{
    flags, AInst, AKind, AOp, AluOp, AsmProgram, FaultDest, MathKind, MemRef, OutKind, Reg, ShiftOp, SseOp, CC,
};
use crate::snapshot::{AsmScratch, AsmSnapshot, AsmSnapshotRecorder, AsmSnapshotSet};
use flowery_ir::inst::{BinOp, CastKind, Intrinsic};
use flowery_ir::interp::memory::{PageMap, TrapKind};
use flowery_ir::interp::snapshot::{AUTO_MAX_SNAPS, AUTO_SITE_CADENCE};
use flowery_ir::interp::{ops, Cadence, ExecConfig, ExecStatus, FaultEffect, Memory, GLOBAL_BASE};
use flowery_ir::module::Module;
use flowery_ir::types::Type;
use serde::{Deserialize, Serialize};

/// Return-address sentinel marking the bottom of the call stack.
pub(crate) const SENTINEL: u64 = u64::MAX - 1;

/// A fault to inject during one machine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsmFaultSpec {
    /// Zero-based index among executed *fault sites* (instructions with an
    /// architected destination).
    pub site_index: u64,
    /// Bit to flip, taken modulo the destination width.
    pub bit: u32,
    /// Optional second bit (multi-bit fault model, paper §2.2); `None` =
    /// the standard single-bit model.
    pub second_bit: Option<u32>,
    /// What happens at the site. Defaults to [`FaultEffect::Bits`], the
    /// pre-existing destination flip. See [`FaultEffect`] for the wider
    /// models (burst, flags, memory cell, control-flow edge).
    #[serde(default)]
    pub effect: FaultEffect,
    /// Region-scoped injection: when set, `site_index` counts only fault
    /// sites whose program index lies in `[lo, hi)` (one `AsmFunc`'s
    /// range), instead of all sites. Used by the incremental engine to
    /// re-sample one region directly. Scoped trials always start from
    /// scratch (snapshot restore points are keyed by the global site
    /// counter) and run on the reference interpreter engine.
    #[serde(default)]
    pub scope: Option<(u32, u32)>,
}

impl AsmFaultSpec {
    /// The standard single-bit fault.
    pub fn single(site_index: u64, bit: u32) -> AsmFaultSpec {
        AsmFaultSpec {
            site_index,
            bit,
            second_bit: None,
            effect: FaultEffect::Bits,
            scope: None,
        }
    }

    /// A double-bit fault in the same destination.
    pub fn double(site_index: u64, bit: u32, second: u32) -> AsmFaultSpec {
        AsmFaultSpec {
            site_index,
            bit,
            second_bit: Some(second),
            effect: FaultEffect::Bits,
            scope: None,
        }
    }

    /// A fault with an explicit effect.
    pub fn with_effect(site_index: u64, bit: u32, effect: FaultEffect) -> AsmFaultSpec {
        AsmFaultSpec { site_index, bit, second_bit: None, effect, scope: None }
    }

    /// The same fault, restricted to sites in the program range `[lo, hi)`.
    pub fn scoped(mut self, lo: u32, hi: u32) -> AsmFaultSpec {
        self.scope = Some((lo, hi));
        self
    }
}

/// Result of a machine execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachResult {
    pub status: ExecStatus,
    /// Tagged output records, same encoding as the IR interpreter.
    pub output: Vec<u8>,
    /// All executed instructions.
    pub dyn_insts: u64,
    /// Executed instructions that were fault sites.
    pub fault_sites: u64,
    /// Modelled cycle count (the §7.2 overhead metric).
    pub cycles: u64,
    /// Program index of the instruction the fault landed on, if any.
    pub injected_inst: Option<u32>,
    /// Per-instruction execution counts (when profiling).
    pub profile: Option<Vec<u64>>,
}

impl MachResult {
    pub fn matches_output(&self, golden: &MachResult) -> bool {
        self.status == golden.status && self.output == golden.output
    }
}

/// Reusable machine for one program+module pair. Which engine executes
/// trials is chosen per run by [`ExecConfig::executor`]; the threaded-code
/// translation is built lazily on first compiled-mode run and reused for
/// every trial after that.
pub struct Machine<'p> {
    pub(crate) program: &'p AsmProgram,
    pub(crate) module: &'p Module,
    compiled: std::sync::OnceLock<crate::exec::CompiledProgram>,
    /// Pristine boot image shared by scratch trials (see [`Machine::base_mem`]).
    base: std::sync::OnceLock<Memory>,
}

impl<'p> Machine<'p> {
    pub fn new(module: &'p Module, program: &'p AsmProgram) -> Machine<'p> {
        Machine {
            program,
            module,
            compiled: std::sync::OnceLock::new(),
            base: std::sync::OnceLock::new(),
        }
    }

    /// The threaded-code translation of this program, built on first use.
    pub(crate) fn compiled(&self) -> &crate::exec::CompiledProgram {
        self.compiled.get_or_init(|| crate::exec::CompiledProgram::build(self.program))
    }

    /// The pristine boot image for `config`'s memory geometry, built once
    /// and shared by every scratch trial — the same image
    /// [`Machine::run_fast_forward`] gets from its snapshot set's base.
    /// `None` when `config` asks for a different geometry than the cached
    /// image (first caller wins); such callers build fresh.
    fn base_mem(&self, config: &ExecConfig) -> Option<&Memory> {
        let base = self
            .base
            .get_or_init(|| Memory::new(self.module, config.mem_size, config.stack_size));
        (base.size() == config.mem_size && base.stack_limit() == config.mem_size - config.stack_size).then_some(base)
    }

    /// Execute from `main` under `config`, optionally injecting a fault.
    pub fn run(&self, config: &ExecConfig, fault: Option<AsmFaultSpec>) -> MachResult {
        let mem = Memory::new(self.module, config.mem_size, config.stack_size);
        let (st, ip) = self.boot(mem, Vec::new(), config);
        self.exec(config, fault, st, ip, None).0
    }

    /// Like [`Machine::run`], but reuses `scratch`'s buffers across trials:
    /// the output vector, and — when the geometries line up — the memory
    /// image, reverted to the pristine boot image by a dirty-page reset
    /// instead of a fresh multi-megabyte allocation and clear per trial.
    /// Sound for the same reason snapshot fast-forward's reuse is: a page
    /// never marked dirty is byte-identical to the base image.
    pub fn run_scratch(
        &self,
        config: &ExecConfig,
        fault: Option<AsmFaultSpec>,
        scratch: &mut AsmScratch,
    ) -> MachResult {
        let mem = match self.base_mem(config) {
            Some(base) => {
                let recycled = scratch
                    .mem
                    .take()
                    .filter(|m| m.size() == base.size() && m.stack_limit() == base.stack_limit());
                match recycled {
                    Some(mut m) => {
                        m.reset_to(base, &PageMap::new());
                        m
                    }
                    None => base.clone(),
                }
            }
            None => Memory::new(self.module, config.mem_size, config.stack_size),
        };
        let output = std::mem::take(&mut scratch.output);
        let (st, ip) = self.boot(mem, output, config);
        let (res, mem) = self.exec(config, fault, st, ip, None);
        scratch.mem = Some(mem);
        res
    }

    /// One fault-free run that captures a snapshot every `interval` dynamic
    /// instructions. When `config.profile` is set the snapshots carry the
    /// profile accumulator, so profiled trials can fast-forward too.
    pub fn capture_snapshots(&self, config: &ExecConfig, interval: u64) -> AsmSnapshotSet {
        self.capture_with(config, Cadence::Insts(interval), None)
    }

    /// One fault-free run with a self-tuning site-spaced cadence: start at
    /// one snapshot per [`AUTO_SITE_CADENCE`] fault sites and widen whenever
    /// the set outgrows [`AUTO_MAX_SNAPS`]. Site spacing matches the
    /// uniform-over-sites trial distribution, so restore points land where
    /// the trials do.
    pub fn capture_snapshots_auto(&self, config: &ExecConfig) -> AsmSnapshotSet {
        self.capture_with(config, Cadence::Sites(AUTO_SITE_CADENCE), Some(AUTO_MAX_SNAPS))
    }

    fn capture_with(&self, config: &ExecConfig, cadence: Cadence, max_snaps: Option<usize>) -> AsmSnapshotSet {
        let base = Memory::new(self.module, config.mem_size, config.stack_size);
        let mut rec = AsmSnapshotRecorder::new(self.program.insts.len(), cadence, config.snapshot_budget, max_snaps);
        let (st, ip) = self.boot(base.clone(), Vec::new(), config);
        let (golden, _mem) = self.exec(config, None, st, ip, Some(&mut rec));
        AsmSnapshotSet {
            base,
            golden,
            cadence: rec.final_cadence(),
            snaps: rec.snaps,
            first_exec: rec.first_exec,
            shared_snaps: 0,
        }
    }

    /// Build this variant's snapshot set by *sharing* the golden prefix of
    /// its raw program's set: every raw snapshot taken before the first
    /// dynamic instruction at which the two programs can diverge is also a
    /// valid snapshot of this program (hardening only changes code, never
    /// the shared prefix of the trace), so only the suffix past the
    /// divergence point is re-executed — and that execution starts *from*
    /// the last shared snapshot, not from scratch.
    ///
    /// Returns `None` when nothing can be shared: profiled captures (the
    /// per-position profile vector cannot be translated between programs),
    /// mismatched memory geometry or entry points, a raw set without a
    /// first-execution profile, or divergence before the first snapshot.
    pub fn capture_snapshots_from(
        &self,
        config: &ExecConfig,
        raw: (&Module, &AsmProgram),
        raw_set: &AsmSnapshotSet,
    ) -> Option<AsmSnapshotSet> {
        let (raw_module, raw_program) = raw;
        if config.profile {
            return None;
        }
        if raw_set.base.size() != config.mem_size || raw_set.base.stack_limit() != config.mem_size - config.stack_size {
            return None;
        }
        let first_exec = raw_set.first_exec.as_ref()?;
        // The variant may *extend* the raw global list (Flowery appends its
        // expectation/guard cells); existing globals keep their addresses
        // and the appended ones are only referenced by appended code.
        if self.module.globals.len() < raw_module.globals.len()
            || self.module.globals[..raw_module.globals.len()] != raw_module.globals[..]
            || raw_program.main_entry != self.program.main_entry
        {
            return None;
        }
        let d = divergence_dyn(&raw_program.insts, &self.program.insts, first_exec)?;
        let shared: Vec<AsmSnapshot> = raw_set
            .snaps
            .iter()
            .take_while(|s| s.dyn_insts <= d && (s.ip as usize) < self.program.insts.len())
            .map(|s| AsmSnapshot {
                dyn_insts: s.dyn_insts,
                fault_sites: s.fault_sites,
                cycles: s.cycles,
                ip: s.ip,
                regs: s.regs,
                output_len: s.output_len,
                profile: None,
                pages: s.pages.clone(),
            })
            .collect();
        if shared.is_empty() {
            return None;
        }
        let last = shared.last().unwrap();
        // Appended globals live in [raw_end, var_end). A raw overlay page
        // covering that range holds raw heap bytes (zeros), not the
        // variant's initializers — restoring it would clobber them, so
        // such sets cannot be shared.
        let raw_end = Memory::globals_end(raw_module);
        let var_end = Memory::globals_end(self.module);
        if var_end > raw_end {
            let page = flowery_ir::interp::PAGE_SIZE;
            let lo = (raw_end / page) as u32;
            let hi = ((var_end - 1) / page) as u32;
            if last.pages.keys().any(|&p| (lo..=hi).contains(&p)) {
                return None;
            }
        }
        let base = Memory::new(self.module, config.mem_size, config.stack_size);
        let mut mem = base.clone();
        mem.reset_to(&base, &last.pages);
        // The restored overlay pages must not be re-copied by the first
        // recorder sync — they are already owned by the shared snapshots.
        mem.drain_dirty_pages();
        let mut output = Vec::new();
        output.extend_from_slice(&raw_set.golden.output[..last.output_len]);
        let st = State {
            regs: last.regs,
            mem,
            output,
            dyn_insts: last.dyn_insts,
            fault_sites: last.fault_sites,
            cycles: last.cycles,
            injected_inst: None,
            profile: None,
            last_ip: 0,
            last_mem_write: None,
        };
        let ip = last.ip;
        let mut rec = AsmSnapshotRecorder::from_shared(raw_set.cadence, config.snapshot_budget, None, shared);
        let (golden, _mem) = self.exec(config, None, st, ip, Some(&mut rec));
        let shared_snaps = rec.snaps.iter().take_while(|s| s.dyn_insts <= d).count();
        Some(AsmSnapshotSet {
            base,
            golden,
            cadence: rec.final_cadence(),
            snaps: rec.snaps,
            first_exec: None,
            shared_snaps,
        })
    }

    /// Run one faulty trial, restoring the nearest snapshot at-or-before
    /// the injection site instead of executing the golden prefix. Returns
    /// the result plus the number of dynamic instructions skipped.
    ///
    /// The result is bit-identical to `run(config, Some(fault))`.
    pub fn run_fast_forward(
        &self,
        config: &ExecConfig,
        fault: AsmFaultSpec,
        set: &AsmSnapshotSet,
        scratch: &mut AsmScratch,
    ) -> (MachResult, u64) {
        let mut mem = scratch
            .mem
            .take()
            .filter(|m| m.size() == set.base.size())
            .unwrap_or_else(|| set.base.clone());
        let mut output = std::mem::take(&mut scratch.output);
        output.clear();
        // A profiled trial can only restore a snapshot that carries the
        // profile accumulator; otherwise it falls back to a scratch start.
        // Scoped faults index a region-local site counter that snapshots
        // (keyed by the global counter) cannot seed: always start scratch.
        let snap = if fault.scope.is_none() {
            set.nearest(fault.site_index)
        } else {
            None
        };
        let (st, ip) = match snap {
            Some(snap) if !config.profile || snap.profile.is_some() => {
                mem.reset_to(&set.base, &snap.pages);
                output.extend_from_slice(&set.golden.output[..snap.output_len]);
                let st = State {
                    regs: snap.regs,
                    mem,
                    output,
                    dyn_insts: snap.dyn_insts,
                    fault_sites: snap.fault_sites,
                    cycles: snap.cycles,
                    injected_inst: None,
                    profile: if config.profile { snap.profile.clone() } else { None },
                    last_ip: 0,
                    last_mem_write: None,
                };
                (st, snap.ip)
            }
            _ => {
                // Site earlier than the first snapshot: run from the start,
                // but still reuse the scratch image via a dirty-page reset.
                mem.reset_to(&set.base, &PageMap::new());
                self.boot(mem, output, config)
            }
        };
        let skipped = st.dyn_insts;
        let (res, mem) = self.exec(config, Some(fault), st, ip, None);
        scratch.mem = Some(mem);
        (res, skipped)
    }

    /// Fresh machine state: zeroed registers, sentinel return address
    /// pushed for `main`, entry ip.
    fn boot(&self, mem: Memory, mut output: Vec<u8>, config: &ExecConfig) -> (State, u32) {
        output.clear();
        let mut st = State {
            regs: [0u64; Reg::COUNT],
            mem,
            output,
            dyn_insts: 0,
            fault_sites: 0,
            cycles: 0,
            injected_inst: None,
            profile: config.profile.then(|| vec![0u64; self.program.insts.len()]),
            last_ip: 0,
            last_mem_write: None,
        };
        st.regs[Reg::Rsp.index()] = st.mem.initial_sp();
        // Push the sentinel return address for main.
        st.regs[Reg::Rsp.index()] -= 8;
        let sp = st.regs[Reg::Rsp.index()];
        st.mem.store(sp, 8, SENTINEL).expect("initial stack in bounds");
        (st, self.program.main_entry)
    }

    /// Execute from `st`/`ip` (fresh or restored), optionally capturing
    /// snapshots, on the engine [`ExecConfig::executor`] selects. Returns
    /// the result plus the memory image so callers can recycle it.
    fn exec(
        &self,
        config: &ExecConfig,
        fault: Option<AsmFaultSpec>,
        st: State,
        ip: u32,
        recorder: Option<&mut AsmSnapshotRecorder>,
    ) -> (MachResult, Memory) {
        // Scoped faults count a region-local site index, which only the
        // reference interpreter implements — region bookkeeping is not a
        // hot-path concern, so the threaded-code engine stays oblivious.
        if fault.is_some_and(|f| f.scope.is_some()) {
            return self.exec_interp(config, fault, st, ip, recorder);
        }
        crate::exec::executor_for(config.executor).exec(crate::exec::TrialRun {
            machine: self,
            config,
            fault,
            st,
            ip,
            recorder,
        })
    }

    /// The interpreter engine's dispatch loop (the reference semantics the
    /// threaded-code engine in [`crate::exec`] must match bit-for-bit).
    pub(crate) fn exec_interp(
        &self,
        config: &ExecConfig,
        fault: Option<AsmFaultSpec>,
        mut st: State,
        mut ip: u32,
        mut recorder: Option<&mut AsmSnapshotRecorder>,
    ) -> (MachResult, Memory) {
        let insts = &self.program.insts;
        // Region-local site counter for scoped faults (see
        // [`AsmFaultSpec::scope`]).
        let mut scope_sites: u64 = 0;

        let status = 'exec: loop {
            // ---- snapshot hook: `st.dyn_insts` executed, `ip` next -------
            if let Some(rec) = recorder.as_deref_mut() {
                if rec.due(st.dyn_insts, st.fault_sites) {
                    rec.capture(
                        st.dyn_insts,
                        st.fault_sites,
                        st.cycles,
                        ip,
                        st.regs,
                        st.output.len(),
                        st.profile.as_ref(),
                        &mut st.mem,
                    );
                }
            }

            if ip as usize >= insts.len() {
                break 'exec ExecStatus::Trapped(TrapKind::BadControl);
            }
            if let Some(rec) = recorder.as_deref_mut() {
                rec.note_exec(ip, st.dyn_insts);
            }
            st.dyn_insts += 1;
            if st.dyn_insts > config.max_dyn_insts {
                break 'exec ExecStatus::Trapped(TrapKind::InstLimit);
            }
            let inst = &insts[ip as usize];
            if let Some(p) = st.profile.as_mut() {
                p[ip as usize] += 1;
            }
            st.cycles += inst.kind.cycles();

            let is_site = inst.kind.is_fault_site();
            let in_scope = fault.and_then(|f| f.scope).is_some_and(|(lo, hi)| (lo..hi).contains(&ip));
            let inject_now = is_site
                && fault.is_some_and(|f| match f.scope {
                    None => st.fault_sites == f.site_index,
                    Some(_) => in_scope && scope_sites == f.site_index,
                });

            match self.step(&mut st, inst, &mut ip, config) {
                Ok(()) => {}
                Err(Halt::Status(s)) => break 'exec s,
            }

            if is_site {
                if inject_now {
                    let spec = fault.unwrap();
                    st.injected_inst = Some(st.last_ip);
                    self.apply_fault(&mut st, inst, spec);
                    if let FaultEffect::Jump { target } = spec.effect {
                        // Control-flow edge corruption: the site's own
                        // effects stand, then control restarts at an
                        // arbitrary program position.
                        ip = (target % insts.len() as u64) as u32;
                    }
                }
                st.fault_sites += 1;
                if in_scope {
                    scope_sites += 1;
                }
            }

            if st.output.len() > config.max_output {
                break 'exec ExecStatus::Trapped(TrapKind::OutputFlood);
            }
        };

        st.finish(status)
    }

    /// Golden run with profiling.
    pub fn profile_run(&self, config: &ExecConfig) -> MachResult {
        let cfg = ExecConfig { profile: true, ..config.clone() };
        self.run(&cfg, None)
    }

    /// Fault-free dynamic site trace: `trace[i]` is the instruction index
    /// of the `i`-th fault site the golden run executes — the map from a
    /// `FaultSpec::site_index` to the static instruction a fault would
    /// land on. Stops recording at `cap` entries (later sites simply go
    /// unmapped); the run itself always completes so the trace prefix is
    /// exact.
    pub fn site_trace(&self, config: &ExecConfig, cap: usize) -> Vec<u32> {
        let mem = Memory::new(self.module, config.mem_size, config.stack_size);
        let (mut st, mut ip) = self.boot(mem, Vec::new(), config);
        let insts = &self.program.insts;
        let mut trace = Vec::new();
        loop {
            if ip as usize >= insts.len() {
                break;
            }
            st.dyn_insts += 1;
            if st.dyn_insts > config.max_dyn_insts {
                break;
            }
            let inst = &insts[ip as usize];
            let is_site = inst.kind.is_fault_site();
            let cur = ip;
            match self.step(&mut st, inst, &mut ip, config) {
                Ok(()) => {}
                Err(Halt::Status(_)) => break,
            }
            if is_site {
                if trace.len() >= cap {
                    break;
                }
                trace.push(cur);
            }
            if st.output.len() > config.max_output {
                break;
            }
        }
        trace
    }

    fn step(&self, st: &mut State, inst: &AInst, ip: &mut u32, config: &ExecConfig) -> Result<(), Halt> {
        st.last_ip = *ip;
        st.last_mem_write = None;
        let next = *ip + 1;
        match &inst.kind {
            AKind::Mov { w, dst, src } => {
                let v = st.read(*src, *w)?;
                st.write(*dst, *w, v)?;
            }
            AKind::MovSx { wd, ws, dst, src } => {
                let v = st.read(*src, *ws)?;
                let ty = width_ty(*ws);
                let ext = ty.sext(v) as u64;
                st.write_reg(*dst, *wd, ext);
            }
            AKind::Lea { dst, mem } => {
                let addr = st.effective(*mem);
                st.write_reg(*dst, 8, addr);
            }
            AKind::Alu { op, w, dst, src } => {
                let a = st.read_reg(*dst, *w);
                let b = st.read(*src, *w)?;
                let ir_op = match op {
                    AluOp::Add => BinOp::Add,
                    AluOp::Sub => BinOp::Sub,
                    AluOp::Imul => BinOp::Mul,
                    AluOp::And => BinOp::And,
                    AluOp::Or => BinOp::Or,
                    AluOp::Xor => BinOp::Xor,
                };
                let ty = width_ty(*w);
                let r = ops::eval_bin(ir_op, ty, a, b).expect("non-trapping alu");
                st.set_arith_flags(*op, ty, a, b, r);
                st.write_reg(*dst, *w, r);
                // Frame pointer sanity: the stack must stay in its segment.
                if *dst == Reg::Rsp && st.regs[Reg::Rsp.index()] < st.mem.stack_limit() {
                    return Err(Halt::Status(ExecStatus::Trapped(TrapKind::StackOverflow)));
                }
            }
            AKind::Shift { op, w, dst, amt } => {
                let a = st.read_reg(*dst, *w);
                let b = st.read(*amt, 1)?;
                let ir_op = match op {
                    ShiftOp::Shl => BinOp::Shl,
                    ShiftOp::Shr => BinOp::LShr,
                    ShiftOp::Sar => BinOp::AShr,
                };
                let ty = width_ty(*w);
                let r = ops::eval_bin(ir_op, ty, a, b).expect("non-trapping shift");
                st.set_logic_flags(ty, r);
                st.write_reg(*dst, *w, r);
            }
            AKind::Cqo { .. } => {
                let rax = st.regs[Reg::Rax.index()];
                st.regs[Reg::Rdx.index()] = ((rax as i64) >> 63) as u64;
            }
            AKind::ZeroRdx => st.regs[Reg::Rdx.index()] = 0,
            AKind::Div { signed, src, .. } => {
                let b = st.read(*src, 8)?;
                if *signed {
                    let a = st.regs[Reg::Rax.index()] as i64;
                    let bs = b as i64;
                    if bs == 0 || (a == i64::MIN && bs == -1) {
                        return Err(Halt::Status(ExecStatus::Trapped(TrapKind::DivFault)));
                    }
                    st.regs[Reg::Rax.index()] = (a / bs) as u64;
                    st.regs[Reg::Rdx.index()] = (a % bs) as u64;
                } else {
                    if b == 0 {
                        return Err(Halt::Status(ExecStatus::Trapped(TrapKind::DivFault)));
                    }
                    let a = st.regs[Reg::Rax.index()];
                    st.regs[Reg::Rax.index()] = a / b;
                    st.regs[Reg::Rdx.index()] = a % b;
                }
            }
            AKind::Cmp { w, lhs, rhs } => {
                let a = st.read(*lhs, *w)?;
                let b = st.read(*rhs, *w)?;
                let ty = width_ty(*w);
                let r = ops::eval_bin(BinOp::Sub, ty, a, b).expect("sub cannot trap");
                st.set_arith_flags(AluOp::Sub, ty, a, b, r);
            }
            AKind::Test { w, lhs, rhs } => {
                let a = st.read(*lhs, *w)?;
                let b = st.read(*rhs, *w)?;
                let ty = width_ty(*w);
                let r = ty.canon(a & b);
                st.set_logic_flags(ty, r);
            }
            AKind::SetCC { cc, dst } => {
                let v = st.cond(*cc) as u64;
                st.write_reg(*dst, 1, v);
            }
            AKind::Cmov { cc, w, dst, src } => {
                if st.cond(*cc) {
                    let v = st.read(*src, *w)?;
                    st.write_reg(*dst, *w, v);
                }
            }
            AKind::Jcc { cc, target } => {
                if st.cond(*cc) {
                    *ip = *target;
                    return Ok(());
                }
            }
            AKind::Jmp { target } => {
                *ip = *target;
                return Ok(());
            }
            AKind::Call { target, .. } => {
                let sp = st.regs[Reg::Rsp.index()].wrapping_sub(8);
                if sp < st.mem.stack_limit() {
                    return Err(Halt::Status(ExecStatus::Trapped(TrapKind::StackOverflow)));
                }
                st.store_mem(sp, 8, next as u64)?;
                st.regs[Reg::Rsp.index()] = sp;
                *ip = *target;
                return Ok(());
            }
            AKind::Ret => {
                let sp = st.regs[Reg::Rsp.index()];
                let ra = st.load_mem(sp, 8)?;
                st.regs[Reg::Rsp.index()] = sp.wrapping_add(8);
                if ra == SENTINEL {
                    return Err(Halt::Status(ExecStatus::Completed(st.regs[Reg::Rax.index()])));
                }
                if ra as usize >= self.program.insts.len() {
                    return Err(Halt::Status(ExecStatus::Trapped(TrapKind::BadControl)));
                }
                *ip = ra as u32;
                return Ok(());
            }
            AKind::Push { src } => {
                let v = st.read(*src, 8)?;
                let sp = st.regs[Reg::Rsp.index()].wrapping_sub(8);
                if sp < st.mem.stack_limit() {
                    return Err(Halt::Status(ExecStatus::Trapped(TrapKind::StackOverflow)));
                }
                st.store_mem(sp, 8, v)?;
                st.regs[Reg::Rsp.index()] = sp;
            }
            AKind::Pop { dst } => {
                let sp = st.regs[Reg::Rsp.index()];
                let v = st.load_mem(sp, 8)?;
                st.regs[Reg::Rsp.index()] = sp.wrapping_add(8);
                st.write_reg(*dst, 8, v);
            }
            AKind::MovSd { w, dst, src } => {
                let v = st.read(*src, *w)?;
                st.write(*dst, *w, v)?;
            }
            AKind::Sse { op, dst, src } => {
                let (ir_op, ty) = match op {
                    SseOp::AddSd => (BinOp::FAdd, Type::F64),
                    SseOp::SubSd => (BinOp::FSub, Type::F64),
                    SseOp::MulSd => (BinOp::FMul, Type::F64),
                    SseOp::DivSd => (BinOp::FDiv, Type::F64),
                    SseOp::AddSs => (BinOp::FAdd, Type::F32),
                    SseOp::SubSs => (BinOp::FSub, Type::F32),
                    SseOp::MulSs => (BinOp::FMul, Type::F32),
                    SseOp::DivSs => (BinOp::FDiv, Type::F32),
                };
                let w = ty.size() as u8;
                let a = st.read_reg(*dst, w);
                let b = st.read(*src, w)?;
                let r = ops::eval_bin(ir_op, ty, a, b).expect("float ops cannot trap");
                st.write_reg(*dst, w, r);
            }
            AKind::Ucomi { w, lhs, rhs } => {
                let a = st.read_reg(*lhs, *w);
                let b = st.read(*rhs, *w)?;
                let (x, y) = if *w == 4 {
                    (f32::from_bits(a as u32) as f64, f32::from_bits(b as u32) as f64)
                } else {
                    (f64::from_bits(a), f64::from_bits(b))
                };
                let mut fl = 0u64;
                if x.is_nan() || y.is_nan() {
                    fl |= flags::ZF | flags::CF;
                } else if x == y {
                    fl |= flags::ZF;
                } else if x < y {
                    fl |= flags::CF;
                }
                st.regs[Reg::Rflags.index()] = fl;
            }
            AKind::Cvtsi2f { wf, dst, src } => {
                let v = st.read(*src, 8)?;
                let r = ops::eval_cast(CastKind::SiToFp, Type::I64, width_fty(*wf), v);
                st.write_reg(*dst, 8, r);
            }
            AKind::Cvtf2si { wf, dst, src } => {
                let v = st.read(*src, *wf)?;
                let r = ops::eval_cast(CastKind::FpToSi, width_fty(*wf), Type::I64, v);
                st.write_reg(*dst, 8, r);
            }
            AKind::Cvtff { wd, dst, src } => {
                let v = st.read_reg(*src, 8);
                let (from, to) = if *wd == 8 { (Type::F32, Type::F64) } else { (Type::F64, Type::F32) };
                let r = ops::eval_cast(CastKind::FpCast, from, to, v);
                st.write_reg(*dst, 8, r);
            }
            AKind::MovQ { w, dst, src } => {
                let v = st.read_reg(*src, *w);
                st.write_reg(*dst, *w, v);
            }
            AKind::Math { kind, dst, a, b } => {
                let intr = match kind {
                    MathKind::Sqrt => Intrinsic::Sqrt,
                    MathKind::Sin => Intrinsic::Sin,
                    MathKind::Cos => Intrinsic::Cos,
                    MathKind::Exp => Intrinsic::Exp,
                    MathKind::Log => Intrinsic::Log,
                    MathKind::Fabs => Intrinsic::Fabs,
                    MathKind::Floor => Intrinsic::Floor,
                    MathKind::Pow => Intrinsic::Pow,
                };
                let mut args = vec![st.regs[a.index()]];
                if let Some(b) = b {
                    args.push(st.regs[b.index()]);
                }
                let r = ops::eval_math(intr, &args);
                st.write_reg(*dst, 8, r);
            }
            AKind::Out { kind, src } => {
                let v = st.read(*src, 8)?;
                match kind {
                    OutKind::I64 => {
                        st.output.push(1);
                        st.output.extend_from_slice(&v.to_le_bytes());
                    }
                    OutKind::F64 => {
                        st.output.push(2);
                        st.output.extend_from_slice(&v.to_le_bytes());
                    }
                    OutKind::Byte => {
                        st.output.push(3);
                        st.output.push(v as u8);
                    }
                }
                let _ = config;
            }
            AKind::DetectTrap => {
                return Err(Halt::Status(ExecStatus::Detected));
            }
        }
        *ip = next;
        Ok(())
    }
}

pub(crate) enum Halt {
    Status(ExecStatus),
}

pub(crate) struct State {
    pub(crate) regs: [u64; Reg::COUNT],
    pub(crate) mem: Memory,
    pub(crate) output: Vec<u8>,
    pub(crate) dyn_insts: u64,
    pub(crate) fault_sites: u64,
    pub(crate) cycles: u64,
    pub(crate) injected_inst: Option<u32>,
    pub(crate) profile: Option<Vec<u64>>,
    pub(crate) last_ip: u32,
    /// (addr, width) of the most recent memory write, for MemVal injection.
    pub(crate) last_mem_write: Option<(u64, u8)>,
}

// Manual Default-ish construction is in Machine::boot; State has extra
// transient fields initialised there.
impl State {
    /// Consume the state into a result, handing the memory image back for
    /// reuse.
    pub(crate) fn finish(self, status: ExecStatus) -> (MachResult, Memory) {
        (
            MachResult {
                status,
                output: self.output,
                dyn_insts: self.dyn_insts,
                fault_sites: self.fault_sites,
                cycles: self.cycles,
                injected_inst: self.injected_inst,
                profile: self.profile,
            },
            self.mem,
        )
    }

    /// Effective address of a memory reference. Absolute references skip
    /// the base-register read entirely (the compiled engine bakes the same
    /// split into each handler at translation time).
    #[inline(always)]
    fn effective(&self, m: MemRef) -> u64 {
        match m.base {
            Some(r) => self.regs[r.index()].wrapping_add_signed(m.disp),
            None => m.disp as u64,
        }
    }

    #[inline(always)]
    fn read_reg(&self, r: Reg, w: u8) -> u64 {
        width_ty(w).canon(self.regs[r.index()])
    }

    #[inline(always)]
    fn write_reg(&mut self, r: Reg, w: u8, v: u64) {
        self.regs[r.index()] = width_ty(w).canon(v);
    }

    #[inline(always)]
    fn read(&mut self, op: AOp, w: u8) -> Result<u64, Halt> {
        match op {
            AOp::Reg(r) => Ok(self.read_reg(r, w)),
            AOp::Imm(v) => Ok(width_ty(w).canon(v as u64)),
            AOp::Mem(m) => {
                let addr = self.effective(m);
                self.load_mem(addr, w)
            }
        }
    }

    fn write(&mut self, op: AOp, w: u8, v: u64) -> Result<(), Halt> {
        match op {
            AOp::Reg(r) => {
                self.write_reg(r, w, v);
                Ok(())
            }
            AOp::Mem(m) => {
                let addr = self.effective(m);
                self.store_mem(addr, w, v)
            }
            AOp::Imm(_) => unreachable!("immediate destination"),
        }
    }

    #[inline(always)]
    pub(crate) fn load_mem(&mut self, addr: u64, w: u8) -> Result<u64, Halt> {
        self.mem.load(addr, w as u64).map_err(|t| Halt::Status(ExecStatus::Trapped(t)))
    }

    #[inline(always)]
    pub(crate) fn store_mem(&mut self, addr: u64, w: u8, v: u64) -> Result<(), Halt> {
        self.last_mem_write = Some((addr, w));
        self.mem
            .store(addr, w as u64, v)
            .map_err(|t| Halt::Status(ExecStatus::Trapped(t)))
    }

    pub(crate) fn set_arith_flags(&mut self, op: AluOp, ty: Type, a: u64, b: u64, r: u64) {
        let mut fl = 0u64;
        let bits = ty.bits();
        if r == 0 {
            fl |= flags::ZF;
        }
        if (r >> (bits - 1)) & 1 == 1 {
            fl |= flags::SF;
        }
        match op {
            AluOp::Add => {
                if r < a {
                    fl |= flags::CF;
                }
                let (sa, sb, sr) = (ty.sext(a), ty.sext(b), ty.sext(r));
                if (sa >= 0) == (sb >= 0) && (sr >= 0) != (sa >= 0) {
                    fl |= flags::OF;
                }
            }
            AluOp::Sub => {
                if a < b {
                    fl |= flags::CF;
                }
                let (sa, sb, sr) = (ty.sext(a), ty.sext(b), ty.sext(r));
                if (sa >= 0) != (sb >= 0) && (sr >= 0) != (sa >= 0) {
                    fl |= flags::OF;
                }
            }
            _ => {}
        }
        self.regs[Reg::Rflags.index()] = fl;
    }

    pub(crate) fn set_logic_flags(&mut self, ty: Type, r: u64) {
        let mut fl = 0u64;
        if r == 0 {
            fl |= flags::ZF;
        }
        if (r >> (ty.bits() - 1)) & 1 == 1 {
            fl |= flags::SF;
        }
        self.regs[Reg::Rflags.index()] = fl;
    }

    #[inline(always)]
    pub(crate) fn cond(&self, cc: CC) -> bool {
        let fl = self.regs[Reg::Rflags.index()];
        let zf = fl & flags::ZF != 0;
        let sf = fl & flags::SF != 0;
        let of = fl & flags::OF != 0;
        let cf = fl & flags::CF != 0;
        match cc {
            CC::E => zf,
            CC::Ne => !zf,
            CC::L => sf != of,
            CC::Le => zf || sf != of,
            CC::G => !zf && sf == of,
            CC::Ge => sf == of,
            CC::B => cf,
            CC::Be => cf || zf,
            CC::A => !cf && !zf,
            CC::Ae => !cf,
        }
    }
}

impl Machine<'_> {
    /// Apply a fault to the instruction's architected destination (or, for
    /// the wider effects, to flags / a memory cell). Control-flow redirects
    /// are handled by the dispatch loop, which owns `ip`.
    pub(crate) fn apply_fault(&self, st: &mut State, inst: &AInst, spec: AsmFaultSpec) {
        // Bit mask within a `bits`-wide destination: the classic one-or-two
        // bit flip, or a contiguous burst for multi-bit upsets.
        let mask = |bits: u32| -> u64 {
            match spec.effect {
                FaultEffect::Burst { width } => {
                    let mut m = 0u64;
                    for k in 0..width as u32 {
                        m ^= 1u64 << ((spec.bit + k) % bits);
                    }
                    m
                }
                _ => {
                    let mut m = 1u64 << (spec.bit % bits);
                    if let Some(b2) = spec.second_bit {
                        m |= 1u64 << (b2 % bits);
                    }
                    m
                }
            }
        };
        match spec.effect {
            FaultEffect::Bits | FaultEffect::Burst { .. } => match inst.kind.fault_dest() {
                FaultDest::Gpr(r, w) => {
                    st.regs[r.index()] ^= mask(w as u32 * 8);
                }
                FaultDest::Flags => {
                    let n = flags::CONDITION_BITS.len();
                    let mut which = flags::CONDITION_BITS[(spec.bit as usize) % n];
                    match spec.effect {
                        FaultEffect::Burst { width } => {
                            for k in 1..width as usize {
                                which ^= flags::CONDITION_BITS[(spec.bit as usize + k) % n];
                            }
                        }
                        _ => {
                            if let Some(b2) = spec.second_bit {
                                which |= flags::CONDITION_BITS[(b2 as usize) % n];
                            }
                        }
                    }
                    st.regs[Reg::Rflags.index()] ^= which;
                }
                FaultDest::MemVal(w) => {
                    if let Some((addr, ww)) = st.last_mem_write {
                        let w = w.min(ww);
                        if let Ok(v) = st.mem.load(addr, w as u64) {
                            let _ = st.mem.store(addr, w as u64, v ^ mask(w as u32 * 8));
                        }
                    }
                }
                FaultDest::None => {}
            },
            FaultEffect::Flags => {
                // Flags/PC corruption model: hit the condition bits no
                // matter what the site instruction writes.
                let n = flags::CONDITION_BITS.len();
                let mut which = flags::CONDITION_BITS[(spec.bit as usize) % n];
                if let Some(b2) = spec.second_bit {
                    which |= flags::CONDITION_BITS[(b2 as usize) % n];
                }
                st.regs[Reg::Rflags.index()] ^= which;
            }
            FaultEffect::Mem { offset } => {
                // Same deterministic cell selection as the IR interpreter:
                // globals segment when present, else the stack segment.
                let globals_end = Memory::globals_end(self.module);
                let (lo, hi) = if globals_end > GLOBAL_BASE {
                    (GLOBAL_BASE, globals_end)
                } else {
                    (st.mem.stack_limit(), st.mem.size())
                };
                let addr = lo + offset % (hi - lo);
                if let Ok(b) = st.mem.load(addr, 1) {
                    let _ = st.mem.store(addr, 1, b ^ (1u64 << (spec.bit % 8)));
                }
            }
            FaultEffect::Jump { .. } => {} // dispatch loop redirects ip
        }
    }
}

/// First dynamic instruction (snapshot-hook convention: that instruction
/// has not yet started) at which the variant program's golden trace can
/// diverge from the raw program's, given the raw capture's first-execution
/// profile. Until a *statically different* program position executes, the
/// two traces are identical — instructions compare equal by value, jump
/// targets included, so identical state steps identically. `u64::MAX` means
/// the raw trace never reaches a divergent position; `None` means the
/// divergence precedes any execution we could share.
fn divergence_dyn(raw: &[AInst], var: &[AInst], first_exec: &[u64]) -> Option<u64> {
    if first_exec.len() != raw.len() {
        return None;
    }
    let n = raw.len().min(var.len());
    let d_static = (0..n).find(|&i| raw[i] != var[i]).unwrap_or(n);
    // The trace diverges the first time the raw run executes a position at
    // or past the first static difference (positions past `var`'s end
    // included: the raw run reaching them has no variant counterpart).
    Some(first_exec[d_static..].iter().copied().min().unwrap_or(u64::MAX))
}

pub(crate) fn width_ty(w: u8) -> Type {
    match w {
        1 => Type::I8,
        2 => Type::I16,
        4 => Type::I32,
        _ => Type::I64,
    }
}

pub(crate) fn width_fty(w: u8) -> Type {
    if w == 4 {
        Type::F32
    } else {
        Type::F64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isel::{compile_module, BackendConfig};
    use flowery_ir::builder::{FuncBuilder, ModuleBuilder};
    use flowery_ir::value::Op;

    fn run_main(build: impl FnOnce(&mut FuncBuilder)) -> MachResult {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        build(&mut fb);
        mb.add_func(fb.finish());
        let m = mb.finish();
        flowery_ir::verify::verify_module(&m).unwrap();
        let prog = compile_module(&m, &BackendConfig::default());
        Machine::new(&m, &prog).run(&ExecConfig::default(), None)
    }

    #[test]
    fn signed_flags_drive_conditions() {
        // -5 < 3 signed but not unsigned: both predicates via flags.
        let r = run_main(|fb| {
            let slt = fb.icmp(flowery_ir::IPred::Slt, Type::I64, Op::ci64(-5), Op::ci64(3));
            let ult = fb.icmp(flowery_ir::IPred::Ult, Type::I64, Op::ci64(-5), Op::ci64(3));
            let z1 = fb.cast(flowery_ir::CastKind::Zext, Type::I1, Type::I64, Op::inst(slt));
            let z2 = fb.cast(flowery_ir::CastKind::Zext, Type::I1, Type::I64, Op::inst(ult));
            let sh = fb.bin(flowery_ir::BinOp::Shl, Type::I64, Op::inst(z1), Op::ci64(1));
            let s = fb.bin(flowery_ir::BinOp::Or, Type::I64, Op::inst(sh), Op::inst(z2));
            fb.ret(Some(Op::inst(s)));
        });
        assert_eq!(r.status, ExecStatus::Completed(0b10));
    }

    #[test]
    fn overflow_flag_set_correctly_for_sub() {
        // i64::MIN - 1 wraps; signed compare must still be right via OF.
        let r = run_main(|fb| {
            let c = fb.icmp(flowery_ir::IPred::Slt, Type::I64, Op::ci64(i64::MIN), Op::ci64(1));
            let z = fb.cast(flowery_ir::CastKind::Zext, Type::I1, Type::I64, Op::inst(c));
            fb.ret(Some(Op::inst(z)));
        });
        assert_eq!(r.status, ExecStatus::Completed(1));
    }

    #[test]
    fn narrow_width_arithmetic_wraps_in_registers() {
        let r = run_main(|fb| {
            let a = fb.bin(flowery_ir::BinOp::Add, Type::I8, Op::cint(Type::I8, 200), Op::cint(Type::I8, 100));
            let z = fb.cast(flowery_ir::CastKind::Zext, Type::I8, Type::I64, Op::inst(a));
            fb.ret(Some(Op::inst(z)));
        });
        assert_eq!(r.status, ExecStatus::Completed((200u64 + 100) & 0xFF));
    }

    #[test]
    fn division_uses_rax_rdx_correctly() {
        let r = run_main(|fb| {
            let q = fb.bin(flowery_ir::BinOp::SDiv, Type::I64, Op::ci64(-47), Op::ci64(5));
            let rem = fb.bin(flowery_ir::BinOp::SRem, Type::I64, Op::ci64(-47), Op::ci64(5));
            let s = fb.bin(flowery_ir::BinOp::Mul, Type::I64, Op::inst(q), Op::ci64(100));
            let t = fb.bin(flowery_ir::BinOp::Add, Type::I64, Op::inst(s), Op::inst(rem));
            fb.ret(Some(Op::inst(t)));
        });
        // -47 / 5 = -9 rem -2 -> -9*100 + -2 = -902
        assert_eq!(r.status, ExecStatus::Completed((-902i64) as u64));
    }

    #[test]
    fn float_compare_flags_and_select() {
        let r = run_main(|fb| {
            let c = fb.fcmp(flowery_ir::FPred::Ogt, Type::F64, Op::cf64(2.5), Op::cf64(1.5));
            let sel = fb.select(Type::I64, Op::inst(c), Op::ci64(7), Op::ci64(9));
            fb.ret(Some(Op::inst(sel)));
        });
        assert_eq!(r.status, ExecStatus::Completed(7));
    }

    #[test]
    fn fault_on_flags_flips_branch() {
        // cmp 1, 2 -> jl taken normally; corrupting the flags at the cmp
        // must be able to change the outcome.
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let c = fb.icmp(flowery_ir::IPred::Slt, Type::I64, Op::ci64(1), Op::ci64(2));
        let t = fb.new_block("t");
        let e = fb.new_block("e");
        fb.br(Op::inst(c), t, e);
        fb.switch_to(t);
        fb.ret(Some(Op::ci64(111)));
        fb.switch_to(e);
        fb.ret(Some(Op::ci64(222)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        let prog = compile_module(&m, &BackendConfig::default());
        let mach = Machine::new(&m, &prog);
        let golden = mach.run(&ExecConfig::default(), None);
        assert_eq!(golden.status, ExecStatus::Completed(111));
        // Find the cmp's site and flip a condition flag.
        let mut flipped = false;
        for site in 0..golden.fault_sites {
            for bit in 0..4 {
                let r = mach.run(&ExecConfig::default(), Some(AsmFaultSpec::single(site, bit)));
                if r.status == ExecStatus::Completed(222) {
                    flipped = true;
                }
            }
        }
        assert!(flipped, "a flags fault must be able to steer the branch");
    }

    #[test]
    fn fast_forward_is_bit_identical() {
        // A loop with stores + calls so snapshots carry memory and stack
        // state; every site restored vs scratch.
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_func("sq", vec![Type::I64], Some(Type::I64));
        let mut fb = FuncBuilder::new("sq", vec![Type::I64], Some(Type::I64));
        let v = fb.bin(flowery_ir::BinOp::Mul, Type::I64, Op::param(0), Op::param(0));
        fb.ret(Some(Op::inst(v)));
        mb.define_func(f, fb.finish());
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let acc = fb.alloca(Type::I64, 1);
        let i = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(0), Op::inst(acc));
        fb.store(Type::I64, Op::ci64(0), Op::inst(i));
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.jmp(header);
        fb.switch_to(header);
        let iv = fb.load(Type::I64, Op::inst(i));
        let c = fb.icmp(flowery_ir::IPred::Slt, Type::I64, Op::inst(iv), Op::ci64(8));
        fb.br(Op::inst(c), body, exit);
        fb.switch_to(body);
        let iv2 = fb.load(Type::I64, Op::inst(i));
        let s = fb.call(f, vec![Op::inst(iv2)]);
        let av = fb.load(Type::I64, Op::inst(acc));
        let ns = fb.bin(flowery_ir::BinOp::Add, Type::I64, Op::inst(av), Op::inst(s));
        fb.store(Type::I64, Op::inst(ns), Op::inst(acc));
        let ni = fb.bin(flowery_ir::BinOp::Add, Type::I64, Op::inst(iv2), Op::ci64(1));
        fb.store(Type::I64, Op::inst(ni), Op::inst(i));
        fb.jmp(header);
        fb.switch_to(exit);
        let r = fb.load(Type::I64, Op::inst(acc));
        fb.output_i64(Op::inst(r));
        fb.ret(Some(Op::inst(r)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        flowery_ir::verify::verify_module(&m).unwrap();
        let prog = compile_module(&m, &BackendConfig::default());
        let mach = Machine::new(&m, &prog);

        let cfg = ExecConfig { max_dyn_insts: 10_000, ..Default::default() };
        let set = mach.capture_snapshots(&cfg, 16);
        assert!(set.len() > 2, "expected several snapshots");
        assert_eq!(set.golden().status, ExecStatus::Completed(140));
        let mut scratch = AsmScratch::new();
        for site in 0..set.golden().fault_sites {
            for bit in [0u32, 5, 31, 62] {
                let spec = AsmFaultSpec::single(site, bit);
                let scratch_res = mach.run(&cfg, Some(spec));
                let (ff_res, skipped) = mach.run_fast_forward(&cfg, spec, &set, &mut scratch);
                assert_eq!(ff_res.status, scratch_res.status, "site {site} bit {bit}");
                assert_eq!(ff_res.output, scratch_res.output, "site {site} bit {bit}");
                assert_eq!(ff_res.dyn_insts, scratch_res.dyn_insts, "site {site} bit {bit}");
                assert_eq!(ff_res.fault_sites, scratch_res.fault_sites, "site {site} bit {bit}");
                assert_eq!(ff_res.cycles, scratch_res.cycles, "site {site} bit {bit}");
                assert_eq!(ff_res.injected_inst, scratch_res.injected_inst, "site {site} bit {bit}");
                assert!(skipped <= scratch_res.dyn_insts);
                scratch.recycle_output(ff_res.output);
            }
        }
    }

    #[test]
    fn capture_golden_matches_plain_run() {
        let r = {
            let mut mb = ModuleBuilder::new("m");
            let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
            let v = fb.bin(flowery_ir::BinOp::Add, Type::I64, Op::ci64(40), Op::ci64(2));
            fb.output_i64(Op::inst(v));
            fb.ret(Some(Op::inst(v)));
            mb.add_func(fb.finish());
            mb.finish()
        };
        let prog = compile_module(&r, &BackendConfig::default());
        let mach = Machine::new(&r, &prog);
        let cfg = ExecConfig::default();
        let plain = mach.run(&cfg, None);
        let set = mach.capture_snapshots(&cfg, 4);
        assert_eq!(set.golden().status, plain.status);
        assert_eq!(set.golden().output, plain.output);
        assert_eq!(set.golden().dyn_insts, plain.dyn_insts);
        assert_eq!(set.golden().fault_sites, plain.fault_sites);
        assert_eq!(set.golden().cycles, plain.cycles);
    }

    /// Bytes of distinct page copies held across all snapshots of a set.
    fn overlay_bytes(set: &AsmSnapshotSet) -> u64 {
        let mut seen = std::collections::HashSet::new();
        let mut total = 0u64;
        for s in &set.snaps {
            for p in s.pages.values() {
                if seen.insert(std::sync::Arc::as_ptr(p)) {
                    total += p.len() as u64;
                }
            }
        }
        total
    }

    #[test]
    fn snapshot_budget_widens_cadence_on_store_heavy_runs() {
        // The asm twin of the IR-level budget test: a loop cycling writes
        // through an 8-page global array blows any fixed overlay budget
        // unless the recorder widens its cadence.
        let mut mb = ModuleBuilder::new("stores");
        let g = mb.global_i64("arr", &vec![0i64; 4096]);
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let i = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(0), Op::inst(i));
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.jmp(header);
        fb.switch_to(header);
        let iv = fb.load(Type::I64, Op::inst(i));
        let c = fb.icmp(flowery_ir::IPred::Slt, Type::I64, Op::inst(iv), Op::ci64(4096));
        fb.br(Op::inst(c), body, exit);
        fb.switch_to(body);
        let iv2 = fb.load(Type::I64, Op::inst(i));
        let idx = fb.bin(flowery_ir::BinOp::And, Type::I64, Op::inst(iv2), Op::ci64(4095));
        let p = fb.gep(Op::Global(g), Op::inst(idx), Type::I64);
        fb.store(Type::I64, Op::inst(iv2), Op::inst(p));
        let ni = fb.bin(flowery_ir::BinOp::Add, Type::I64, Op::inst(iv2), Op::ci64(1));
        fb.store(Type::I64, Op::inst(ni), Op::inst(i));
        fb.jmp(header);
        fb.switch_to(exit);
        let p7 = fb.gep(Op::Global(g), Op::ci64(7), Type::I64);
        let r = fb.load(Type::I64, Op::inst(p7));
        fb.output_i64(Op::inst(r));
        fb.ret(Some(Op::inst(r)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        let prog = compile_module(&m, &BackendConfig::default());
        let mach = Machine::new(&m, &prog);

        let cfg = ExecConfig { max_dyn_insts: 2_000_000, ..Default::default() };
        let unbounded = mach.capture_snapshots(&cfg, 512);
        assert_eq!(unbounded.interval(), 512);
        let budget = 16 * flowery_ir::interp::PAGE_SIZE;
        assert!(
            overlay_bytes(&unbounded) > budget,
            "workload must be store-heavy enough to blow the budget: {} bytes",
            overlay_bytes(&unbounded)
        );

        let capped_cfg = ExecConfig { snapshot_budget: Some(budget), ..cfg.clone() };
        let capped = mach.capture_snapshots(&capped_cfg, 512);
        assert!(capped.interval() > 512, "budget pressure must widen the cadence");
        assert!(capped.len() < unbounded.len(), "{} vs {}", capped.len(), unbounded.len());
        assert!(capped.len() > 1, "widening must not degenerate to a single snapshot");
        assert!(
            overlay_bytes(&capped) <= budget,
            "{} bytes over a {budget} budget",
            overlay_bytes(&capped)
        );
        assert_eq!(capped.golden().output, unbounded.golden().output, "the budget must not perturb execution");
        assert_eq!(capped.golden().dyn_insts, unbounded.golden().dyn_insts);

        // The thinned set still fast-forwards bit-identically.
        let mut scratch = AsmScratch::new();
        for site in (0..capped.golden().fault_sites).step_by(4999) {
            let spec = AsmFaultSpec::single(site, 21);
            let scratch_res = mach.run(&cfg, Some(spec));
            let (ff_res, _) = mach.run_fast_forward(&cfg, spec, &capped, &mut scratch);
            assert_eq!(ff_res.status, scratch_res.status, "site {site}");
            assert_eq!(ff_res.output, scratch_res.output, "site {site}");
            assert_eq!(ff_res.dyn_insts, scratch_res.dyn_insts, "site {site}");
            assert_eq!(ff_res.cycles, scratch_res.cycles, "site {site}");
            scratch.recycle_output(ff_res.output);
        }
    }

    /// Loop-with-call module; `extra` adds one instruction to the helper,
    /// which `main` calls once at the *end* of the run — so the compiled
    /// raw/variant programs are identical until the helper's body, and the
    /// helper first executes late in the trace.
    fn late_call_module(extra: bool) -> Module {
        let mut mb = ModuleBuilder::new("late");
        let main_id = mb.declare_func("main", vec![], Some(Type::I64));
        let fin = mb.declare_func("fin", vec![Type::I64], Some(Type::I64));
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let acc = fb.alloca(Type::I64, 1);
        let i = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(0), Op::inst(acc));
        fb.store(Type::I64, Op::ci64(0), Op::inst(i));
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.jmp(header);
        fb.switch_to(header);
        let iv = fb.load(Type::I64, Op::inst(i));
        let c = fb.icmp(flowery_ir::IPred::Slt, Type::I64, Op::inst(iv), Op::ci64(200));
        fb.br(Op::inst(c), body, exit);
        fb.switch_to(body);
        let iv2 = fb.load(Type::I64, Op::inst(i));
        let av = fb.load(Type::I64, Op::inst(acc));
        let ns = fb.bin(flowery_ir::BinOp::Add, Type::I64, Op::inst(av), Op::inst(iv2));
        fb.store(Type::I64, Op::inst(ns), Op::inst(acc));
        let ni = fb.bin(flowery_ir::BinOp::Add, Type::I64, Op::inst(iv2), Op::ci64(1));
        fb.store(Type::I64, Op::inst(ni), Op::inst(i));
        fb.jmp(header);
        fb.switch_to(exit);
        let r = fb.load(Type::I64, Op::inst(acc));
        let fv = fb.call(fin, vec![Op::inst(r)]);
        fb.output_i64(Op::inst(fv));
        fb.ret(Some(Op::inst(fv)));
        mb.define_func(main_id, fb.finish());
        let mut fb = FuncBuilder::new("fin", vec![Type::I64], Some(Type::I64));
        let v = fb.bin(flowery_ir::BinOp::Mul, Type::I64, Op::param(0), Op::ci64(3));
        if extra {
            let w = fb.bin(flowery_ir::BinOp::Add, Type::I64, Op::inst(v), Op::ci64(1));
            fb.ret(Some(Op::inst(w)));
        } else {
            fb.ret(Some(Op::inst(v)));
        }
        mb.define_func(fin, fb.finish());
        let m = mb.finish();
        flowery_ir::verify::verify_module(&m).unwrap();
        m
    }

    #[test]
    fn profiled_fast_forward_matches_scratch() {
        let m = late_call_module(false);
        let prog = compile_module(&m, &BackendConfig::default());
        let mach = Machine::new(&m, &prog);
        let cfg = ExecConfig { profile: true, max_dyn_insts: 100_000, ..Default::default() };
        let set = mach.capture_snapshots(&cfg, 64);
        assert!(set.len() > 2);
        assert!(
            set.snaps.iter().all(|s| s.profile.is_some()),
            "profiled capture must store the accumulator"
        );
        let mut scratch = AsmScratch::new();
        let mut late_skipped = 0u64;
        for site in 0..set.golden().fault_sites {
            let spec = AsmFaultSpec::single(site, 13);
            let scratch_res = mach.run(&cfg, Some(spec));
            let (ff_res, skipped) = mach.run_fast_forward(&cfg, spec, &set, &mut scratch);
            assert_eq!(ff_res.status, scratch_res.status, "site {site}");
            assert_eq!(ff_res.output, scratch_res.output, "site {site}");
            assert_eq!(ff_res.dyn_insts, scratch_res.dyn_insts, "site {site}");
            assert_eq!(ff_res.cycles, scratch_res.cycles, "site {site}");
            assert_eq!(ff_res.profile, scratch_res.profile, "site {site}: profile counts must be restored");
            late_skipped = late_skipped.max(skipped);
            scratch.recycle_output(ff_res.output);
        }
        assert!(late_skipped > 0, "late sites must actually fast-forward");
    }

    #[test]
    fn unprofiled_set_falls_back_for_profiled_trials() {
        let m = late_call_module(false);
        let prog = compile_module(&m, &BackendConfig::default());
        let mach = Machine::new(&m, &prog);
        let plain = ExecConfig { max_dyn_insts: 100_000, ..Default::default() };
        let set = mach.capture_snapshots(&plain, 64);
        let profiled = ExecConfig { profile: true, ..plain.clone() };
        let mut scratch = AsmScratch::new();
        let site = set.golden().fault_sites - 1;
        let spec = AsmFaultSpec::single(site, 3);
        let (ff_res, skipped) = mach.run_fast_forward(&profiled, spec, &set, &mut scratch);
        assert_eq!(skipped, 0, "no profile in the set: must fall back to scratch");
        let scratch_res = mach.run(&profiled, Some(spec));
        assert_eq!(ff_res.status, scratch_res.status);
        assert_eq!(ff_res.output, scratch_res.output);
        assert_eq!(ff_res.profile, scratch_res.profile);
    }

    #[test]
    fn auto_capture_is_site_spaced_and_capped() {
        let m = late_call_module(false);
        let prog = compile_module(&m, &BackendConfig::default());
        let mach = Machine::new(&m, &prog);
        let cfg = ExecConfig { max_dyn_insts: 100_000, ..Default::default() };
        let set = mach.capture_snapshots_auto(&cfg);
        assert!(matches!(set.cadence(), Cadence::Sites(_)), "auto capture is site-spaced");
        assert!(set.len() <= AUTO_MAX_SNAPS);
        assert!(!set.is_empty());
        let plain = mach.run(&cfg, None);
        assert_eq!(set.golden().output, plain.output);
        assert_eq!(set.golden().dyn_insts, plain.dyn_insts);
        let k = set.interval();
        for w in set.snaps.windows(2) {
            assert!(w[1].fault_sites - w[0].fault_sites >= k, "snapshots must be at least one cadence apart");
        }
        let mut scratch = AsmScratch::new();
        for site in (0..set.golden().fault_sites).step_by(97) {
            let spec = AsmFaultSpec::single(site, 5);
            let scratch_res = mach.run(&cfg, Some(spec));
            let (ff_res, _) = mach.run_fast_forward(&cfg, spec, &set, &mut scratch);
            assert_eq!(ff_res.status, scratch_res.status, "site {site}");
            assert_eq!(ff_res.output, scratch_res.output, "site {site}");
            assert_eq!(ff_res.dyn_insts, scratch_res.dyn_insts, "site {site}");
            scratch.recycle_output(ff_res.output);
        }
    }

    #[test]
    fn shared_prefix_capture_matches_fresh_capture() {
        let raw_m = late_call_module(false);
        let var_m = late_call_module(true);
        let bc = BackendConfig::default();
        let raw_p = compile_module(&raw_m, &bc);
        let var_p = compile_module(&var_m, &bc);
        assert_eq!(raw_p.main_entry, var_p.main_entry, "test premise: main compiles identically");
        let raw_mach = Machine::new(&raw_m, &raw_p);
        let var_mach = Machine::new(&var_m, &var_p);
        let cfg = ExecConfig { max_dyn_insts: 100_000, ..Default::default() };
        let raw_set = raw_mach.capture_snapshots(&cfg, 64);
        assert!(raw_set.len() > 2);

        let set = var_mach
            .capture_snapshots_from(&cfg, (&raw_m, &raw_p), &raw_set)
            .expect("late-diverging variant must share the raw prefix");
        assert!(set.shared_snaps() >= 1, "at least one snapshot shared");
        assert!(set.first_exec.is_none(), "derived sets cannot seed further sharing");
        // Shared snapshots reuse the raw set's pages by Arc identity.
        for (s, r) in set.snaps.iter().zip(&raw_set.snaps).take(set.shared_snaps()) {
            assert_eq!(s.dyn_insts, r.dyn_insts);
            for (k, v) in &s.pages {
                assert!(std::sync::Arc::ptr_eq(v, &r.pages[k]), "page {k} must be shared, not copied");
            }
        }
        // The continued golden equals a fresh variant run, and differs from raw.
        let fresh = var_mach.run(&cfg, None);
        assert_eq!(set.golden().status, fresh.status);
        assert_eq!(set.golden().output, fresh.output);
        assert_eq!(set.golden().dyn_insts, fresh.dyn_insts);
        assert_eq!(set.golden().cycles, fresh.cycles);
        assert_ne!(set.golden().output, raw_set.golden().output, "test premise: the variant diverges");

        // Fast-forward from the shared-prefix set is bit-identical.
        let mut scratch = AsmScratch::new();
        for site in 0..set.golden().fault_sites {
            for bit in [0u32, 9, 33] {
                let spec = AsmFaultSpec::single(site, bit);
                let scratch_res = var_mach.run(&cfg, Some(spec));
                let (ff_res, _) = var_mach.run_fast_forward(&cfg, spec, &set, &mut scratch);
                assert_eq!(ff_res.status, scratch_res.status, "site {site} bit {bit}");
                assert_eq!(ff_res.output, scratch_res.output, "site {site} bit {bit}");
                assert_eq!(ff_res.dyn_insts, scratch_res.dyn_insts, "site {site} bit {bit}");
                assert_eq!(ff_res.cycles, scratch_res.cycles, "site {site} bit {bit}");
                assert_eq!(ff_res.injected_inst, scratch_res.injected_inst, "site {site} bit {bit}");
                scratch.recycle_output(ff_res.output);
            }
        }
    }

    #[test]
    fn shared_prefix_refuses_incompatible_shapes() {
        let raw_m = late_call_module(false);
        let var_m = late_call_module(true);
        let bc = BackendConfig::default();
        let raw_p = compile_module(&raw_m, &bc);
        let var_p = compile_module(&var_m, &bc);
        let raw_mach = Machine::new(&raw_m, &raw_p);
        let var_mach = Machine::new(&var_m, &var_p);
        let cfg = ExecConfig { max_dyn_insts: 100_000, ..Default::default() };
        let raw_set = raw_mach.capture_snapshots(&cfg, 64);
        // Profiled captures cannot share (per-position counts do not map).
        let prof_cfg = ExecConfig { profile: true, ..cfg.clone() };
        assert!(var_mach.capture_snapshots_from(&prof_cfg, (&raw_m, &raw_p), &raw_set).is_none());
        // Mismatched memory geometry cannot share.
        let small = ExecConfig { mem_size: 2 << 20, ..cfg.clone() };
        assert!(var_mach.capture_snapshots_from(&small, (&raw_m, &raw_p), &raw_set).is_none());
        // A derived set (no first_exec) cannot seed sharing.
        let derived = var_mach.capture_snapshots_from(&cfg, (&raw_m, &raw_p), &raw_set).unwrap();
        assert!(var_mach.capture_snapshots_from(&cfg, (&var_m, &var_p), &derived).is_none());
    }

    #[test]
    fn profile_counts_executed_instructions() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let v = fb.bin(flowery_ir::BinOp::Add, Type::I64, Op::ci64(40), Op::ci64(2));
        fb.ret(Some(Op::inst(v)));
        mb.add_func(fb.finish());
        let m = mb.finish();
        let prog = compile_module(&m, &BackendConfig::default());
        let r = Machine::new(&m, &prog).profile_run(&ExecConfig::default());
        let p = r.profile.unwrap();
        assert_eq!(p.len(), prog.insts.len());
        assert_eq!(p.iter().sum::<u64>(), r.dyn_insts);
        // Straight-line program: every instruction from entry to ret runs once.
        assert!(p.iter().filter(|&&c| c == 1).count() >= 5);
    }
}
