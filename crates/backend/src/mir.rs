//! Machine IR: an x86-64-flavoured instruction set with physical registers,
//! RFLAGS, and a handful of pseudo-instructions (output ports, math ops).
//!
//! Every instruction carries *provenance* — which IR instruction it was
//! lowered from and what micro-role it plays — which is what lets the
//! root-cause analyzer attribute assembly-level SDCs to the paper's five
//! penetration categories.

use flowery_ir::value::{FuncId, InstId};
use flowery_ir::IrRole;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical registers. General-purpose, SSE, and the flags register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Reg {
    Rax,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rbp,
    Rsp,
    R8,
    R9,
    R10,
    R11,
    Xmm0,
    Xmm1,
    Xmm2,
    Xmm3,
    Xmm4,
    Xmm5,
    Xmm6,
    Xmm7,
    /// Status flags (ZF/SF/OF/CF packed; see [`flags`]).
    Rflags,
}

impl Reg {
    /// Dense index for register files.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Number of registers.
    pub const COUNT: usize = 21;

    /// True for the SSE registers.
    pub fn is_xmm(self) -> bool {
        matches!(
            self,
            Reg::Xmm0 | Reg::Xmm1 | Reg::Xmm2 | Reg::Xmm3 | Reg::Xmm4 | Reg::Xmm5 | Reg::Xmm6 | Reg::Xmm7
        )
    }

    /// GPR scratch pool used by the fast allocator, in allocation order.
    /// `rbp`/`rsp` are reserved; the pool is caller-saved so calls flush it.
    pub const GPR_POOL: [Reg; 9] =
        [Reg::Rax, Reg::Rcx, Reg::Rdx, Reg::Rsi, Reg::Rdi, Reg::R8, Reg::R9, Reg::R10, Reg::R11];

    /// XMM scratch pool.
    pub const XMM_POOL: [Reg; 8] =
        [Reg::Xmm0, Reg::Xmm1, Reg::Xmm2, Reg::Xmm3, Reg::Xmm4, Reg::Xmm5, Reg::Xmm6, Reg::Xmm7];

    /// SysV-style integer argument registers.
    pub const INT_ARGS: [Reg; 6] = [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::Rcx, Reg::R8, Reg::R9];

    /// SysV-style float argument registers.
    pub const FLOAT_ARGS: [Reg; 8] =
        [Reg::Xmm0, Reg::Xmm1, Reg::Xmm2, Reg::Xmm3, Reg::Xmm4, Reg::Xmm5, Reg::Xmm6, Reg::Xmm7];

    pub fn name(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rbx => "rbx",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::Rbp => "rbp",
            Reg::Rsp => "rsp",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::Xmm0 => "xmm0",
            Reg::Xmm1 => "xmm1",
            Reg::Xmm2 => "xmm2",
            Reg::Xmm3 => "xmm3",
            Reg::Xmm4 => "xmm4",
            Reg::Xmm5 => "xmm5",
            Reg::Xmm6 => "xmm6",
            Reg::Xmm7 => "xmm7",
            Reg::Rflags => "rflags",
        }
    }
}

/// Flag bit positions within the `Rflags` register value.
pub mod flags {
    /// Carry flag (unsigned below).
    pub const CF: u64 = 1 << 0;
    /// Zero flag.
    pub const ZF: u64 = 1 << 6;
    /// Sign flag.
    pub const SF: u64 = 1 << 7;
    /// Overflow flag.
    pub const OF: u64 = 1 << 11;
    /// The bits a datapath fault may flip (the architecturally meaningful
    /// condition bits).
    pub const CONDITION_BITS: [u64; 4] = [CF, ZF, SF, OF];
}

/// Memory reference: `[base + disp]` (absolute when `base` is `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRef {
    pub base: Option<Reg>,
    pub disp: i64,
}

impl MemRef {
    pub fn rbp(disp: i64) -> MemRef {
        MemRef { base: Some(Reg::Rbp), disp }
    }

    pub fn abs(addr: u64) -> MemRef {
        MemRef { base: None, disp: addr as i64 }
    }
}

/// Instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AOp {
    Reg(Reg),
    Imm(i64),
    Mem(MemRef),
}

/// ALU opcodes (two-operand, destination register form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AluOp {
    Add,
    Sub,
    Imul,
    And,
    Or,
    Xor,
}

/// Shift opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShiftOp {
    Shl,
    Shr,
    Sar,
}

/// SSE scalar arithmetic opcodes (`sd` = f64, `ss` = f32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SseOp {
    AddSd,
    SubSd,
    MulSd,
    DivSd,
    AddSs,
    SubSs,
    MulSs,
    DivSs,
}

/// Condition codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CC {
    E,
    Ne,
    L,
    Le,
    G,
    Ge,
    B,
    Be,
    A,
    Ae,
}

impl CC {
    pub fn name(self) -> &'static str {
        match self {
            CC::E => "e",
            CC::Ne => "ne",
            CC::L => "l",
            CC::Le => "le",
            CC::G => "g",
            CC::Ge => "ge",
            CC::B => "b",
            CC::Be => "be",
            CC::A => "a",
            CC::Ae => "ae",
        }
    }
}

/// Pseudo output-port record kinds (mirrors the IR output intrinsics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutKind {
    I64,
    F64,
    Byte,
}

/// Math pseudo-instruction kinds (modelled libm operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MathKind {
    Sqrt,
    Sin,
    Cos,
    Exp,
    Log,
    Fabs,
    Floor,
    Pow,
}

/// One machine instruction. `w` fields are operand widths in bytes
/// (1/2/4/8). Control-flow targets are absolute instruction indices after
/// linking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AKind {
    /// `mov` in all its forms (reg<-reg/imm/mem, mem<-reg/imm). Loads
    /// zero-extend to the canonical 64-bit form.
    Mov { w: u8, dst: AOp, src: AOp },
    /// Sign-extending load/move.
    MovSx { wd: u8, ws: u8, dst: Reg, src: AOp },
    /// Address computation.
    Lea { dst: Reg, mem: MemRef },
    /// Two-operand ALU op: `dst = dst op src` (width-wrapped). Writes flags.
    Alu { op: AluOp, w: u8, dst: Reg, src: AOp },
    /// Shift: `dst = dst shift amt` (amt = imm or cl).
    Shift { op: ShiftOp, w: u8, dst: Reg, amt: AOp },
    /// Sign-extend rax into rdx (cqo/cdq family).
    Cqo { w: u8 },
    /// Zero rdx (before unsigned div).
    ZeroRdx,
    /// Signed or unsigned divide of rdx:rax by `src`; quotient -> rax,
    /// remainder -> rdx.
    Div { w: u8, signed: bool, src: AOp },
    /// Compare: sets flags from `lhs - rhs`.
    Cmp { w: u8, lhs: AOp, rhs: AOp },
    /// Bit test: sets flags from `lhs & rhs`.
    Test { w: u8, lhs: AOp, rhs: AOp },
    /// Materialize a condition into a byte register.
    SetCC { cc: CC, dst: Reg },
    /// Conditional move.
    Cmov { cc: CC, w: u8, dst: Reg, src: AOp },
    /// Conditional jump (reads flags).
    Jcc { cc: CC, target: u32 },
    /// Unconditional jump.
    Jmp { target: u32 },
    /// Direct call (pushes the return address).
    Call { func: FuncId, target: u32 },
    /// Return (pops the return address).
    Ret,
    /// Push a 64-bit value.
    Push { src: AOp },
    /// Pop into a register.
    Pop { dst: Reg },
    /// SSE scalar move (xmm<->xmm/mem, 4 or 8 bytes).
    MovSd { w: u8, dst: AOp, src: AOp },
    /// SSE scalar arithmetic: `dst = dst op src`.
    Sse { op: SseOp, dst: Reg, src: AOp },
    /// Float compare -> flags (`ucomisd`/`ucomiss`).
    Ucomi { w: u8, lhs: Reg, rhs: AOp },
    /// Int -> float conversion.
    Cvtsi2f { wf: u8, dst: Reg, src: AOp },
    /// Float -> int conversion (truncating).
    Cvtf2si { wf: u8, dst: Reg, src: AOp },
    /// f32 <-> f64 conversion (`wd` = destination float width).
    Cvtff { wd: u8, dst: Reg, src: Reg },
    /// Bit-move between GPR and XMM (`movq`/`movd`).
    MovQ { w: u8, dst: Reg, src: Reg },
    /// Math pseudo (modelled libm): reads xmm args, writes `dst`.
    Math { kind: MathKind, dst: Reg, a: Reg, b: Option<Reg> },
    /// Output-port pseudo (no destination).
    Out { kind: OutKind, src: AOp },
    /// Duplication-checker detector pseudo: halts with `Detected`.
    DetectTrap,
}

/// The micro-role of a machine instruction relative to its IR provenance —
/// the key input to penetration classification (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsmRole {
    /// The instruction that performs the IR operation's actual work.
    Compute,
    /// Reload of a stack-homed value into a register to feed an operand.
    /// When feeding a store, this is the *store penetration* site.
    OperandReload,
    /// Store-back of a freshly computed result into its stack home.
    ResultSpill,
    /// `set<cc>` materializing a comparison result.
    FlagMaterialize,
    /// `test`/`cmp` emitted to (re)establish flags for an unfused branch —
    /// the *branch penetration* site.
    FlagSet,
    /// Calling-convention argument move — the *call penetration* site.
    ArgMove,
    /// Callee-side spill of an incoming parameter register.
    ParamSpill,
    /// Move of a return value between `rax`/`xmm0` and its destination.
    RetMove,
    /// Address arithmetic for `gep`/`alloca`.
    AddrCompute,
    /// Function prologue (`push rbp`, frame setup) — *mapping penetration*.
    Prologue,
    /// Function epilogue (`pop rbp`, `ret`) — *mapping penetration*.
    Epilogue,
    /// Control transfer (`jmp`/`jcc`/`call`/`ret` body).
    Control,
    /// Read-back verification inserted by assembly-level hardening
    /// ([`crate::harden`]).
    Harden,
}

/// A machine instruction with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AInst {
    pub kind: AKind,
    pub role: AsmRole,
    /// The IR instruction this was lowered from, if any.
    pub prov: Option<(FuncId, InstId)>,
    /// The IR-level role (App/Shadow/Checker/Patch) of the provenance, baked
    /// in so analyses do not need the IR module at hand.
    pub ir_role: IrRole,
}

/// Where a fault lands for a given instruction: the architected destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDest {
    /// A written register, with the written width in bytes.
    Gpr(Reg, u8),
    /// The flags register (condition bits only).
    Flags,
    /// The value written to memory (width in bytes). The address is known
    /// only at runtime.
    MemVal(u8),
    /// No architected destination (pure control / output).
    None,
}

/// An abstract storage location for static dataflow over machine code.
///
/// The memory model is field-sensitive: frame slots are tracked
/// per-displacement (they are the spill homes the -O0-style allocator uses
/// and never alias each other within a function), and absolute global cells
/// are tracked per-address. Only pointer-based accesses and the stack
/// push/pop area collapse into the [`Loc::Mem`] summary location, and since
/// globals remain addressable through pointers, `Global` and `Mem` are
/// weakly aliased by the dataflow engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Loc {
    Reg(Reg),
    Flags,
    /// `[rbp + disp]` frame slot, keyed by byte displacement.
    Frame(i64),
    /// Absolute global cell, keyed by address (`[disp]` with no base).
    Global(i64),
    /// Summary of all remaining memory (pointer accesses, push/pop area).
    Mem,
}

impl Loc {
    /// True when a write to this location fully replaces the old value, so
    /// a dataflow may *kill* facts about it. `Mem` is a may-alias summary:
    /// writes to it are weak updates.
    pub fn is_strong(self) -> bool {
        !matches!(self, Loc::Mem)
    }
}

impl MemRef {
    /// The abstract [`Loc`] this reference addresses.
    pub fn loc(&self) -> Loc {
        match self.base {
            Some(Reg::Rbp) => Loc::Frame(self.disp),
            None => Loc::Global(self.disp),
            _ => Loc::Mem,
        }
    }
}

fn mem_loc(m: &MemRef) -> Loc {
    m.loc()
}

fn push_op_reads(op: &AOp, out: &mut Vec<Loc>) {
    match op {
        AOp::Reg(r) => out.push(Loc::Reg(*r)),
        AOp::Imm(_) => {}
        AOp::Mem(m) => {
            if let Some(b) = m.base {
                out.push(Loc::Reg(b));
            }
            out.push(mem_loc(m));
        }
    }
}

impl AKind {
    /// The locations this instruction reads, including implicit operands
    /// (`div` reads rdx:rax, `shift %cl` reads rcx, `set<cc>`/`cmov`/`jcc`
    /// read flags). Memory operands contribute both their base register and
    /// the addressed location.
    pub fn reads(&self) -> Vec<Loc> {
        let mut r = Vec::new();
        match *self {
            // A store also reads its destination's base register (the
            // address computation), though not the written cell itself.
            AKind::Mov { dst, src, .. } | AKind::MovSd { dst, src, .. } => {
                push_op_reads(&src, &mut r);
                if let AOp::Mem(m) = dst {
                    if let Some(b) = m.base {
                        r.push(Loc::Reg(b));
                    }
                }
            }
            AKind::MovSx { src, .. } => push_op_reads(&src, &mut r),
            // `lea` only computes the address: base register, no deref.
            AKind::Lea { mem, .. } => {
                if let Some(b) = mem.base {
                    r.push(Loc::Reg(b));
                }
            }
            AKind::Alu { dst, src, .. } => {
                r.push(Loc::Reg(dst));
                push_op_reads(&src, &mut r);
            }
            AKind::Shift { dst, amt, .. } => {
                r.push(Loc::Reg(dst));
                push_op_reads(&amt, &mut r);
            }
            AKind::Cqo { .. } => r.push(Loc::Reg(Reg::Rax)),
            AKind::ZeroRdx => {}
            AKind::Div { src, .. } => {
                r.push(Loc::Reg(Reg::Rax));
                r.push(Loc::Reg(Reg::Rdx));
                push_op_reads(&src, &mut r);
            }
            AKind::Cmp { lhs, rhs, .. } | AKind::Test { lhs, rhs, .. } => {
                push_op_reads(&lhs, &mut r);
                push_op_reads(&rhs, &mut r);
            }
            AKind::SetCC { .. } => r.push(Loc::Flags),
            AKind::Cmov { dst, src, .. } => {
                r.push(Loc::Flags);
                r.push(Loc::Reg(dst));
                push_op_reads(&src, &mut r);
            }
            AKind::Jcc { .. } => r.push(Loc::Flags),
            AKind::Jmp { .. } | AKind::Call { .. } | AKind::DetectTrap => {}
            // The return value (if any) lives in rax/xmm0; modelled by the
            // analyzer at the call boundary, not here.
            AKind::Ret => {}
            AKind::Push { src } => push_op_reads(&src, &mut r),
            AKind::Pop { .. } => r.push(Loc::Mem),
            AKind::Sse { dst, src, .. } => {
                r.push(Loc::Reg(dst));
                push_op_reads(&src, &mut r);
            }
            AKind::Ucomi { lhs, rhs, .. } => {
                r.push(Loc::Reg(lhs));
                push_op_reads(&rhs, &mut r);
            }
            AKind::Cvtsi2f { src, .. } | AKind::Cvtf2si { src, .. } => push_op_reads(&src, &mut r),
            AKind::Cvtff { src, .. } => r.push(Loc::Reg(src)),
            AKind::MovQ { src, .. } => r.push(Loc::Reg(src)),
            AKind::Math { a, b, .. } => {
                r.push(Loc::Reg(a));
                if let Some(b) = b {
                    r.push(Loc::Reg(b));
                }
            }
            AKind::Out { src, .. } => push_op_reads(&src, &mut r),
        }
        r
    }

    /// The locations this instruction writes. Mirrors [`fault_dest`] but
    /// includes secondary destinations (flags for ALU ops, rdx for `div`)
    /// and resolves memory destinations to frame slots where possible.
    ///
    /// [`fault_dest`]: AKind::fault_dest
    pub fn writes(&self) -> Vec<Loc> {
        let mut w = Vec::new();
        match *self {
            AKind::Mov { dst, .. } | AKind::MovSd { dst, .. } => match dst {
                AOp::Reg(r) => w.push(Loc::Reg(r)),
                AOp::Mem(m) => w.push(mem_loc(&m)),
                AOp::Imm(_) => {}
            },
            AKind::MovSx { dst, .. }
            | AKind::Lea { dst, .. }
            | AKind::SetCC { dst, .. }
            | AKind::Cmov { dst, .. }
            | AKind::Pop { dst }
            | AKind::Sse { dst, .. }
            | AKind::Cvtsi2f { dst, .. }
            | AKind::Cvtf2si { dst, .. }
            | AKind::Cvtff { dst, .. }
            | AKind::MovQ { dst, .. }
            | AKind::Math { dst, .. } => w.push(Loc::Reg(dst)),
            AKind::Alu { dst, .. } | AKind::Shift { dst, .. } => {
                w.push(Loc::Reg(dst));
                w.push(Loc::Flags);
            }
            AKind::Cqo { .. } | AKind::ZeroRdx => w.push(Loc::Reg(Reg::Rdx)),
            AKind::Div { .. } => {
                w.push(Loc::Reg(Reg::Rax));
                w.push(Loc::Reg(Reg::Rdx));
            }
            AKind::Cmp { .. } | AKind::Test { .. } | AKind::Ucomi { .. } => w.push(Loc::Flags),
            AKind::Jcc { .. } | AKind::Jmp { .. } | AKind::Ret | AKind::DetectTrap => {}
            // Call pushes the return address; push writes the stack area.
            AKind::Call { .. } | AKind::Push { .. } => w.push(Loc::Mem),
            AKind::Out { .. } => {}
        }
        w
    }

    /// Intra-procedural successors of the instruction at flat index `idx`.
    /// `Call` falls through (the callee returns); `Ret` and `DetectTrap`
    /// terminate the path.
    pub fn successors(&self, idx: u32) -> Vec<u32> {
        match *self {
            AKind::Jmp { target } => vec![target],
            AKind::Jcc { target, .. } => vec![target, idx + 1],
            AKind::Ret | AKind::DetectTrap => vec![],
            _ => vec![idx + 1],
        }
    }

    /// True for the flag-setting compare family (`cmp`/`test`/`ucomi`).
    pub fn is_compare(&self) -> bool {
        matches!(self, AKind::Cmp { .. } | AKind::Test { .. } | AKind::Ucomi { .. })
    }

    /// The two value operands of a compare, as `(lhs, rhs)`.
    pub fn compare_operands(&self) -> Option<(AOp, AOp)> {
        match *self {
            AKind::Cmp { lhs, rhs, .. } | AKind::Test { lhs, rhs, .. } => Some((lhs, rhs)),
            AKind::Ucomi { lhs, rhs, .. } => Some((AOp::Reg(lhs), rhs)),
            _ => None,
        }
    }

    /// The architected destination of this instruction (static view).
    pub fn fault_dest(&self) -> FaultDest {
        match *self {
            AKind::Mov { w, dst, .. } | AKind::MovSd { w, dst, .. } => match dst {
                AOp::Reg(r) => FaultDest::Gpr(r, w),
                AOp::Mem(_) => FaultDest::MemVal(w),
                AOp::Imm(_) => FaultDest::None,
            },
            AKind::MovSx { wd, dst, .. } => FaultDest::Gpr(dst, wd),
            AKind::Lea { dst, .. } => FaultDest::Gpr(dst, 8),
            AKind::Alu { w, dst, .. } => FaultDest::Gpr(dst, w),
            AKind::Shift { w, dst, .. } => FaultDest::Gpr(dst, w),
            AKind::Cqo { .. } | AKind::ZeroRdx => FaultDest::Gpr(Reg::Rdx, 8),
            // div writes both rax and rdx; attribute to rax (quotient).
            AKind::Div { w, .. } => FaultDest::Gpr(Reg::Rax, w),
            AKind::Cmp { .. } | AKind::Test { .. } | AKind::Ucomi { .. } => FaultDest::Flags,
            AKind::SetCC { dst, .. } => FaultDest::Gpr(dst, 1),
            AKind::Cmov { w, dst, .. } => FaultDest::Gpr(dst, w),
            AKind::Jcc { .. } | AKind::Jmp { .. } | AKind::Ret => FaultDest::None,
            // A call's architected write is the pushed return address.
            AKind::Call { .. } => FaultDest::MemVal(8),
            AKind::Push { .. } => FaultDest::MemVal(8),
            AKind::Pop { dst } => FaultDest::Gpr(dst, 8),
            AKind::Sse { dst, .. } => FaultDest::Gpr(dst, 8),
            AKind::Cvtsi2f { wf, dst, .. } => FaultDest::Gpr(dst, wf),
            AKind::Cvtf2si { dst, .. } => FaultDest::Gpr(dst, 8),
            AKind::Cvtff { wd, dst, .. } => FaultDest::Gpr(dst, wd),
            AKind::MovQ { w, dst, .. } => FaultDest::Gpr(dst, w),
            AKind::Math { dst, .. } => FaultDest::Gpr(dst, 8),
            AKind::Out { .. } | AKind::DetectTrap => FaultDest::None,
        }
    }

    /// True if a fault can be injected into this instruction (it has an
    /// architected destination) — mirrors PIN-style destination-register
    /// injection.
    pub fn is_fault_site(&self) -> bool {
        !matches!(self.fault_dest(), FaultDest::None)
    }

    /// Approximate cycle cost, used for the §7.2 overhead experiments.
    pub fn cycles(&self) -> u64 {
        match self {
            AKind::Mov { dst: AOp::Mem(_), .. } | AKind::MovSd { dst: AOp::Mem(_), .. } => 2,
            AKind::Mov { src: AOp::Mem(_), .. }
            | AKind::MovSd { src: AOp::Mem(_), .. }
            | AKind::MovSx { src: AOp::Mem(_), .. } => 3,
            AKind::Mov { .. } | AKind::MovSd { .. } | AKind::MovSx { .. } | AKind::Lea { .. } | AKind::MovQ { .. } => 1,
            AKind::Alu { op: AluOp::Imul, .. } => 3,
            AKind::Alu { .. } | AKind::Shift { .. } | AKind::Cqo { .. } | AKind::ZeroRdx => 1,
            AKind::Div { .. } => 20,
            AKind::Cmp { .. } | AKind::Test { .. } | AKind::SetCC { .. } | AKind::Cmov { .. } => 1,
            AKind::Ucomi { .. } => 2,
            AKind::Jcc { .. } | AKind::Jmp { .. } => 1,
            AKind::Call { .. } | AKind::Ret => 2,
            AKind::Push { .. } | AKind::Pop { .. } => 1,
            AKind::Sse { op: SseOp::DivSd | SseOp::DivSs, .. } => 14,
            AKind::Sse { .. } => 4,
            AKind::Cvtsi2f { .. } | AKind::Cvtf2si { .. } | AKind::Cvtff { .. } => 4,
            AKind::Math { kind: MathKind::Fabs | MathKind::Floor, .. } => 2,
            AKind::Math { kind: MathKind::Sqrt, .. } => 15,
            AKind::Math { .. } => 40,
            AKind::Out { .. } => 1,
            AKind::DetectTrap => 1,
        }
    }
}

/// A compiled function's metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsmFunc {
    pub name: String,
    pub ir_id: FuncId,
    /// Index of the first instruction in the flat program.
    pub entry: u32,
    /// Index one past the last instruction.
    pub end: u32,
    /// Frame size in bytes (below the saved rbp).
    pub frame_size: u64,
}

/// A fully linked machine program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsmProgram {
    pub insts: Vec<AInst>,
    pub funcs: Vec<AsmFunc>,
    /// Entry index of `main`.
    pub main_entry: u32,
    /// Static count of fault-injectable instructions.
    pub static_sites: usize,
}

impl AsmProgram {
    /// The function containing instruction index `idx`.
    pub fn func_of(&self, idx: u32) -> Option<&AsmFunc> {
        self.funcs.iter().find(|f| f.entry <= idx && idx < f.end)
    }
}

// ---- printing ---------------------------------------------------------------

fn op_str(op: &AOp) -> String {
    match op {
        AOp::Reg(r) => format!("%{}", r.name()),
        AOp::Imm(v) => format!("${v}"),
        AOp::Mem(m) => {
            let disp = if m.disp < 0 {
                format!("-{:#x}", m.disp.unsigned_abs())
            } else {
                format!("{:#x}", m.disp)
            };
            match m.base {
                Some(b) => format!("{disp}(%{})", b.name()),
                None => disp,
            }
        }
    }
}

impl fmt::Display for AKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sfx = |w: u8| match w {
            1 => "b",
            2 => "w",
            4 => "l",
            _ => "q",
        };
        match self {
            AKind::Mov { w, dst, src } => write!(f, "mov{} {}, {}", sfx(*w), op_str(src), op_str(dst)),
            AKind::MovSx { wd, ws, dst, src } => {
                write!(f, "movs{}{} {}, %{}", sfx(*ws), sfx(*wd), op_str(src), dst.name())
            }
            AKind::Lea { dst, mem } => write!(f, "lea {}, %{}", op_str(&AOp::Mem(*mem)), dst.name()),
            AKind::Alu { op, w, dst, src } => {
                let name = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Imul => "imul",
                    AluOp::And => "and",
                    AluOp::Or => "or",
                    AluOp::Xor => "xor",
                };
                write!(f, "{name}{} {}, %{}", sfx(*w), op_str(src), dst.name())
            }
            AKind::Shift { op, w, dst, amt } => {
                let name = match op {
                    ShiftOp::Shl => "shl",
                    ShiftOp::Shr => "shr",
                    ShiftOp::Sar => "sar",
                };
                write!(f, "{name}{} {}, %{}", sfx(*w), op_str(amt), dst.name())
            }
            AKind::Cqo { .. } => write!(f, "cqo"),
            AKind::ZeroRdx => write!(f, "xorq %rdx, %rdx"),
            AKind::Div { signed, src, .. } => {
                write!(f, "{} {}", if *signed { "idiv" } else { "div" }, op_str(src))
            }
            AKind::Cmp { w, lhs, rhs } => write!(f, "cmp{} {}, {}", sfx(*w), op_str(rhs), op_str(lhs)),
            AKind::Test { w, lhs, rhs } => write!(f, "test{} {}, {}", sfx(*w), op_str(rhs), op_str(lhs)),
            AKind::SetCC { cc, dst } => write!(f, "set{} %{}", cc.name(), dst.name()),
            AKind::Cmov { cc, dst, src, .. } => {
                write!(f, "cmov{} {}, %{}", cc.name(), op_str(src), dst.name())
            }
            AKind::Jcc { cc, target } => write!(f, "j{} .L{target}", cc.name()),
            AKind::Jmp { target } => write!(f, "jmp .L{target}"),
            AKind::Call { target, .. } => write!(f, "callq .L{target}"),
            AKind::Ret => write!(f, "retq"),
            AKind::Push { src } => write!(f, "push {}", op_str(src)),
            AKind::Pop { dst } => write!(f, "pop %{}", dst.name()),
            AKind::MovSd { w, dst, src } => {
                write!(f, "movs{} {}, {}", if *w == 4 { "s" } else { "d" }, op_str(src), op_str(dst))
            }
            AKind::Sse { op, dst, src } => {
                let name = match op {
                    SseOp::AddSd => "addsd",
                    SseOp::SubSd => "subsd",
                    SseOp::MulSd => "mulsd",
                    SseOp::DivSd => "divsd",
                    SseOp::AddSs => "addss",
                    SseOp::SubSs => "subss",
                    SseOp::MulSs => "mulss",
                    SseOp::DivSs => "divss",
                };
                write!(f, "{name} {}, %{}", op_str(src), dst.name())
            }
            AKind::Ucomi { w, lhs, rhs } => {
                write!(f, "ucomis{} {}, %{}", if *w == 4 { "s" } else { "d" }, op_str(rhs), lhs.name())
            }
            AKind::Cvtsi2f { wf, dst, src } => {
                write!(f, "cvtsi2s{} {}, %{}", if *wf == 4 { "s" } else { "d" }, op_str(src), dst.name())
            }
            AKind::Cvtf2si { wf, dst, src } => {
                write!(f, "cvtts{}2si {}, %{}", if *wf == 4 { "s" } else { "d" }, op_str(src), dst.name())
            }
            AKind::Cvtff { wd, dst, src } => {
                if *wd == 8 {
                    write!(f, "cvtss2sd %{}, %{}", src.name(), dst.name())
                } else {
                    write!(f, "cvtsd2ss %{}, %{}", src.name(), dst.name())
                }
            }
            AKind::MovQ { dst, src, .. } => write!(f, "movq %{}, %{}", src.name(), dst.name()),
            AKind::Math { kind, dst, a, b } => {
                let name = match kind {
                    MathKind::Sqrt => "sqrtsd",
                    MathKind::Sin => "call.sin",
                    MathKind::Cos => "call.cos",
                    MathKind::Exp => "call.exp",
                    MathKind::Log => "call.log",
                    MathKind::Fabs => "andpd.abs",
                    MathKind::Floor => "roundsd.floor",
                    MathKind::Pow => "call.pow",
                };
                match b {
                    Some(b) => write!(f, "{name} %{}, %{}, %{}", a.name(), b.name(), dst.name()),
                    None => write!(f, "{name} %{}, %{}", a.name(), dst.name()),
                }
            }
            AKind::Out { kind, src } => {
                let k = match kind {
                    OutKind::I64 => "i64",
                    OutKind::F64 => "f64",
                    OutKind::Byte => "byte",
                };
                write!(f, "out.{k} {}", op_str(src))
            }
            AKind::DetectTrap => write!(f, "ud2.detect"),
        }
    }
}

/// Render a program listing (debugging / documentation).
pub fn print_program(p: &AsmProgram) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for func in &p.funcs {
        let _ = writeln!(s, "{}: # frame {} bytes", func.name, func.frame_size);
        for i in func.entry..func.end {
            let inst = &p.insts[i as usize];
            let _ = writeln!(s, "  .L{i}: {}  # {:?}", inst.kind, inst.role);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_dest_classification() {
        let mov_rm = AKind::Mov {
            w: 8,
            dst: AOp::Reg(Reg::Rax),
            src: AOp::Mem(MemRef::rbp(-8)),
        };
        assert_eq!(mov_rm.fault_dest(), FaultDest::Gpr(Reg::Rax, 8));
        let mov_mr = AKind::Mov {
            w: 4,
            dst: AOp::Mem(MemRef::rbp(-16)),
            src: AOp::Reg(Reg::Rcx),
        };
        assert_eq!(mov_mr.fault_dest(), FaultDest::MemVal(4));
        let cmp = AKind::Cmp { w: 8, lhs: AOp::Reg(Reg::Rax), rhs: AOp::Imm(0) };
        assert_eq!(cmp.fault_dest(), FaultDest::Flags);
        assert_eq!(AKind::Ret.fault_dest(), FaultDest::None);
        assert!(!AKind::Jmp { target: 0 }.is_fault_site());
        assert!(AKind::Push { src: AOp::Reg(Reg::Rbp) }.is_fault_site());
    }

    #[test]
    fn cycle_model_sane() {
        assert!(AKind::Div { w: 8, signed: true, src: AOp::Reg(Reg::Rcx) }.cycles() > 10);
        assert_eq!(AKind::Lea { dst: Reg::Rax, mem: MemRef::rbp(0) }.cycles(), 1);
        let load = AKind::Mov {
            w: 8,
            dst: AOp::Reg(Reg::Rax),
            src: AOp::Mem(MemRef::rbp(-8)),
        };
        let store = AKind::Mov {
            w: 8,
            dst: AOp::Mem(MemRef::rbp(-8)),
            src: AOp::Reg(Reg::Rax),
        };
        assert!(load.cycles() > store.cycles());
    }

    #[test]
    fn display_att_flavour() {
        let i = AKind::Mov {
            w: 8,
            dst: AOp::Reg(Reg::Rax),
            src: AOp::Mem(MemRef::rbp(-0x40)),
        };
        assert_eq!(i.to_string(), "movq -0x40(%rbp), %rax");
        let c = AKind::Cmp { w: 4, lhs: AOp::Reg(Reg::Rax), rhs: AOp::Imm(10) };
        assert_eq!(c.to_string(), "cmpl $10, %rax");
        let t = AKind::Test { w: 1, lhs: AOp::Reg(Reg::Rax), rhs: AOp::Imm(1) };
        assert_eq!(t.to_string(), "testb $1, %rax");
    }

    #[test]
    fn reg_pools_disjoint_from_frame_regs() {
        assert!(!Reg::GPR_POOL.contains(&Reg::Rbp));
        assert!(!Reg::GPR_POOL.contains(&Reg::Rsp));
        for r in Reg::XMM_POOL {
            assert!(r.is_xmm());
        }
    }
}
