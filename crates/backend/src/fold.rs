//! Backend IR folding, modelling the LLVM behaviour behind the paper's
//! *comparison penetration* (§5.2, Figures 8/9): when an `icmp` is
//! duplicated and a checker compares the two results, the compiler's
//! block-local value analysis recognizes the duplicate as redundant and
//! folds the checker compare into a constant, silently nullifying the
//! protection.
//!
//! The model is a block-local structural value-equivalence analysis
//! (SelectionDAG-style CSE): two instructions in the same block are
//! equivalent if their kinds match and their operands are equivalent;
//! loads additionally require the same *memory epoch* (no intervening
//! store/call). Comparisons whose operands are equivalent fold to a
//! constant; dead code (including the orphaned shadow chain) is then
//! eliminated.
//!
//! Flowery's anti-comparison patch (§6.3) defeats exactly this analysis by
//! moving the compare into a separate block behind an opaque condition.

use flowery_ir::inst::{Callee, InstKind};
use flowery_ir::module::{Function, Module};
use flowery_ir::value::{InstId, Op, Value};
use flowery_ir::{Const, IPred};
use std::collections::HashMap;

/// Statistics from a folding run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Comparisons folded to constants.
    pub folded_compares: usize,
    /// Instructions removed as dead afterwards.
    pub removed_dead: usize,
}

/// Run compare folding + DCE over every function. Mutates `m` in place.
pub fn fold_redundant_compares(m: &mut Module) -> FoldStats {
    let mut stats = FoldStats::default();
    for fi in 0..m.functions.len() {
        stats.folded_compares += fold_function(&mut m.functions[fi]);
    }
    stats.removed_dead = eliminate_dead_code(m);
    stats
}

fn fold_function(f: &mut Function) -> usize {
    let mut folded = 0;
    // (inst -> (block index, memory epoch)) for the current block walk.
    for bi in 0..f.blocks.len() {
        // Epoch of each instruction position in this block.
        let insts = f.blocks[bi].insts.clone();
        let mut epoch = 0u32;
        let mut epoch_of: HashMap<InstId, u32> = HashMap::new();
        for &iid in &insts {
            epoch_of.insert(iid, epoch);
            if memory_barrier(&f.inst(iid).kind) {
                epoch += 1;
            }
        }
        // Fold comparison *validations*: an icmp whose operands are (a)
        // literally the same value, or (b) two comparison results that are
        // structurally equivalent. General arithmetic duplication chains
        // are NOT folded — matching the observed LLVM behaviour (the
        // paper's Figures 8/9 show only the duplicated compare and its
        // checker disappearing, while duplicated arithmetic survives).
        let mut replacements: Vec<(InstId, bool)> = Vec::new();
        for &iid in &insts {
            if let InstKind::ICmp { pred, lhs, rhs, .. } = &f.inst(iid).kind {
                let mut memo = HashMap::new();
                let same = *lhs == *rhs;
                let both_compares = is_compare_value(f, *lhs) && is_compare_value(f, *rhs);
                if same || (both_compares && ops_equiv(f, &epoch_of, *lhs, *rhs, &mut memo)) {
                    // Equal values: resolve the predicate.
                    let result = match pred {
                        IPred::Eq | IPred::Sle | IPred::Sge | IPred::Ule | IPred::Uge => true,
                        IPred::Ne | IPred::Slt | IPred::Sgt | IPred::Ult | IPred::Ugt => false,
                    };
                    replacements.push((iid, result));
                }
            }
        }
        for (iid, val) in replacements {
            f.replace_all_uses(Value::Inst(iid), Op::Const(Const::bool(val)));
            folded += 1;
        }
    }
    folded
}

/// Is this operand the result of a comparison (directly, or through a
/// bitcast, as duplication checkers produce for float compares)?
fn is_compare_value(f: &Function, op: Op) -> bool {
    let Some(id) = op.as_inst() else { return false };
    match &f.inst(id).kind {
        InstKind::ICmp { .. } | InstKind::FCmp { .. } => true,
        InstKind::Cast { val, .. } => is_compare_value(f, *val),
        _ => false,
    }
}

/// Does this instruction end a memory epoch (conservatively clobber memory)?
fn memory_barrier(kind: &InstKind) -> bool {
    match kind {
        InstKind::Store { .. } => true,
        InstKind::Call { callee, .. } => match callee {
            Callee::Func(_) => true,
            Callee::Intrinsic(i) => !i.is_math(),
        },
        _ => false,
    }
}

/// Structural operand equivalence, block-local.
fn ops_equiv(
    f: &Function,
    epoch_of: &HashMap<InstId, u32>,
    a: Op,
    b: Op,
    memo: &mut HashMap<(InstId, InstId), bool>,
) -> bool {
    if a == b {
        return true;
    }
    let (Some(ia), Some(ib)) = (a.as_inst(), b.as_inst()) else {
        return false;
    };
    insts_equiv(f, epoch_of, ia, ib, memo)
}

fn insts_equiv(
    f: &Function,
    epoch_of: &HashMap<InstId, u32>,
    a: InstId,
    b: InstId,
    memo: &mut HashMap<(InstId, InstId), bool>,
) -> bool {
    if a == b {
        return true;
    }
    let key = if a < b { (a, b) } else { (b, a) };
    if let Some(&r) = memo.get(&key) {
        return r;
    }
    // Guard against cycles (not possible in well-formed straight-line data
    // flow, but cheap insurance): assume inequivalent while computing.
    memo.insert(key, false);
    let r = insts_equiv_inner(f, epoch_of, a, b, memo);
    memo.insert(key, r);
    r
}

fn insts_equiv_inner(
    f: &Function,
    epoch_of: &HashMap<InstId, u32>,
    a: InstId,
    b: InstId,
    memo: &mut HashMap<(InstId, InstId), bool>,
) -> bool {
    let (ka, kb) = (&f.inst(a).kind, &f.inst(b).kind);
    let eq = |x: Op, y: Op, memo: &mut HashMap<(InstId, InstId), bool>| ops_equiv(f, epoch_of, x, y, memo);
    match (ka, kb) {
        (InstKind::Load { ptr: pa, ty: ta }, InstKind::Load { ptr: pb, ty: tb }) => {
            // Loads are equivalent only within the same block and memory
            // epoch (no store/call between them).
            let (Some(&ea), Some(&eb)) = (epoch_of.get(&a), epoch_of.get(&b)) else {
                return false;
            };
            ta == tb && ea == eb && eq(*pa, *pb, memo)
        }
        (InstKind::Bin { op: oa, ty: ta, lhs: la, rhs: ra }, InstKind::Bin { op: ob, ty: tb, lhs: lb, rhs: rb }) => {
            if oa != ob || ta != tb {
                return false;
            }
            if eq(*la, *lb, memo) && eq(*ra, *rb, memo) {
                return true;
            }
            oa.commutative() && eq(*la, *rb, memo) && eq(*ra, *lb, memo)
        }
        (
            InstKind::ICmp { pred: pa, ty: ta, lhs: la, rhs: ra },
            InstKind::ICmp { pred: pb, ty: tb, lhs: lb, rhs: rb },
        ) => ta == tb && pa == pb && eq(*la, *lb, memo) && eq(*ra, *rb, memo),
        (
            InstKind::FCmp { pred: pa, ty: ta, lhs: la, rhs: ra },
            InstKind::FCmp { pred: pb, ty: tb, lhs: lb, rhs: rb },
        ) => ta == tb && pa == pb && eq(*la, *lb, memo) && eq(*ra, *rb, memo),
        (
            InstKind::Cast { kind: ca, from: fa, to: ta, val: va },
            InstKind::Cast { kind: cb, from: fb, to: tb, val: vb },
        ) => ca == cb && fa == fb && ta == tb && eq(*va, *vb, memo),
        (InstKind::Gep { base: ba, index: ia, elem: ea }, InstKind::Gep { base: bb, index: ib, elem: eb }) => {
            ea == eb && eq(*ba, *bb, memo) && eq(*ia, *ib, memo)
        }
        (InstKind::Select { ty: ta, cond: ca, t: xa, f: ya }, InstKind::Select { ty: tb, cond: cb, t: xb, f: yb }) => {
            ta == tb && eq(*ca, *cb, memo) && eq(*xa, *xb, memo) && eq(*ya, *yb, memo)
        }
        (
            InstKind::Call { callee: Callee::Intrinsic(ia), args: aa },
            InstKind::Call { callee: Callee::Intrinsic(ib), args: ab },
        ) => {
            // Pure math intrinsics only.
            ia == ib
                && ia.is_math()
                && aa.len() == ab.len()
                && aa.iter().zip(ab).all(|(&x, &y)| ops_equiv(f, epoch_of, x, y, memo))
        }
        _ => false,
    }
}

/// Remove instructions whose results are unused and which have no side
/// effects. Iterates to a fixed point so whole orphaned chains disappear
/// (the shadow compare chain after folding). Returns the number removed.
pub fn eliminate_dead_code(m: &mut Module) -> usize {
    let mut removed = 0;
    for f in &mut m.functions {
        loop {
            let mut uses = vec![0u32; f.insts.len()];
            for block in &f.blocks {
                for &iid in &block.insts {
                    for op in f.insts[iid.index()].operands() {
                        if let Some(d) = op.as_inst() {
                            uses[d.index()] += 1;
                        }
                    }
                }
                if let Some(op) = block.term.operand() {
                    if let Some(d) = op.as_inst() {
                        uses[d.index()] += 1;
                    }
                }
            }
            let mut changed = false;
            for block in &mut f.blocks {
                block.insts.retain(|&iid| {
                    let data = &f.insts[iid.index()];
                    let dead = uses[iid.index()] == 0
                        && !data.has_side_effects()
                        && !matches!(data.kind, InstKind::Alloca { .. });
                    if dead {
                        removed += 1;
                        changed = true;
                    }
                    !dead
                });
            }
            if !changed {
                break;
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_ir::builder::{FuncBuilder, ModuleBuilder};
    use flowery_ir::inst::{BinOp, Terminator};
    use flowery_ir::types::Type;
    use flowery_ir::value::BlockId;
    use flowery_ir::IPred;

    /// Build the paper's Figure 8 shape: duplicated loads + duplicated icmp
    /// + checker `icmp eq` in one block.
    fn figure8_module() -> (Module, InstId) {
        let mut mb = ModuleBuilder::new("fig8");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let a = fb.alloca(Type::I64, 1);
        let b = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(3), Op::inst(a));
        fb.store(Type::I64, Op::ci64(7), Op::inst(b));
        let l1 = fb.load(Type::I64, Op::inst(a));
        let l2 = fb.load(Type::I64, Op::inst(a)); // shadow load of a
        let l3 = fb.load(Type::I64, Op::inst(b));
        let l4 = fb.load(Type::I64, Op::inst(b)); // shadow load of b
        let c1 = fb.icmp(IPred::Slt, Type::I64, Op::inst(l1), Op::inst(l3));
        let c2 = fb.icmp(IPred::Slt, Type::I64, Op::inst(l2), Op::inst(l4));
        let chk = fb.icmp(IPred::Eq, Type::I1, Op::inst(c1), Op::inst(c2));
        let ok_bb = fb.new_block("ok");
        let detect_bb = fb.new_block("detect");
        fb.br(Op::inst(chk), ok_bb, detect_bb);
        fb.switch_to(detect_bb);
        fb.intrinsic(flowery_ir::Intrinsic::DetectError, vec![]);
        fb.jmp(ok_bb);
        fb.switch_to(ok_bb);
        let z = fb.cast(flowery_ir::CastKind::Zext, Type::I1, Type::I64, Op::inst(c1));
        fb.ret(Some(Op::inst(z)));
        mb.add_func(fb.finish());
        (mb.finish(), chk)
    }

    #[test]
    fn folds_checker_compare_to_true() {
        let (mut m, chk) = figure8_module();
        let stats = fold_redundant_compares(&mut m);
        assert_eq!(stats.folded_compares, 1);
        // The branch now has a constant condition.
        let f = &m.functions[0];
        match &f.block(BlockId(0)).term {
            Terminator::Br { cond, .. } => {
                assert_eq!(*cond, Op::Const(Const::bool(true)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The checker icmp and the shadow chain are gone.
        let live = f.live_insts();
        assert!(!live.contains(&chk), "checker compare removed");
        assert!(stats.removed_dead >= 3, "shadow icmp + shadow loads removed, got {}", stats.removed_dead);
    }

    #[test]
    fn store_between_loads_blocks_folding() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let a = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(1), Op::inst(a));
        let l1 = fb.load(Type::I64, Op::inst(a));
        let c1 = fb.icmp(IPred::Slt, Type::I64, Op::inst(l1), Op::ci64(5));
        fb.store(Type::I64, Op::ci64(2), Op::inst(a)); // epoch barrier
        let l2 = fb.load(Type::I64, Op::inst(a));
        let c2 = fb.icmp(IPred::Slt, Type::I64, Op::inst(l2), Op::ci64(5));
        let chk = fb.icmp(IPred::Eq, Type::I1, Op::inst(c1), Op::inst(c2));
        let z = fb.cast(flowery_ir::CastKind::Zext, Type::I1, Type::I64, Op::inst(chk));
        fb.ret(Some(Op::inst(z)));
        mb.add_func(fb.finish());
        let mut m = mb.finish();
        let stats = fold_redundant_compares(&mut m);
        assert_eq!(stats.folded_compares, 0);
    }

    #[test]
    fn arithmetic_duplication_chains_are_not_folded() {
        // Checker over duplicated *arithmetic* must survive: only compare
        // validations fold (the paper's comparison penetration shape).
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let a = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(3), Op::inst(a));
        let l1 = fb.load(Type::I64, Op::inst(a));
        let l2 = fb.load(Type::I64, Op::inst(a)); // shadow load
        let x1 = fb.bin(BinOp::Add, Type::I64, Op::inst(l1), Op::ci64(1));
        let x2 = fb.bin(BinOp::Add, Type::I64, Op::inst(l2), Op::ci64(1)); // shadow add
        let chk = fb.icmp(IPred::Eq, Type::I64, Op::inst(x1), Op::inst(x2));
        let z = fb.cast(flowery_ir::CastKind::Zext, Type::I1, Type::I64, Op::inst(chk));
        fb.ret(Some(Op::inst(z)));
        mb.add_func(fb.finish());
        let mut m = mb.finish();
        let stats = fold_redundant_compares(&mut m);
        assert_eq!(stats.folded_compares, 0, "arithmetic checker must survive");
    }

    #[test]
    fn cross_block_compare_not_folded() {
        // Anti-comparison shape: the compare lives in a different block than
        // the duplicated loads, so the block-local analysis cannot fold it.
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let a = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(5), Op::inst(a));
        let l1 = fb.load(Type::I64, Op::inst(a));
        let l2 = fb.load(Type::I64, Op::inst(a));
        let next = fb.new_block("cmpblock");
        fb.jmp(next);
        fb.switch_to(next);
        let chk = fb.icmp(IPred::Eq, Type::I64, Op::inst(l1), Op::inst(l2));
        let z = fb.cast(flowery_ir::CastKind::Zext, Type::I1, Type::I64, Op::inst(chk));
        fb.ret(Some(Op::inst(z)));
        mb.add_func(fb.finish());
        let mut m = mb.finish();
        let stats = fold_redundant_compares(&mut m);
        // The analysis is strictly block-local (SelectionDAG scope): the
        // compare sits in a different block than the loads, so the load
        // equivalence cannot be established and nothing folds. This is the
        // escape hatch Flowery's anti-comparison patch exploits.
        assert_eq!(stats.folded_compares, 0);
    }

    #[test]
    fn loads_in_different_blocks_not_folded() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let a = fb.alloca(Type::I64, 1);
        fb.store(Type::I64, Op::ci64(5), Op::inst(a));
        let l1 = fb.load(Type::I64, Op::inst(a));
        let c1 = fb.icmp(IPred::Slt, Type::I64, Op::inst(l1), Op::ci64(9));
        let next = fb.new_block("b2");
        fb.jmp(next);
        fb.switch_to(next);
        let l2 = fb.load(Type::I64, Op::inst(a)); // different block
        let c2 = fb.icmp(IPred::Slt, Type::I64, Op::inst(l2), Op::ci64(9));
        let chk = fb.icmp(IPred::Eq, Type::I1, Op::inst(c1), Op::inst(c2));
        let z = fb.cast(flowery_ir::CastKind::Zext, Type::I1, Type::I64, Op::inst(chk));
        fb.ret(Some(Op::inst(z)));
        mb.add_func(fb.finish());
        let mut m = mb.finish();
        let stats = fold_redundant_compares(&mut m);
        assert_eq!(stats.folded_compares, 0, "cross-block loads must not fold");
    }

    #[test]
    fn trivially_equal_operands_fold() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![], Some(Type::I64));
        let v = fb.bin(BinOp::Add, Type::I64, Op::ci64(1), Op::ci64(2));
        let c = fb.icmp(IPred::Slt, Type::I64, Op::inst(v), Op::inst(v));
        let z = fb.cast(flowery_ir::CastKind::Zext, Type::I1, Type::I64, Op::inst(c));
        fb.ret(Some(Op::inst(z)));
        mb.add_func(fb.finish());
        let mut m = mb.finish();
        let stats = fold_redundant_compares(&mut m);
        assert_eq!(stats.folded_compares, 1);
        // x < x folds to false.
        let f = &m.functions[0];
        assert!(f
            .blocks
            .iter()
            .all(|b| b.insts.iter().all(|&i| !matches!(f.inst(i).kind, InstKind::ICmp { .. }))));
    }

    #[test]
    fn dce_preserves_side_effects_and_semantics() {
        let (mut m, _) = figure8_module();
        let before = flowery_ir::interp::Interpreter::new(&m).run(&flowery_ir::interp::ExecConfig::default(), None);
        fold_redundant_compares(&mut m);
        flowery_ir::verify::verify_module(&m).unwrap();
        let after = flowery_ir::interp::Interpreter::new(&m).run(&flowery_ir::interp::ExecConfig::default(), None);
        assert_eq!(before.status, after.status);
        assert_eq!(before.output, after.output);
        assert!(after.dyn_insts < before.dyn_insts);
    }

    #[test]
    fn commutative_ops_match_swapped() {
        // Equivalence recursion understands commutativity below compares.
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FuncBuilder::new("main", vec![Type::I64, Type::I64], Some(Type::I64));
        let x = fb.bin(BinOp::Add, Type::I64, Op::param(0), Op::param(1));
        let y = fb.bin(BinOp::Add, Type::I64, Op::param(1), Op::param(0));
        let c1 = fb.icmp(IPred::Slt, Type::I64, Op::inst(x), Op::ci64(10));
        let c2 = fb.icmp(IPred::Slt, Type::I64, Op::inst(y), Op::ci64(10));
        let chk = fb.icmp(IPred::Eq, Type::I1, Op::inst(c1), Op::inst(c2));
        let z = fb.cast(flowery_ir::CastKind::Zext, Type::I1, Type::I64, Op::inst(chk));
        fb.ret(Some(Op::inst(z)));
        mb.add_func(fb.finish());
        let mut m = mb.finish();
        assert_eq!(fold_redundant_compares(&mut m).folded_compares, 1);
    }
}
