//! Periodic machine-state snapshots for fast-forwarded injection trials.
//!
//! The asm-level twin of [`flowery_ir::interp::snapshot`]: during one
//! instrumented golden run the [`Machine`](crate::machine::Machine)
//! captures the register file, cycle/instruction counters, optionally the
//! profile accumulator, and a cumulative dirty-page memory overlay on a
//! [`Cadence`]. A trial restores the nearest snapshot at-or-before its
//! injection site and executes only the suffix, bit-identical to a
//! scratch run.

use crate::machine::MachResult;
use crate::mir::Reg;
use flowery_ir::interp::memory::{Memory, PageMap, PageRecorder};
use flowery_ir::interp::Cadence;

/// One point-in-time capture of machine state. Memory is a cumulative
/// dirty-page overlay against the pristine post-init image; pages are
/// `Arc`-shared across snapshots.
#[derive(Debug)]
pub struct AsmSnapshot {
    /// Dynamic instructions executed before this point (absolute).
    pub(crate) dyn_insts: u64,
    /// Fault sites executed before this point (absolute).
    pub(crate) fault_sites: u64,
    /// Modelled cycles accumulated before this point.
    pub(crate) cycles: u64,
    /// Next instruction to execute.
    pub(crate) ip: u32,
    /// The whole register file, flags included.
    pub(crate) regs: [u64; Reg::COUNT],
    /// Output bytes emitted so far (restored from the golden output).
    pub(crate) output_len: usize,
    /// Per-instruction execution counts at this point, when the capture
    /// run profiled. Restoring it is what lets profiled campaigns
    /// fast-forward.
    pub(crate) profile: Option<Vec<u64>>,
    /// Cumulative dirty-page overlay against the base image.
    pub(crate) pages: PageMap,
}

/// All snapshots from one golden machine run. Built once per cached
/// golden, shared read-only across worker threads.
#[derive(Debug)]
pub struct AsmSnapshotSet {
    pub(crate) base: Memory,
    pub(crate) golden: MachResult,
    pub(crate) cadence: Cadence,
    pub(crate) snaps: Vec<AsmSnapshot>,
    /// `first_exec[ip]` = `dyn_insts` at the instruction's *first* execution
    /// during the capture run (`u64::MAX` = never executed). Recorded only
    /// by fresh captures; `None` for sets built by shared-prefix
    /// continuation, which therefore cannot themselves seed further sharing.
    pub(crate) first_exec: Option<Vec<u64>>,
    /// Leading snapshots `Arc`-shared with the raw set this set was derived
    /// from (0 for fresh captures).
    pub(crate) shared_snaps: usize,
}

impl AsmSnapshotSet {
    /// The fault-free result of the capture run.
    pub fn golden(&self) -> &MachResult {
        &self.golden
    }

    /// Snapshot cadence in dynamic instructions or fault sites.
    pub fn cadence(&self) -> Cadence {
        self.cadence
    }

    /// Numeric cadence spacing (see [`Cadence::value`]).
    pub fn interval(&self) -> u64 {
        self.cadence.value()
    }

    /// Number of captured snapshots.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// True when no snapshot was captured (program shorter than interval).
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Leading snapshots shared with the raw variant's set (see
    /// [`crate::machine::Machine::capture_snapshots_from`]).
    pub fn shared_snaps(&self) -> usize {
        self.shared_snaps
    }

    /// True when the set was captured under the given memory geometry —
    /// restoring into a differently-sized image would be unsound, so
    /// callers holding a deserialized set must check before attaching it.
    pub fn matches_geometry(&self, mem_size: u64, stack_size: u64) -> bool {
        self.base.size() == mem_size && self.base.stack_limit() == mem_size - stack_size
    }

    /// The last snapshot whose fault-site counter has not yet passed
    /// `site_index`.
    pub(crate) fn nearest(&self, site_index: u64) -> Option<&AsmSnapshot> {
        let i = self.snaps.partition_point(|s| s.fault_sites <= site_index);
        i.checked_sub(1).map(|i| &self.snaps[i])
    }
}

/// Capture-side hook threaded through the machine's golden run.
pub(crate) struct AsmSnapshotRecorder {
    cadence: Cadence,
    next: u64,
    budget: Option<u64>,
    /// Snapshot-count cap for self-tuning captures; `None` preserves the
    /// caller's explicit cadence exactly (only the byte budget may widen).
    max_snaps: Option<usize>,
    pages: PageRecorder,
    /// First-execution `dyn_insts` per program position; `None` on
    /// continuation captures (the shared prefix's entries are unknown).
    pub(crate) first_exec: Option<Vec<u64>>,
    pub(crate) snaps: Vec<AsmSnapshot>,
}

impl AsmSnapshotRecorder {
    pub(crate) fn new(
        program_len: usize,
        cadence: Cadence,
        budget: Option<u64>,
        max_snaps: Option<usize>,
    ) -> AsmSnapshotRecorder {
        assert!(cadence.value() > 0, "snapshot cadence must be positive");
        AsmSnapshotRecorder {
            cadence,
            next: cadence.value(),
            budget,
            max_snaps,
            pages: PageRecorder::new(),
            first_exec: Some(vec![u64::MAX; program_len]),
            snaps: Vec::new(),
        }
    }

    /// A recorder that continues capturing after a translated shared prefix:
    /// `snaps` are the prefix snapshots, the cumulative overlay starts from
    /// the last of them, and the next capture is scheduled one cadence step
    /// past it. First executions are not recorded (the prefix's are
    /// unknown).
    pub(crate) fn from_shared(
        cadence: Cadence,
        budget: Option<u64>,
        max_snaps: Option<usize>,
        snaps: Vec<AsmSnapshot>,
    ) -> AsmSnapshotRecorder {
        assert!(cadence.value() > 0, "snapshot cadence must be positive");
        let last = snaps.last().expect("shared prefix must be nonempty");
        let next = match cadence {
            Cadence::Insts(k) => last.dyn_insts + k,
            Cadence::Sites(k) => last.fault_sites + k,
        };
        AsmSnapshotRecorder {
            cadence,
            next,
            budget,
            max_snaps,
            pages: PageRecorder::from_overlay(&last.pages),
            first_exec: None,
            snaps,
        }
    }

    /// Called at the top of the dispatch loop, before the next instruction.
    pub(crate) fn due(&self, dyn_insts: u64, fault_sites: u64) -> bool {
        match self.cadence {
            Cadence::Insts(_) => dyn_insts >= self.next,
            Cadence::Sites(_) => fault_sites >= self.next,
        }
    }

    /// The cadence after any budget-driven widening.
    pub(crate) fn final_cadence(&self) -> Cadence {
        self.cadence
    }

    /// Record the first execution of the instruction at `ip`. `dyn_insts`
    /// uses the snapshot-hook convention: that instruction has not yet
    /// started.
    #[inline]
    pub(crate) fn note_exec(&mut self, ip: u32, dyn_insts: u64) {
        if let Some(first) = self.first_exec.as_mut() {
            let slot = &mut first[ip as usize];
            if *slot == u64::MAX {
                *slot = dyn_insts;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn capture(
        &mut self,
        dyn_insts: u64,
        fault_sites: u64,
        cycles: u64,
        ip: u32,
        regs: [u64; Reg::COUNT],
        output_len: usize,
        profile: Option<&Vec<u64>>,
        mem: &mut Memory,
    ) {
        let pages = self.pages.sync(mem);
        self.snaps.push(AsmSnapshot {
            dyn_insts,
            fault_sites,
            cycles,
            ip,
            regs,
            output_len,
            profile: profile.cloned(),
            pages,
        });
        while self.budget.is_some_and(|b| self.pages.live_bytes() > b) && self.snaps.len() > 1 {
            self.widen();
        }
        while self.max_snaps.is_some_and(|m| self.snaps.len() > m) && self.snaps.len() > 1 {
            self.widen();
        }
        self.next = match self.cadence {
            Cadence::Insts(k) => dyn_insts + k,
            Cadence::Sites(k) => fault_sites + k,
        };
    }

    /// Double the cadence and keep every other snapshot, reclaiming the
    /// page copies the dropped snapshots were the sole owners of. See the
    /// IR twin in `flowery_ir::interp::snapshot` for the rationale.
    fn widen(&mut self) {
        self.cadence = self.cadence.widened();
        let mut keep = false;
        self.snaps.retain(|_| {
            keep = !keep;
            keep
        });
    }
}

/// Per-worker reusable buffers for machine trials: the scratch memory
/// image (reset via dirty-page reverts) and the output buffer.
#[derive(Default)]
pub struct AsmScratch {
    pub(crate) mem: Option<Memory>,
    pub(crate) output: Vec<u8>,
}

impl AsmScratch {
    pub fn new() -> AsmScratch {
        AsmScratch::default()
    }

    /// Hand a trial's output buffer back for reuse once it has been
    /// classified.
    pub fn recycle_output(&mut self, mut output: Vec<u8>) {
        output.clear();
        self.output = output;
    }
}
