//! Periodic machine-state snapshots for fast-forwarded injection trials.
//!
//! The asm-level twin of [`flowery_ir::interp::snapshot`]: during one
//! instrumented golden run the [`Machine`](crate::machine::Machine)
//! captures the register file, cycle/instruction counters, and a
//! cumulative dirty-page memory overlay every `interval` dynamic
//! instructions. A trial restores the nearest snapshot at-or-before its
//! injection site and executes only the suffix, bit-identical to a
//! scratch run.

use crate::machine::MachResult;
use crate::mir::Reg;
use flowery_ir::interp::memory::{Memory, PageMap, PageRecorder};

/// One point-in-time capture of machine state. Memory is a cumulative
/// dirty-page overlay against the pristine post-init image; pages are
/// `Arc`-shared across snapshots.
pub struct AsmSnapshot {
    /// Dynamic instructions executed before this point (absolute).
    pub(crate) dyn_insts: u64,
    /// Fault sites executed before this point (absolute).
    pub(crate) fault_sites: u64,
    /// Modelled cycles accumulated before this point.
    pub(crate) cycles: u64,
    /// Next instruction to execute.
    pub(crate) ip: u32,
    /// The whole register file, flags included.
    pub(crate) regs: [u64; Reg::COUNT],
    /// Output bytes emitted so far (restored from the golden output).
    pub(crate) output_len: usize,
    /// Cumulative dirty-page overlay against the base image.
    pub(crate) pages: PageMap,
}

/// All snapshots from one golden machine run. Built once per cached
/// golden, shared read-only across worker threads.
pub struct AsmSnapshotSet {
    pub(crate) base: Memory,
    pub(crate) golden: MachResult,
    pub(crate) interval: u64,
    pub(crate) snaps: Vec<AsmSnapshot>,
}

impl AsmSnapshotSet {
    /// The fault-free result of the capture run.
    pub fn golden(&self) -> &MachResult {
        &self.golden
    }

    /// Snapshot cadence in dynamic instructions.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of captured snapshots.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// True when no snapshot was captured (program shorter than interval).
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// The last snapshot whose fault-site counter has not yet passed
    /// `site_index`.
    pub(crate) fn nearest(&self, site_index: u64) -> Option<&AsmSnapshot> {
        let i = self.snaps.partition_point(|s| s.fault_sites <= site_index);
        i.checked_sub(1).map(|i| &self.snaps[i])
    }
}

/// Capture-side hook threaded through the machine's golden run.
pub(crate) struct AsmSnapshotRecorder {
    interval: u64,
    next: u64,
    budget: Option<u64>,
    pages: PageRecorder,
    pub(crate) snaps: Vec<AsmSnapshot>,
}

impl AsmSnapshotRecorder {
    pub(crate) fn new(interval: u64, budget: Option<u64>) -> AsmSnapshotRecorder {
        assert!(interval > 0, "snapshot interval must be positive");
        AsmSnapshotRecorder {
            interval,
            next: interval,
            budget,
            pages: PageRecorder::new(),
            snaps: Vec::new(),
        }
    }

    pub(crate) fn due(&self, dyn_insts: u64) -> bool {
        dyn_insts >= self.next
    }

    /// The cadence after any budget-driven widening.
    pub(crate) fn final_interval(&self) -> u64 {
        self.interval
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn capture(
        &mut self,
        dyn_insts: u64,
        fault_sites: u64,
        cycles: u64,
        ip: u32,
        regs: [u64; Reg::COUNT],
        output_len: usize,
        mem: &mut Memory,
    ) {
        let pages = self.pages.sync(mem);
        self.snaps
            .push(AsmSnapshot { dyn_insts, fault_sites, cycles, ip, regs, output_len, pages });
        while self.budget.is_some_and(|b| self.pages.live_bytes() > b) && self.snaps.len() > 1 {
            self.widen();
        }
        self.next = dyn_insts + self.interval;
    }

    /// Double the cadence and keep every other snapshot, reclaiming the
    /// page copies the dropped snapshots were the sole owners of. See the
    /// IR twin in `flowery_ir::interp::snapshot` for the rationale.
    fn widen(&mut self) {
        self.interval = self.interval.saturating_mul(2);
        let mut keep = false;
        self.snaps.retain(|_| {
            keep = !keep;
            keep
        });
    }
}

/// Per-worker reusable buffers for machine trials: the scratch memory
/// image (reset via dirty-page reverts) and the output buffer.
#[derive(Default)]
pub struct AsmScratch {
    pub(crate) mem: Option<Memory>,
    pub(crate) output: Vec<u8>,
}

impl AsmScratch {
    pub fn new() -> AsmScratch {
        AsmScratch::default()
    }

    /// Hand a trial's output buffer back for reuse once it has been
    /// classified.
    pub fn recycle_output(&mut self, mut output: Vec<u8>) {
        output.clear();
        self.output = output;
    }
}
