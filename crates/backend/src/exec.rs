//! Execution engines for the machine layer.
//!
//! [`Machine`] runs trials through an [`Executor`], selected per run by
//! [`ExecConfig::executor`]. Two engines exist today:
//!
//! - [`InterpExec`] — the decode-and-dispatch interpreter
//!   (`Machine::exec_interp`), kept as the reference semantics;
//! - [`CompiledExec`] — a threaded-code executor that pre-lowers each
//!   [`AInst`] into a flat array of specialized micro-ops (`Op`): opcode,
//!   operand form, and width are resolved at translation time, immediates
//!   are pre-canonicalized, frame-slot addresses pre-split, flag updates
//!   branch-free, and memory accesses width-monomorphized. Trials that
//!   carry no snapshot recorder and no profile run a *fast loop* that keeps
//!   the instruction/cycle/site counters in locals and folds the
//!   output-flood check into the only arms that can grow the output.
//!
//! The engine contract is strict bit-identity: for any (program, config,
//! fault, starting state), both engines produce byte-identical status,
//! output, `dyn_insts`, `fault_sites`, `cycles`, `injected_inst`, profile,
//! and snapshot streams. `tests/exec_equivalence.rs` enforces this
//! differentially, and CI's `exec-smoke` job diffs whole campaign
//! checkpoints across engines.
//!
//! Fault injection is compiled as a *per-trial armed trap*, not by
//! re-translating the program: the fast loop carries the armed site index
//! in a register, and when the running fault-site counter reaches it the
//! loop hands that one iteration to the fully bookkept `step` path —
//! `Machine::apply_fault` corrupts the destination and control-flow
//! faults redirect the next instruction pointer — and then disarms. One
//! translation therefore serves every trial of a campaign, under all six
//! fault models.
//!
//! Snapshot capture and fast-forward work unchanged in both modes: the
//! compiled slow loop drives the same `AsmSnapshotRecorder` hooks
//! (`due`/`capture`/`note_exec`) at the same points as the interpreter,
//! and dirty-page tracking lives inside [`Memory`], below either engine.
//!
//! A future native x86-64 JIT slots in as a third `Executor`
//! implementation behind the same trait.

use crate::machine::{width_ty, AsmFaultSpec, Halt, MachResult, Machine, State, SENTINEL};
use crate::mir::{flags, AInst, AKind, AOp, AluOp, AsmProgram, MathKind, MemRef, OutKind, Reg, ShiftOp, SseOp, CC};
use crate::snapshot::AsmSnapshotRecorder;
use flowery_ir::inst::Intrinsic;
use flowery_ir::interp::memory::TrapKind;
use flowery_ir::interp::{ops, ExecConfig, ExecMode, ExecStatus, FaultEffect, Memory};

const RAX: usize = Reg::Rax as usize;
const RDX: usize = Reg::Rdx as usize;
const RSP: usize = Reg::Rsp as usize;
const RFLAGS: usize = Reg::Rflags as usize;

/// One trial execution handed to an [`Executor`]: the machine, the limits,
/// the armed fault, the starting state (fresh boot or snapshot restore),
/// and the optional snapshot recorder. Construction is crate-internal —
/// trials enter through the [`Machine`] run methods.
pub struct TrialRun<'a, 'p> {
    pub(crate) machine: &'a Machine<'p>,
    pub(crate) config: &'a ExecConfig,
    pub(crate) fault: Option<AsmFaultSpec>,
    pub(crate) st: State,
    pub(crate) ip: u32,
    pub(crate) recorder: Option<&'a mut AsmSnapshotRecorder>,
}

/// A machine-layer execution engine. Implementations must be bit-identical
/// to [`InterpExec`] on every observable stream (see the module docs); the
/// selection is therefore pure provenance/performance, never results.
pub trait Executor: Send + Sync {
    /// The [`ExecMode`] this engine implements.
    fn mode(&self) -> ExecMode;

    /// Execute one trial to completion, returning the result plus the
    /// memory image so callers can recycle it.
    fn exec(&self, run: TrialRun<'_, '_>) -> (MachResult, Memory);
}

/// The reference decode-and-dispatch interpreter.
pub struct InterpExec;

impl Executor for InterpExec {
    fn mode(&self) -> ExecMode {
        ExecMode::Interp
    }

    fn exec(&self, run: TrialRun<'_, '_>) -> (MachResult, Memory) {
        run.machine.exec_interp(run.config, run.fault, run.st, run.ip, run.recorder)
    }
}

/// The threaded-code engine.
pub struct CompiledExec;

impl Executor for CompiledExec {
    fn mode(&self) -> ExecMode {
        ExecMode::Compiled
    }

    fn exec(&self, run: TrialRun<'_, '_>) -> (MachResult, Memory) {
        exec_compiled(run)
    }
}

/// The engine implementing `mode`.
pub fn executor_for(mode: ExecMode) -> &'static dyn Executor {
    match mode {
        ExecMode::Interp => &InterpExec,
        ExecMode::Compiled => &CompiledExec,
    }
}

/// Fault-site marker bit in the per-instruction metadata byte.
const META_SITE: u8 = 0x80;

/// A program translated to threaded code: one [`Op`] per instruction
/// position, plus a parallel packed metadata stream (cycle cost in the low
/// seven bits, the fault-site flag in [`META_SITE`]) so the dispatch
/// loop's per-step bookkeeping reads one dense byte instead of trailing
/// fields of a fat struct. Operand forms the instruction selector rarely
/// emits are stored out-of-line in `gens` and referenced by index, keeping
/// the hot `Op` array elements small. Built once per [`Machine`] (lazily,
/// on the first compiled-mode run) and reused by every subsequent trial.
pub(crate) struct CompiledProgram {
    ops: Vec<Op>,
    meta: Vec<u8>,
    gens: Vec<GenOp>,
}

impl CompiledProgram {
    pub(crate) fn build(program: &AsmProgram) -> CompiledProgram {
        let len = program.insts.len();
        let mut gens = Vec::new();
        let ops = program.insts.iter().map(|inst| translate(&inst.kind, len, &mut gens)).collect();
        let meta = program
            .insts
            .iter()
            .map(|inst| {
                let cycles = inst.kind.cycles() as u8;
                debug_assert!(cycles & META_SITE == 0, "cycle cost must fit 7 bits");
                cycles | if inst.kind.is_fault_site() { META_SITE } else { 0 }
            })
            .collect();
        CompiledProgram { ops, meta, gens }
    }
}

#[inline(always)]
fn trap(k: TrapKind) -> Halt {
    Halt::Status(ExecStatus::Trapped(k))
}

/// Width-monomorphized load: the bounds check and byte copy compile to a
/// fixed-size access instead of the interpreter's variable-width path.
#[inline(always)]
fn load<const W: usize>(st: &mut State, addr: u64) -> Result<u64, Halt> {
    st.mem.load_w::<W>(addr).map_err(trap)
}

/// Width-monomorphized store. Mirrors `State::store_mem`: the
/// `last_mem_write` bookkeeping (read by memory-destination fault
/// injection) happens before the bounds check.
#[inline(always)]
fn store<const W: usize>(st: &mut State, addr: u64, v: u64) -> Result<(), Halt> {
    st.last_mem_write = Some((addr, W as u8));
    st.mem.store_w::<W>(addr, v).map_err(trap)
}

#[inline(always)]
fn load_var(st: &mut State, addr: u64, w: u8) -> Result<u64, Halt> {
    match w {
        8 => load::<8>(st, addr),
        4 => load::<4>(st, addr),
        2 => load::<2>(st, addr),
        _ => load::<1>(st, addr),
    }
}

#[inline(always)]
fn store_var(st: &mut State, addr: u64, w: u8, v: u64) -> Result<(), Halt> {
    match w {
        8 => store::<8>(st, addr, v),
        4 => store::<4>(st, addr, v),
        2 => store::<2>(st, addr, v),
        _ => store::<1>(st, addr, v),
    }
}

/// Sentinel register index meaning "no register".
const NO_REG: u8 = 0xFF;

/// Pre-resolved `[base + disp]` address computation — the frame-slot
/// resolution hoisted out of the per-access path. `base == NO_REG` marks
/// an absolute reference (no register read at all).
#[derive(Clone, Copy)]
struct Addr {
    base: u8,
    disp: i64,
}

impl Addr {
    fn new(m: MemRef) -> Addr {
        Addr {
            base: m.base.map_or(NO_REG, |r| r.index() as u8),
            disp: m.disp,
        }
    }

    #[inline(always)]
    fn ea(self, regs: &[u64; Reg::COUNT]) -> u64 {
        if self.base == NO_REG {
            self.disp as u64
        } else {
            regs[self.base as usize].wrapping_add_signed(self.disp)
        }
    }
}

/// Pre-decoded read operand (the generic fallback for operand forms the
/// instruction selector rarely or never emits): register reads carry their
/// dense index and canonicalization mask, immediates are canonicalized at
/// translation time, memory reads carry a resolved address computation.
#[derive(Clone, Copy)]
enum Rd {
    Reg(u8, u64),
    Imm(u64),
    Mem(Addr, u8),
}

impl Rd {
    fn new(op: AOp, w: u8) -> Rd {
        match op {
            AOp::Reg(r) => Rd::Reg(r.index() as u8, width_ty(w).mask()),
            AOp::Imm(v) => Rd::Imm(width_ty(w).canon(v as u64)),
            AOp::Mem(m) => Rd::Mem(Addr::new(m), w),
        }
    }

    #[inline(always)]
    fn get(self, st: &mut State) -> Result<u64, Halt> {
        match self {
            Rd::Reg(i, m) => Ok(st.regs[i as usize] & m),
            Rd::Imm(v) => Ok(v),
            Rd::Mem(a, w) => {
                let ea = a.ea(&st.regs);
                load_var(st, ea, w)
            }
        }
    }

    /// Like [`Rd::get`] for operands whose width is statically known, so a
    /// memory read monomorphizes.
    #[inline(always)]
    fn get_w<const W: usize>(self, st: &mut State) -> Result<u64, Halt> {
        match self {
            Rd::Reg(i, m) => Ok(st.regs[i as usize] & m),
            Rd::Imm(v) => Ok(v),
            Rd::Mem(a, _) => {
                let ea = a.ea(&st.regs);
                load::<W>(st, ea)
            }
        }
    }
}

/// Pre-decoded write destination (generic-`mov` fallback only).
#[derive(Clone, Copy)]
enum Wr {
    Reg(u8, u64),
    Mem(Addr, u8),
}

impl Wr {
    fn new(op: AOp, w: u8) -> Wr {
        match op {
            AOp::Reg(r) => Wr::Reg(r.index() as u8, width_ty(w).mask()),
            AOp::Mem(m) => Wr::Mem(Addr::new(m), w),
            AOp::Imm(_) => unreachable!("immediate destination"),
        }
    }

    #[inline(always)]
    fn put(self, st: &mut State, v: u64) -> Result<(), Halt> {
        match self {
            Wr::Reg(i, m) => {
                st.regs[i as usize] = v & m;
                Ok(())
            }
            Wr::Mem(a, w) => {
                let ea = a.ea(&st.regs);
                store_var(st, ea, w, v)
            }
        }
    }
}

// ---- branch-free flag computation ------------------------------------------
//
// Equivalent to `State::set_arith_flags` / `set_logic_flags`: `sh` is
// `bits - 1`, so `(x >> sh) & 1` is the sign bit of a canonical value and
// the signed-overflow conditions reduce to sign-bit algebra —
// add overflows iff the operands agree in sign and the result disagrees
// (`!(a^b) & (a^r)`), sub iff they disagree and the result flips (`(a^b) &
// (a^r)`).

#[inline(always)]
fn add_flags(a: u64, b: u64, r: u64, sh: u32) -> u64 {
    ((r == 0) as u64) * flags::ZF
        + ((r >> sh) & 1) * flags::SF
        + ((r < a) as u64) * flags::CF
        + (((!(a ^ b) & (a ^ r)) >> sh) & 1) * flags::OF
}

#[inline(always)]
fn sub_flags(a: u64, b: u64, r: u64, sh: u32) -> u64 {
    ((r == 0) as u64) * flags::ZF
        + ((r >> sh) & 1) * flags::SF
        + ((a < b) as u64) * flags::CF
        + ((((a ^ b) & (a ^ r)) >> sh) & 1) * flags::OF
}

#[inline(always)]
fn logic_flags(r: u64, sh: u32) -> u64 {
    ((r == 0) as u64) * flags::ZF + ((r >> sh) & 1) * flags::SF
}

#[inline(always)]
fn cond(fl: u64, cc: CC) -> bool {
    let zf = fl & flags::ZF != 0;
    let sf = fl & flags::SF != 0;
    let of = fl & flags::OF != 0;
    let cf = fl & flags::CF != 0;
    match cc {
        CC::E => zf,
        CC::Ne => !zf,
        CC::L => sf != of,
        CC::Le => zf || sf != of,
        CC::G => !zf && sf == of,
        CC::Ge => sf == of,
        CC::B => cf,
        CC::Be => cf || zf,
        CC::A => !cf && !zf,
        CC::Ae => !cf,
    }
}

/// Per-instruction ALU control baked at translation time: the width mask,
/// the sign-bit shift, and whether the destination is `rsp` (which needs
/// the stack-segment check after the write).
#[derive(Clone, Copy)]
struct AluCtl {
    mask: u64,
    sh: u32,
    rsp: bool,
}

const A_ADD: u8 = 0;
const A_SUB: u8 = 1;
const A_IMUL: u8 = 2;
const A_AND: u8 = 3;
const A_OR: u8 = 4;
const A_XOR: u8 = 5;

/// One ALU step, monomorphized per opcode. Order matches the interpreter:
/// read, compute, flags, write, rsp sanity check.
#[inline(always)]
fn alu_step<const OP: u8>(st: &mut State, di: usize, c: AluCtl, b: u64) -> Result<(), Halt> {
    let a = st.regs[di] & c.mask;
    let r = (match OP {
        A_ADD => a.wrapping_add(b),
        A_SUB => a.wrapping_sub(b),
        A_IMUL => a.wrapping_mul(b),
        A_AND => a & b,
        A_OR => a | b,
        _ => a ^ b,
    }) & c.mask;
    st.regs[RFLAGS] = match OP {
        A_ADD => add_flags(a, b, r, c.sh),
        A_SUB => sub_flags(a, b, r, c.sh),
        _ => logic_flags(r, c.sh),
    };
    st.regs[di] = r;
    if c.rsp && st.regs[RSP] < st.mem.stack_limit() {
        return Err(trap(TrapKind::StackOverflow));
    }
    Ok(())
}

/// A pre-decoded micro-op: opcode x operand form x width, resolved at
/// translation time. The common instruction-selector output forms get
/// fully specialized variants; `*G`/`MovGen` are the generic fallbacks
/// through [`Rd`]/[`Wr`] for forms the selector rarely emits.
#[derive(Clone, Copy)]
enum Op {
    // -- moves ---------------------------------------------------------------
    MovRR {
        di: u8,
        si: u8,
        mask: u64,
    },
    MovRI {
        di: u8,
        v: u64,
    },
    Load1 {
        di: u8,
        a: Addr,
    },
    Load2 {
        di: u8,
        a: Addr,
    },
    Load4 {
        di: u8,
        a: Addr,
    },
    Load8 {
        di: u8,
        a: Addr,
    },
    Store1 {
        a: Addr,
        si: u8,
    },
    Store2 {
        a: Addr,
        si: u8,
    },
    Store4 {
        a: Addr,
        si: u8,
    },
    Store8 {
        a: Addr,
        si: u8,
    },
    StoreI1 {
        a: Addr,
        v: u64,
    },
    StoreI2 {
        a: Addr,
        v: u64,
    },
    StoreI4 {
        a: Addr,
        v: u64,
    },
    StoreI8 {
        a: Addr,
        v: u64,
    },
    MovSxR {
        di: u8,
        si: u8,
        ssh: u32,
        dmask: u64,
    },
    MovSxM1 {
        di: u8,
        a: Addr,
        dmask: u64,
    },
    MovSxM2 {
        di: u8,
        a: Addr,
        dmask: u64,
    },
    MovSxM4 {
        di: u8,
        a: Addr,
        dmask: u64,
    },
    MovSxM8 {
        di: u8,
        a: Addr,
        dmask: u64,
    },
    Lea {
        di: u8,
        a: Addr,
    },
    // -- integer ALU ---------------------------------------------------------
    AddRR {
        di: u8,
        si: u8,
        c: AluCtl,
    },
    AddRI {
        di: u8,
        v: u64,
        c: AluCtl,
    },
    SubRR {
        di: u8,
        si: u8,
        c: AluCtl,
    },
    SubRI {
        di: u8,
        v: u64,
        c: AluCtl,
    },
    ImulRR {
        di: u8,
        si: u8,
        c: AluCtl,
    },
    ImulRI {
        di: u8,
        v: u64,
        c: AluCtl,
    },
    AndRR {
        di: u8,
        si: u8,
        c: AluCtl,
    },
    AndRI {
        di: u8,
        v: u64,
        c: AluCtl,
    },
    OrRR {
        di: u8,
        si: u8,
        c: AluCtl,
    },
    OrRI {
        di: u8,
        v: u64,
        c: AluCtl,
    },
    XorRR {
        di: u8,
        si: u8,
        c: AluCtl,
    },
    XorRI {
        di: u8,
        v: u64,
        c: AluCtl,
    },
    // -- shifts (s/amt pre-masked by `smask = bits-1`; `ssh = 64-bits`) ------
    ShlI {
        di: u8,
        s: u32,
        mask: u64,
        sh: u32,
    },
    ShrI {
        di: u8,
        s: u32,
        mask: u64,
        sh: u32,
    },
    SarI {
        di: u8,
        s: u32,
        mask: u64,
        sh: u32,
        ssh: u32,
    },
    ShlR {
        di: u8,
        si: u8,
        smask: u64,
        mask: u64,
        sh: u32,
    },
    ShrR {
        di: u8,
        si: u8,
        smask: u64,
        mask: u64,
        sh: u32,
    },
    SarR {
        di: u8,
        si: u8,
        smask: u64,
        mask: u64,
        sh: u32,
        ssh: u32,
    },
    // -- widening/divide -----------------------------------------------------
    Cqo,
    ZeroRdx,
    DivS {
        rd: Rd,
    },
    DivU {
        rd: Rd,
    },
    // -- compare/test/conditionals -------------------------------------------
    CmpRR {
        li: u8,
        ri: u8,
        mask: u64,
        sh: u32,
    },
    CmpRI {
        li: u8,
        v: u64,
        mask: u64,
        sh: u32,
    },
    TestRR {
        li: u8,
        ri: u8,
        mask: u64,
        sh: u32,
    },
    TestRI {
        li: u8,
        v: u64,
        mask: u64,
        sh: u32,
    },
    SetCC {
        cc: CC,
        di: u8,
    },
    CmovR {
        cc: CC,
        di: u8,
        si: u8,
        mask: u64,
    },
    // -- control flow --------------------------------------------------------
    JccE {
        t: u32,
    },
    JccNe {
        t: u32,
    },
    JccL {
        t: u32,
    },
    JccLe {
        t: u32,
    },
    JccG {
        t: u32,
    },
    JccGe {
        t: u32,
    },
    JccB {
        t: u32,
    },
    JccBe {
        t: u32,
    },
    JccA {
        t: u32,
    },
    JccAe {
        t: u32,
    },
    Jmp {
        t: u32,
    },
    Call {
        t: u32,
    },
    Ret {
        len: u32,
    },
    PushR {
        si: u8,
    },
    PushG {
        rd: Rd,
    },
    Pop {
        di: u8,
    },
    // -- SSE scalar ----------------------------------------------------------
    AddSd {
        di: u8,
        rd: Rd,
    },
    SubSd {
        di: u8,
        rd: Rd,
    },
    MulSd {
        di: u8,
        rd: Rd,
    },
    DivSd {
        di: u8,
        rd: Rd,
    },
    AddSs {
        di: u8,
        rd: Rd,
    },
    SubSs {
        di: u8,
        rd: Rd,
    },
    MulSs {
        di: u8,
        rd: Rd,
    },
    DivSs {
        di: u8,
        rd: Rd,
    },
    UcomiD {
        li: u8,
        rd: Rd,
    },
    UcomiS {
        li: u8,
        rd: Rd,
    },
    CvtSiF64 {
        di: u8,
        rd: Rd,
    },
    CvtSiF32 {
        di: u8,
        rd: Rd,
    },
    CvtF64Si {
        di: u8,
        rd: Rd,
    },
    CvtF32Si {
        di: u8,
        rd: Rd,
    },
    CvtF32F64 {
        di: u8,
        si: u8,
    },
    CvtF64F32 {
        di: u8,
        si: u8,
    },
    // -- pseudos -------------------------------------------------------------
    Math {
        intr: Intrinsic,
        di: u8,
        ai: u8,
        b2: u8,
    },
    OutI64 {
        rd: Rd,
    },
    OutF64 {
        rd: Rd,
    },
    OutByte {
        rd: Rd,
    },
    DetectTrap,
    /// Out-of-line generic form (operand shapes the selector rarely
    /// emits): index into [`CompiledProgram::gens`].
    Gen {
        gi: u32,
    },
}

/// The fat generic micro-ops, stored out-of-line so they don't inflate
/// every element of the hot [`Op`] array. These run through the
/// pre-decoded [`Rd`]/[`Wr`] paths — still no per-step decode, just one
/// extra indirection on forms that almost never execute.
#[derive(Clone, Copy)]
enum GenOp {
    Mov {
        rd: Rd,
        wr: Wr,
    },
    MovSx {
        di: u8,
        rd: Rd,
        ssh: u32,
        dmask: u64,
    },
    Alu {
        op: u8,
        di: u8,
        rd: Rd,
        c: AluCtl,
    },
    Shift {
        op: ShiftOp,
        di: u8,
        amt: Rd,
        smask: u64,
        mask: u64,
        sh: u32,
        ssh: u32,
    },
    Cmp {
        l: Rd,
        r: Rd,
        mask: u64,
        sh: u32,
    },
    Test {
        l: Rd,
        r: Rd,
        mask: u64,
        sh: u32,
    },
    Cmov {
        cc: CC,
        di: u8,
        rd: Rd,
        mask: u64,
    },
}

/// Execute an out-of-line generic op. Cold by construction: the selector
/// essentially never emits these forms.
#[inline(never)]
fn exec_gen(g: &GenOp, st: &mut State, next: u32) -> Result<u32, Halt> {
    match *g {
        GenOp::Mov { rd, wr } => {
            let v = rd.get(st)?;
            wr.put(st, v)?;
            Ok(next)
        }
        GenOp::MovSx { di, rd, ssh, dmask } => {
            let v = rd.get(st)?;
            let sx = ((v << ssh) as i64) >> ssh;
            st.regs[di as usize] = (sx as u64) & dmask;
            Ok(next)
        }
        GenOp::Alu { op, di, rd, c } => {
            let b = rd.get(st)?;
            match op {
                A_ADD => alu_step::<A_ADD>(st, di as usize, c, b)?,
                A_SUB => alu_step::<A_SUB>(st, di as usize, c, b)?,
                A_IMUL => alu_step::<A_IMUL>(st, di as usize, c, b)?,
                A_AND => alu_step::<A_AND>(st, di as usize, c, b)?,
                A_OR => alu_step::<A_OR>(st, di as usize, c, b)?,
                _ => alu_step::<A_XOR>(st, di as usize, c, b)?,
            }
            Ok(next)
        }
        GenOp::Shift { op, di, amt, smask, mask, sh, ssh } => {
            let a = st.regs[di as usize] & mask;
            let s = (amt.get(st)? & smask) as u32;
            let r = match op {
                ShiftOp::Shl => (a << s) & mask,
                ShiftOp::Shr => a >> s,
                ShiftOp::Sar => ((((a << ssh) as i64 >> ssh) >> s) as u64) & mask,
            };
            st.regs[RFLAGS] = logic_flags(r, sh);
            st.regs[di as usize] = r;
            Ok(next)
        }
        GenOp::Cmp { l, r, mask, sh } => {
            let a = l.get(st)?;
            let b = r.get(st)?;
            let res = a.wrapping_sub(b) & mask;
            st.regs[RFLAGS] = sub_flags(a, b, res, sh);
            Ok(next)
        }
        GenOp::Test { l, r, mask, sh } => {
            let a = l.get(st)?;
            let b = r.get(st)?;
            let res = (a & b) & mask;
            st.regs[RFLAGS] = logic_flags(res, sh);
            Ok(next)
        }
        GenOp::Cmov { cc, di, rd, mask } => {
            if cond(st.regs[RFLAGS], cc) {
                let v = rd.get(st)?;
                st.regs[di as usize] = v & mask;
            }
            Ok(next)
        }
    }
}

/// Execute one micro-op against `st`, returning the next instruction
/// pointer. Every arm replicates the corresponding interpreter arm exactly
/// — evaluation order, trap points, and the `last_mem_write` bookkeeping
/// included. The output-flood check lives in the `Out*` arms (the only
/// ops that grow the output), not in the dispatch loop; `Out` has no
/// architected destination, so it is never a fault site and flood-trapping
/// inside the arm cannot skip a site increment the interpreter would make.
#[inline(always)]
fn exec_op(op: &Op, st: &mut State, ip: u32, max_out: usize, gens: &[GenOp]) -> Result<u32, Halt> {
    let next = ip + 1;
    match *op {
        Op::MovRR { di, si, mask } => {
            st.regs[di as usize] = st.regs[si as usize] & mask;
            Ok(next)
        }
        Op::MovRI { di, v } => {
            st.regs[di as usize] = v;
            Ok(next)
        }
        Op::Load1 { di, a } => {
            let ea = a.ea(&st.regs);
            st.regs[di as usize] = load::<1>(st, ea)?;
            Ok(next)
        }
        Op::Load2 { di, a } => {
            let ea = a.ea(&st.regs);
            st.regs[di as usize] = load::<2>(st, ea)?;
            Ok(next)
        }
        Op::Load4 { di, a } => {
            let ea = a.ea(&st.regs);
            st.regs[di as usize] = load::<4>(st, ea)?;
            Ok(next)
        }
        Op::Load8 { di, a } => {
            let ea = a.ea(&st.regs);
            st.regs[di as usize] = load::<8>(st, ea)?;
            Ok(next)
        }
        Op::Store1 { a, si } => {
            let ea = a.ea(&st.regs);
            store::<1>(st, ea, st.regs[si as usize])?;
            Ok(next)
        }
        Op::Store2 { a, si } => {
            let ea = a.ea(&st.regs);
            store::<2>(st, ea, st.regs[si as usize])?;
            Ok(next)
        }
        Op::Store4 { a, si } => {
            let ea = a.ea(&st.regs);
            store::<4>(st, ea, st.regs[si as usize])?;
            Ok(next)
        }
        Op::Store8 { a, si } => {
            let ea = a.ea(&st.regs);
            store::<8>(st, ea, st.regs[si as usize])?;
            Ok(next)
        }
        Op::StoreI1 { a, v } => {
            let ea = a.ea(&st.regs);
            store::<1>(st, ea, v)?;
            Ok(next)
        }
        Op::StoreI2 { a, v } => {
            let ea = a.ea(&st.regs);
            store::<2>(st, ea, v)?;
            Ok(next)
        }
        Op::StoreI4 { a, v } => {
            let ea = a.ea(&st.regs);
            store::<4>(st, ea, v)?;
            Ok(next)
        }
        Op::StoreI8 { a, v } => {
            let ea = a.ea(&st.regs);
            store::<8>(st, ea, v)?;
            Ok(next)
        }
        Op::MovSxR { di, si, ssh, dmask } => {
            // Shifting left by `64 - bits` drops exactly the non-canonical
            // high bits, so the pre-mask read is folded into the sext.
            let sx = ((st.regs[si as usize] << ssh) as i64) >> ssh;
            st.regs[di as usize] = (sx as u64) & dmask;
            Ok(next)
        }
        Op::MovSxM1 { di, a, dmask } => {
            let ea = a.ea(&st.regs);
            let v = load::<1>(st, ea)?;
            st.regs[di as usize] = (v as u8 as i8 as i64 as u64) & dmask;
            Ok(next)
        }
        Op::MovSxM2 { di, a, dmask } => {
            let ea = a.ea(&st.regs);
            let v = load::<2>(st, ea)?;
            st.regs[di as usize] = (v as u16 as i16 as i64 as u64) & dmask;
            Ok(next)
        }
        Op::MovSxM4 { di, a, dmask } => {
            let ea = a.ea(&st.regs);
            let v = load::<4>(st, ea)?;
            st.regs[di as usize] = (v as u32 as i32 as i64 as u64) & dmask;
            Ok(next)
        }
        Op::MovSxM8 { di, a, dmask } => {
            let ea = a.ea(&st.regs);
            let v = load::<8>(st, ea)?;
            st.regs[di as usize] = v & dmask;
            Ok(next)
        }
        Op::Lea { di, a } => {
            st.regs[di as usize] = a.ea(&st.regs);
            Ok(next)
        }
        Op::AddRR { di, si, c } => {
            let b = st.regs[si as usize] & c.mask;
            alu_step::<A_ADD>(st, di as usize, c, b)?;
            Ok(next)
        }
        Op::AddRI { di, v, c } => {
            alu_step::<A_ADD>(st, di as usize, c, v)?;
            Ok(next)
        }
        Op::SubRR { di, si, c } => {
            let b = st.regs[si as usize] & c.mask;
            alu_step::<A_SUB>(st, di as usize, c, b)?;
            Ok(next)
        }
        Op::SubRI { di, v, c } => {
            alu_step::<A_SUB>(st, di as usize, c, v)?;
            Ok(next)
        }
        Op::ImulRR { di, si, c } => {
            let b = st.regs[si as usize] & c.mask;
            alu_step::<A_IMUL>(st, di as usize, c, b)?;
            Ok(next)
        }
        Op::ImulRI { di, v, c } => {
            alu_step::<A_IMUL>(st, di as usize, c, v)?;
            Ok(next)
        }
        Op::AndRR { di, si, c } => {
            let b = st.regs[si as usize] & c.mask;
            alu_step::<A_AND>(st, di as usize, c, b)?;
            Ok(next)
        }
        Op::AndRI { di, v, c } => {
            alu_step::<A_AND>(st, di as usize, c, v)?;
            Ok(next)
        }
        Op::OrRR { di, si, c } => {
            let b = st.regs[si as usize] & c.mask;
            alu_step::<A_OR>(st, di as usize, c, b)?;
            Ok(next)
        }
        Op::OrRI { di, v, c } => {
            alu_step::<A_OR>(st, di as usize, c, v)?;
            Ok(next)
        }
        Op::XorRR { di, si, c } => {
            let b = st.regs[si as usize] & c.mask;
            alu_step::<A_XOR>(st, di as usize, c, b)?;
            Ok(next)
        }
        Op::XorRI { di, v, c } => {
            alu_step::<A_XOR>(st, di as usize, c, v)?;
            Ok(next)
        }
        Op::ShlI { di, s, mask, sh } => {
            let a = st.regs[di as usize] & mask;
            let r = (a << s) & mask;
            st.regs[RFLAGS] = logic_flags(r, sh);
            st.regs[di as usize] = r;
            Ok(next)
        }
        Op::ShrI { di, s, mask, sh } => {
            let a = st.regs[di as usize] & mask;
            let r = a >> s;
            st.regs[RFLAGS] = logic_flags(r, sh);
            st.regs[di as usize] = r;
            Ok(next)
        }
        Op::SarI { di, s, mask, sh, ssh } => {
            let a = st.regs[di as usize] & mask;
            let r = ((((a << ssh) as i64 >> ssh) >> s) as u64) & mask;
            st.regs[RFLAGS] = logic_flags(r, sh);
            st.regs[di as usize] = r;
            Ok(next)
        }
        Op::ShlR { di, si, smask, mask, sh } => {
            let s = (st.regs[si as usize] & smask) as u32;
            let a = st.regs[di as usize] & mask;
            let r = (a << s) & mask;
            st.regs[RFLAGS] = logic_flags(r, sh);
            st.regs[di as usize] = r;
            Ok(next)
        }
        Op::ShrR { di, si, smask, mask, sh } => {
            let s = (st.regs[si as usize] & smask) as u32;
            let a = st.regs[di as usize] & mask;
            let r = a >> s;
            st.regs[RFLAGS] = logic_flags(r, sh);
            st.regs[di as usize] = r;
            Ok(next)
        }
        Op::SarR { di, si, smask, mask, sh, ssh } => {
            let s = (st.regs[si as usize] & smask) as u32;
            let a = st.regs[di as usize] & mask;
            let r = ((((a << ssh) as i64 >> ssh) >> s) as u64) & mask;
            st.regs[RFLAGS] = logic_flags(r, sh);
            st.regs[di as usize] = r;
            Ok(next)
        }
        Op::Cqo => {
            st.regs[RDX] = ((st.regs[RAX] as i64) >> 63) as u64;
            Ok(next)
        }
        Op::ZeroRdx => {
            st.regs[RDX] = 0;
            Ok(next)
        }
        Op::DivS { rd } => {
            let b = rd.get_w::<8>(st)?;
            let a = st.regs[RAX] as i64;
            let bs = b as i64;
            if bs == 0 || (a == i64::MIN && bs == -1) {
                return Err(trap(TrapKind::DivFault));
            }
            st.regs[RAX] = (a / bs) as u64;
            st.regs[RDX] = (a % bs) as u64;
            Ok(next)
        }
        Op::DivU { rd } => {
            let b = rd.get_w::<8>(st)?;
            if b == 0 {
                return Err(trap(TrapKind::DivFault));
            }
            let a = st.regs[RAX];
            st.regs[RAX] = a / b;
            st.regs[RDX] = a % b;
            Ok(next)
        }
        Op::CmpRR { li, ri, mask, sh } => {
            let a = st.regs[li as usize] & mask;
            let b = st.regs[ri as usize] & mask;
            let r = a.wrapping_sub(b) & mask;
            st.regs[RFLAGS] = sub_flags(a, b, r, sh);
            Ok(next)
        }
        Op::CmpRI { li, v, mask, sh } => {
            let a = st.regs[li as usize] & mask;
            let r = a.wrapping_sub(v) & mask;
            st.regs[RFLAGS] = sub_flags(a, v, r, sh);
            Ok(next)
        }
        Op::TestRR { li, ri, mask, sh } => {
            let r = st.regs[li as usize] & st.regs[ri as usize] & mask;
            st.regs[RFLAGS] = logic_flags(r, sh);
            Ok(next)
        }
        Op::TestRI { li, v, mask, sh } => {
            let r = st.regs[li as usize] & v & mask;
            st.regs[RFLAGS] = logic_flags(r, sh);
            Ok(next)
        }
        Op::SetCC { cc, di } => {
            st.regs[di as usize] = cond(st.regs[RFLAGS], cc) as u64;
            Ok(next)
        }
        Op::CmovR { cc, di, si, mask } => {
            if cond(st.regs[RFLAGS], cc) {
                st.regs[di as usize] = st.regs[si as usize] & mask;
            }
            Ok(next)
        }
        Op::JccE { t } => Ok(if st.regs[RFLAGS] & flags::ZF != 0 { t } else { next }),
        Op::JccNe { t } => Ok(if st.regs[RFLAGS] & flags::ZF == 0 { t } else { next }),
        Op::JccL { t } => {
            let fl = st.regs[RFLAGS];
            Ok(if (fl & flags::SF != 0) != (fl & flags::OF != 0) { t } else { next })
        }
        Op::JccLe { t } => {
            let fl = st.regs[RFLAGS];
            Ok(if fl & flags::ZF != 0 || (fl & flags::SF != 0) != (fl & flags::OF != 0) {
                t
            } else {
                next
            })
        }
        Op::JccG { t } => {
            let fl = st.regs[RFLAGS];
            Ok(if fl & flags::ZF == 0 && (fl & flags::SF != 0) == (fl & flags::OF != 0) {
                t
            } else {
                next
            })
        }
        Op::JccGe { t } => {
            let fl = st.regs[RFLAGS];
            Ok(if (fl & flags::SF != 0) == (fl & flags::OF != 0) { t } else { next })
        }
        Op::JccB { t } => Ok(if st.regs[RFLAGS] & flags::CF != 0 { t } else { next }),
        Op::JccBe { t } => Ok(if st.regs[RFLAGS] & (flags::CF | flags::ZF) != 0 { t } else { next }),
        Op::JccA { t } => Ok(if st.regs[RFLAGS] & (flags::CF | flags::ZF) == 0 { t } else { next }),
        Op::JccAe { t } => Ok(if st.regs[RFLAGS] & flags::CF == 0 { t } else { next }),
        Op::Jmp { t } => Ok(t),
        Op::Call { t } => {
            let sp = st.regs[RSP].wrapping_sub(8);
            if sp < st.mem.stack_limit() {
                return Err(trap(TrapKind::StackOverflow));
            }
            store::<8>(st, sp, next as u64)?;
            st.regs[RSP] = sp;
            Ok(t)
        }
        Op::Ret { len } => {
            let sp = st.regs[RSP];
            let ra = load::<8>(st, sp)?;
            st.regs[RSP] = sp.wrapping_add(8);
            if ra == SENTINEL {
                return Err(Halt::Status(ExecStatus::Completed(st.regs[RAX])));
            }
            if ra >= len as u64 {
                return Err(trap(TrapKind::BadControl));
            }
            Ok(ra as u32)
        }
        Op::PushR { si } => {
            let v = st.regs[si as usize];
            let sp = st.regs[RSP].wrapping_sub(8);
            if sp < st.mem.stack_limit() {
                return Err(trap(TrapKind::StackOverflow));
            }
            store::<8>(st, sp, v)?;
            st.regs[RSP] = sp;
            Ok(next)
        }
        Op::PushG { rd } => {
            let v = rd.get_w::<8>(st)?;
            let sp = st.regs[RSP].wrapping_sub(8);
            if sp < st.mem.stack_limit() {
                return Err(trap(TrapKind::StackOverflow));
            }
            store::<8>(st, sp, v)?;
            st.regs[RSP] = sp;
            Ok(next)
        }
        Op::Pop { di } => {
            let sp = st.regs[RSP];
            let v = load::<8>(st, sp)?;
            st.regs[RSP] = sp.wrapping_add(8);
            st.regs[di as usize] = v;
            Ok(next)
        }
        Op::AddSd { di, rd } => {
            let a = st.regs[di as usize];
            let b = rd.get_w::<8>(st)?;
            st.regs[di as usize] = (f64::from_bits(a) + f64::from_bits(b)).to_bits();
            Ok(next)
        }
        Op::SubSd { di, rd } => {
            let a = st.regs[di as usize];
            let b = rd.get_w::<8>(st)?;
            st.regs[di as usize] = (f64::from_bits(a) - f64::from_bits(b)).to_bits();
            Ok(next)
        }
        Op::MulSd { di, rd } => {
            let a = st.regs[di as usize];
            let b = rd.get_w::<8>(st)?;
            st.regs[di as usize] = (f64::from_bits(a) * f64::from_bits(b)).to_bits();
            Ok(next)
        }
        Op::DivSd { di, rd } => {
            let a = st.regs[di as usize];
            let b = rd.get_w::<8>(st)?;
            st.regs[di as usize] = (f64::from_bits(a) / f64::from_bits(b)).to_bits();
            Ok(next)
        }
        Op::AddSs { di, rd } => {
            let a = st.regs[di as usize];
            let b = rd.get_w::<4>(st)?;
            st.regs[di as usize] = (f32::from_bits(a as u32) + f32::from_bits(b as u32)).to_bits() as u64;
            Ok(next)
        }
        Op::SubSs { di, rd } => {
            let a = st.regs[di as usize];
            let b = rd.get_w::<4>(st)?;
            st.regs[di as usize] = (f32::from_bits(a as u32) - f32::from_bits(b as u32)).to_bits() as u64;
            Ok(next)
        }
        Op::MulSs { di, rd } => {
            let a = st.regs[di as usize];
            let b = rd.get_w::<4>(st)?;
            st.regs[di as usize] = (f32::from_bits(a as u32) * f32::from_bits(b as u32)).to_bits() as u64;
            Ok(next)
        }
        Op::DivSs { di, rd } => {
            let a = st.regs[di as usize];
            let b = rd.get_w::<4>(st)?;
            st.regs[di as usize] = (f32::from_bits(a as u32) / f32::from_bits(b as u32)).to_bits() as u64;
            Ok(next)
        }
        Op::UcomiD { li, rd } => {
            let a = st.regs[li as usize];
            let b = rd.get_w::<8>(st)?;
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            let mut fl = 0u64;
            if x.is_nan() || y.is_nan() {
                fl |= flags::ZF | flags::CF;
            } else if x == y {
                fl |= flags::ZF;
            } else if x < y {
                fl |= flags::CF;
            }
            st.regs[RFLAGS] = fl;
            Ok(next)
        }
        Op::UcomiS { li, rd } => {
            let a = st.regs[li as usize];
            let b = rd.get_w::<4>(st)?;
            let (x, y) = (f32::from_bits(a as u32) as f64, f32::from_bits(b as u32) as f64);
            let mut fl = 0u64;
            if x.is_nan() || y.is_nan() {
                fl |= flags::ZF | flags::CF;
            } else if x == y {
                fl |= flags::ZF;
            } else if x < y {
                fl |= flags::CF;
            }
            st.regs[RFLAGS] = fl;
            Ok(next)
        }
        Op::CvtSiF64 { di, rd } => {
            let v = rd.get_w::<8>(st)?;
            st.regs[di as usize] = ((v as i64) as f64).to_bits();
            Ok(next)
        }
        Op::CvtSiF32 { di, rd } => {
            let v = rd.get_w::<8>(st)?;
            st.regs[di as usize] = ((v as i64) as f32).to_bits() as u64;
            Ok(next)
        }
        Op::CvtF64Si { di, rd } => {
            let v = rd.get_w::<8>(st)?;
            st.regs[di as usize] = (f64::from_bits(v) as i64) as u64;
            Ok(next)
        }
        Op::CvtF32Si { di, rd } => {
            let v = rd.get_w::<4>(st)?;
            st.regs[di as usize] = ((f32::from_bits(v as u32) as f64) as i64) as u64;
            Ok(next)
        }
        Op::CvtF32F64 { di, si } => {
            st.regs[di as usize] = ((f32::from_bits(st.regs[si as usize] as u32)) as f64).to_bits();
            Ok(next)
        }
        Op::CvtF64F32 { di, si } => {
            st.regs[di as usize] = ((f64::from_bits(st.regs[si as usize])) as f32).to_bits() as u64;
            Ok(next)
        }
        Op::Math { intr, di, ai, b2 } => {
            st.regs[di as usize] = if b2 == NO_REG {
                ops::eval_math(intr, &[st.regs[ai as usize]])
            } else {
                ops::eval_math(intr, &[st.regs[ai as usize], st.regs[b2 as usize]])
            };
            Ok(next)
        }
        Op::OutI64 { rd } => {
            let v = rd.get_w::<8>(st)?;
            st.output.push(1);
            st.output.extend_from_slice(&v.to_le_bytes());
            if st.output.len() > max_out {
                return Err(trap(TrapKind::OutputFlood));
            }
            Ok(next)
        }
        Op::OutF64 { rd } => {
            let v = rd.get_w::<8>(st)?;
            st.output.push(2);
            st.output.extend_from_slice(&v.to_le_bytes());
            if st.output.len() > max_out {
                return Err(trap(TrapKind::OutputFlood));
            }
            Ok(next)
        }
        Op::OutByte { rd } => {
            let v = rd.get_w::<8>(st)?;
            st.output.push(3);
            st.output.push(v as u8);
            if st.output.len() > max_out {
                return Err(trap(TrapKind::OutputFlood));
            }
            Ok(next)
        }
        Op::DetectTrap => Err(Halt::Status(ExecStatus::Detected)),
        Op::Gen { gi } => exec_gen(&gens[gi as usize], st, next),
    }
}

/// One fully bookkept dispatch iteration — step-for-step the interpreter
/// loop body: snapshot hook, bounds check, instruction accounting, budget
/// trap, profile, cycles, injection. The slow loop runs every iteration
/// through here; the fast loop delegates only the iteration whose
/// fault-site counter matches the armed trap (and any recorder/profile
/// run, which never enters the fast loop at all).
#[allow(clippy::too_many_arguments)]
fn step(
    machine: &Machine<'_>,
    config: &ExecConfig,
    prog: &CompiledProgram,
    insts: &[AInst],
    st: &mut State,
    ip: &mut u32,
    armed: &mut Option<AsmFaultSpec>,
    recorder: &mut Option<&mut AsmSnapshotRecorder>,
) -> Result<(), ExecStatus> {
    // ---- snapshot hook: `st.dyn_insts` executed, `*ip` next --------------
    if let Some(rec) = recorder.as_deref_mut() {
        if rec.due(st.dyn_insts, st.fault_sites) {
            rec.capture(
                st.dyn_insts,
                st.fault_sites,
                st.cycles,
                *ip,
                st.regs,
                st.output.len(),
                st.profile.as_ref(),
                &mut st.mem,
            );
        }
    }

    let Some(op) = prog.ops.get(*ip as usize) else {
        return Err(ExecStatus::Trapped(TrapKind::BadControl));
    };
    let meta = prog.meta[*ip as usize];
    let is_site = meta & META_SITE != 0;
    if let Some(rec) = recorder.as_deref_mut() {
        rec.note_exec(*ip, st.dyn_insts);
    }
    st.dyn_insts += 1;
    if st.dyn_insts > config.max_dyn_insts {
        return Err(ExecStatus::Trapped(TrapKind::InstLimit));
    }
    if let Some(p) = st.profile.as_mut() {
        p[*ip as usize] += 1;
    }
    st.cycles += (meta & !META_SITE) as u64;

    let inject_now = is_site && armed.is_some_and(|f| st.fault_sites == f.site_index);

    st.last_ip = *ip;
    st.last_mem_write = None;
    let next = match exec_op(op, st, *ip, config.max_output, &prog.gens) {
        Ok(next) => next,
        Err(Halt::Status(s)) => return Err(s),
    };

    if is_site {
        if inject_now {
            let spec = armed.take().expect("armed trap fired");
            st.injected_inst = Some(st.last_ip);
            machine.apply_fault(st, &insts[st.last_ip as usize], spec);
            *ip = if let FaultEffect::Jump { target } = spec.effect {
                // Control-flow edge corruption: the site's own effects
                // stand, then control restarts at an arbitrary position.
                (target % prog.ops.len() as u64) as u32
            } else {
                next
            };
        } else {
            *ip = next;
        }
        st.fault_sites += 1;
    } else {
        *ip = next;
    }
    Ok(())
}

/// The threaded-code dispatch loop. Recorder or profile runs take the slow
/// loop (every iteration through [`step`], identical hook placement to the
/// interpreter). Plain trials take the fast loop: counters live in locals,
/// the armed trap is a single integer compare, and the only per-iteration
/// work beyond the micro-op itself is the bounds check and the budget
/// trap. The trap iteration itself — and only it — detours through
/// [`step`], so injection bookkeeping (`last_ip`, `last_mem_write`,
/// `injected_inst`, jump redirect) is shared with the reference path.
fn exec_compiled(run: TrialRun<'_, '_>) -> (MachResult, Memory) {
    let TrialRun { machine, config, fault, mut st, mut ip, mut recorder } = run;
    let prog = machine.compiled();
    let ops = &prog.ops[..];
    let meta = &prog.meta[..];
    let gens = &prog.gens[..];
    let insts = &machine.program.insts[..];
    let mut armed = fault;

    if recorder.is_some() || st.profile.is_some() {
        let status = loop {
            if let Err(s) = step(machine, config, prog, insts, &mut st, &mut ip, &mut armed, &mut recorder) {
                break s;
            }
        };
        return st.finish(status);
    }

    let max_dyn = config.max_dyn_insts;
    let max_out = config.max_output;
    let mut dyn_insts = st.dyn_insts;
    let mut cycles = st.cycles;
    let mut sites = st.fault_sites;
    // The armed trap as a register compare: `u64::MAX` means disarmed (a
    // trial can never reach that many sites under any instruction budget).
    let trap_site = armed.map_or(u64::MAX, |f| f.site_index);

    let status = 'exec: {
        // Phase 1 — armed: identical to the disarmed loop below plus the
        // one-compare trap check. Exited by the injection firing (fall
        // through to phase 2) or the trial ending first.
        if trap_site != u64::MAX {
            loop {
                let Some(op) = ops.get(ip as usize) else {
                    break 'exec ExecStatus::Trapped(TrapKind::BadControl);
                };
                let m = meta[ip as usize];
                if m & META_SITE != 0 && sites == trap_site {
                    // Write the locals back and run this one iteration
                    // through the fully bookkept path, then resume fast
                    // and disarmed.
                    st.dyn_insts = dyn_insts;
                    st.cycles = cycles;
                    st.fault_sites = sites;
                    match step(machine, config, prog, insts, &mut st, &mut ip, &mut armed, &mut recorder) {
                        Ok(()) => {
                            dyn_insts = st.dyn_insts;
                            cycles = st.cycles;
                            sites = st.fault_sites;
                            break;
                        }
                        Err(s) => {
                            dyn_insts = st.dyn_insts;
                            cycles = st.cycles;
                            sites = st.fault_sites;
                            break 'exec s;
                        }
                    }
                }
                dyn_insts += 1;
                if dyn_insts > max_dyn {
                    break 'exec ExecStatus::Trapped(TrapKind::InstLimit);
                }
                cycles += (m & !META_SITE) as u64;
                match exec_op(op, &mut st, ip, max_out, gens) {
                    Ok(next) => {
                        sites += (m >> 7) as u64;
                        ip = next;
                    }
                    Err(Halt::Status(s)) => break 'exec s,
                }
            }
        }
        // Phase 2 — disarmed: golden runs spend their whole life here, and
        // trials their post-injection tail. No trap state left to consult.
        loop {
            let Some(op) = ops.get(ip as usize) else {
                break 'exec ExecStatus::Trapped(TrapKind::BadControl);
            };
            let m = meta[ip as usize];
            dyn_insts += 1;
            if dyn_insts > max_dyn {
                break 'exec ExecStatus::Trapped(TrapKind::InstLimit);
            }
            cycles += (m & !META_SITE) as u64;
            match exec_op(op, &mut st, ip, max_out, gens) {
                Ok(next) => {
                    sites += (m >> 7) as u64;
                    ip = next;
                }
                Err(Halt::Status(s)) => break 'exec s,
            }
        }
    };

    st.dyn_insts = dyn_insts;
    st.cycles = cycles;
    st.fault_sites = sites;
    st.finish(status)
}

/// Specialized `mov` translation by (destination, source) form and width.
fn mov_op(w: u8, dst: AOp, src: AOp, gens: &mut Vec<GenOp>) -> Op {
    match (dst, src) {
        (AOp::Reg(d), AOp::Reg(s)) => Op::MovRR {
            di: d.index() as u8,
            si: s.index() as u8,
            mask: width_ty(w).mask(),
        },
        (AOp::Reg(d), AOp::Imm(v)) => Op::MovRI { di: d.index() as u8, v: width_ty(w).canon(v as u64) },
        (AOp::Reg(d), AOp::Mem(m)) => {
            let di = d.index() as u8;
            let a = Addr::new(m);
            match w {
                8 => Op::Load8 { di, a },
                4 => Op::Load4 { di, a },
                2 => Op::Load2 { di, a },
                _ => Op::Load1 { di, a },
            }
        }
        (AOp::Mem(m), AOp::Reg(s)) => {
            let a = Addr::new(m);
            let si = s.index() as u8;
            match w {
                8 => Op::Store8 { a, si },
                4 => Op::Store4 { a, si },
                2 => Op::Store2 { a, si },
                _ => Op::Store1 { a, si },
            }
        }
        (AOp::Mem(m), AOp::Imm(v)) => {
            let a = Addr::new(m);
            let v = width_ty(w).canon(v as u64);
            match w {
                8 => Op::StoreI8 { a, v },
                4 => Op::StoreI4 { a, v },
                2 => Op::StoreI2 { a, v },
                _ => Op::StoreI1 { a, v },
            }
        }
        _ => {
            gens.push(GenOp::Mov { rd: Rd::new(src, w), wr: Wr::new(dst, w) });
            Op::Gen { gi: (gens.len() - 1) as u32 }
        }
    }
}

/// Translate one instruction into its micro-op. `len` is the program
/// length (for `ret` range checks). Forms the instruction selector
/// actually emits get fully specialized variants; anything else falls back
/// to the generic [`Rd`]/[`Wr`] paths, which are still pre-decoded.
fn translate(kind: &AKind, len: usize, gens: &mut Vec<GenOp>) -> Op {
    match *kind {
        AKind::Mov { w, dst, src } | AKind::MovSd { w, dst, src } => mov_op(w, dst, src, gens),
        AKind::MovSx { wd, ws, dst, src } => {
            let dmask = width_ty(wd).mask();
            let di = dst.index() as u8;
            match src {
                AOp::Reg(r) => Op::MovSxR {
                    di,
                    si: r.index() as u8,
                    ssh: 64 - width_ty(ws).bits(),
                    dmask,
                },
                AOp::Mem(m) => {
                    let a = Addr::new(m);
                    match ws {
                        8 => Op::MovSxM8 { di, a, dmask },
                        4 => Op::MovSxM4 { di, a, dmask },
                        2 => Op::MovSxM2 { di, a, dmask },
                        _ => Op::MovSxM1 { di, a, dmask },
                    }
                }
                AOp::Imm(_) => {
                    gens.push(GenOp::MovSx {
                        di,
                        rd: Rd::new(src, ws),
                        ssh: 64 - width_ty(ws).bits(),
                        dmask,
                    });
                    Op::Gen { gi: (gens.len() - 1) as u32 }
                }
            }
        }
        AKind::Lea { dst, mem } => Op::Lea { di: dst.index() as u8, a: Addr::new(mem) },
        AKind::Alu { op, w, dst, src } => {
            let ty = width_ty(w);
            let c = AluCtl { mask: ty.mask(), sh: ty.bits() - 1, rsp: dst == Reg::Rsp };
            let di = dst.index() as u8;
            match (op, src) {
                (AluOp::Add, AOp::Reg(s)) => Op::AddRR { di, si: s.index() as u8, c },
                (AluOp::Add, AOp::Imm(v)) => Op::AddRI { di, v: ty.canon(v as u64), c },
                (AluOp::Add, _) => {
                    gens.push(GenOp::Alu { op: A_ADD, di, rd: Rd::new(src, w), c });
                    Op::Gen { gi: (gens.len() - 1) as u32 }
                }
                (AluOp::Sub, AOp::Reg(s)) => Op::SubRR { di, si: s.index() as u8, c },
                (AluOp::Sub, AOp::Imm(v)) => Op::SubRI { di, v: ty.canon(v as u64), c },
                (AluOp::Sub, _) => {
                    gens.push(GenOp::Alu { op: A_SUB, di, rd: Rd::new(src, w), c });
                    Op::Gen { gi: (gens.len() - 1) as u32 }
                }
                (AluOp::Imul, AOp::Reg(s)) => Op::ImulRR { di, si: s.index() as u8, c },
                (AluOp::Imul, AOp::Imm(v)) => Op::ImulRI { di, v: ty.canon(v as u64), c },
                (AluOp::Imul, _) => {
                    gens.push(GenOp::Alu { op: A_IMUL, di, rd: Rd::new(src, w), c });
                    Op::Gen { gi: (gens.len() - 1) as u32 }
                }
                (AluOp::And, AOp::Reg(s)) => Op::AndRR { di, si: s.index() as u8, c },
                (AluOp::And, AOp::Imm(v)) => Op::AndRI { di, v: ty.canon(v as u64), c },
                (AluOp::And, _) => {
                    gens.push(GenOp::Alu { op: A_AND, di, rd: Rd::new(src, w), c });
                    Op::Gen { gi: (gens.len() - 1) as u32 }
                }
                (AluOp::Or, AOp::Reg(s)) => Op::OrRR { di, si: s.index() as u8, c },
                (AluOp::Or, AOp::Imm(v)) => Op::OrRI { di, v: ty.canon(v as u64), c },
                (AluOp::Or, _) => {
                    gens.push(GenOp::Alu { op: A_OR, di, rd: Rd::new(src, w), c });
                    Op::Gen { gi: (gens.len() - 1) as u32 }
                }
                (AluOp::Xor, AOp::Reg(s)) => Op::XorRR { di, si: s.index() as u8, c },
                (AluOp::Xor, AOp::Imm(v)) => Op::XorRI { di, v: ty.canon(v as u64), c },
                (AluOp::Xor, _) => {
                    gens.push(GenOp::Alu { op: A_XOR, di, rd: Rd::new(src, w), c });
                    Op::Gen { gi: (gens.len() - 1) as u32 }
                }
            }
        }
        AKind::Shift { op, w, dst, amt } => {
            let ty = width_ty(w);
            let mask = ty.mask();
            let bits = ty.bits();
            let (sh, ssh) = (bits - 1, 64 - bits);
            let smask = (bits - 1) as u64;
            let di = dst.index() as u8;
            match (op, amt) {
                // The interpreter canonicalizes the amount to 8 bits before
                // masking by `bits-1`; `smask <= 63` makes the byte
                // canonicalization a no-op, so it is folded away here.
                (ShiftOp::Shl, AOp::Imm(v)) => Op::ShlI { di, s: ((v as u64) & smask) as u32, mask, sh },
                (ShiftOp::Shr, AOp::Imm(v)) => Op::ShrI { di, s: ((v as u64) & smask) as u32, mask, sh },
                (ShiftOp::Sar, AOp::Imm(v)) => Op::SarI { di, s: ((v as u64) & smask) as u32, mask, sh, ssh },
                (ShiftOp::Shl, AOp::Reg(r)) => Op::ShlR { di, si: r.index() as u8, smask, mask, sh },
                (ShiftOp::Shr, AOp::Reg(r)) => Op::ShrR { di, si: r.index() as u8, smask, mask, sh },
                (ShiftOp::Sar, AOp::Reg(r)) => Op::SarR { di, si: r.index() as u8, smask, mask, sh, ssh },
                (_, _) => {
                    gens.push(GenOp::Shift { op, di, amt: Rd::new(amt, 1), smask, mask, sh, ssh });
                    Op::Gen { gi: (gens.len() - 1) as u32 }
                }
            }
        }
        AKind::Cqo { .. } => Op::Cqo,
        AKind::ZeroRdx => Op::ZeroRdx,
        AKind::Div { signed, src, .. } => {
            let rd = Rd::new(src, 8);
            if signed {
                Op::DivS { rd }
            } else {
                Op::DivU { rd }
            }
        }
        AKind::Cmp { w, lhs, rhs } => {
            let ty = width_ty(w);
            let (mask, sh) = (ty.mask(), ty.bits() - 1);
            match (lhs, rhs) {
                (AOp::Reg(l), AOp::Reg(r)) => Op::CmpRR { li: l.index() as u8, ri: r.index() as u8, mask, sh },
                (AOp::Reg(l), AOp::Imm(v)) => Op::CmpRI { li: l.index() as u8, v: ty.canon(v as u64), mask, sh },
                _ => {
                    gens.push(GenOp::Cmp { l: Rd::new(lhs, w), r: Rd::new(rhs, w), mask, sh });
                    Op::Gen { gi: (gens.len() - 1) as u32 }
                }
            }
        }
        AKind::Test { w, lhs, rhs } => {
            let ty = width_ty(w);
            let (mask, sh) = (ty.mask(), ty.bits() - 1);
            match (lhs, rhs) {
                (AOp::Reg(l), AOp::Reg(r)) => Op::TestRR { li: l.index() as u8, ri: r.index() as u8, mask, sh },
                (AOp::Reg(l), AOp::Imm(v)) => Op::TestRI { li: l.index() as u8, v: ty.canon(v as u64), mask, sh },
                _ => {
                    gens.push(GenOp::Test { l: Rd::new(lhs, w), r: Rd::new(rhs, w), mask, sh });
                    Op::Gen { gi: (gens.len() - 1) as u32 }
                }
            }
        }
        AKind::SetCC { cc, dst } => Op::SetCC { cc, di: dst.index() as u8 },
        AKind::Cmov { cc, w, dst, src } => {
            let (di, mask) = (dst.index() as u8, width_ty(w).mask());
            match src {
                AOp::Reg(r) => Op::CmovR { cc, di, si: r.index() as u8, mask },
                _ => {
                    gens.push(GenOp::Cmov { cc, di, rd: Rd::new(src, w), mask });
                    Op::Gen { gi: (gens.len() - 1) as u32 }
                }
            }
        }
        AKind::Jcc { cc, target: t } => match cc {
            CC::E => Op::JccE { t },
            CC::Ne => Op::JccNe { t },
            CC::L => Op::JccL { t },
            CC::Le => Op::JccLe { t },
            CC::G => Op::JccG { t },
            CC::Ge => Op::JccGe { t },
            CC::B => Op::JccB { t },
            CC::Be => Op::JccBe { t },
            CC::A => Op::JccA { t },
            CC::Ae => Op::JccAe { t },
        },
        AKind::Jmp { target } => Op::Jmp { t: target },
        AKind::Call { target, .. } => Op::Call { t: target },
        AKind::Ret => Op::Ret { len: len as u32 },
        AKind::Push { src } => match src {
            AOp::Reg(r) => Op::PushR { si: r.index() as u8 },
            _ => Op::PushG { rd: Rd::new(src, 8) },
        },
        AKind::Pop { dst } => Op::Pop { di: dst.index() as u8 },
        AKind::Sse { op, dst, src } => {
            let di = dst.index() as u8;
            match op {
                SseOp::AddSd => Op::AddSd { di, rd: Rd::new(src, 8) },
                SseOp::SubSd => Op::SubSd { di, rd: Rd::new(src, 8) },
                SseOp::MulSd => Op::MulSd { di, rd: Rd::new(src, 8) },
                SseOp::DivSd => Op::DivSd { di, rd: Rd::new(src, 8) },
                SseOp::AddSs => Op::AddSs { di, rd: Rd::new(src, 4) },
                SseOp::SubSs => Op::SubSs { di, rd: Rd::new(src, 4) },
                SseOp::MulSs => Op::MulSs { di, rd: Rd::new(src, 4) },
                SseOp::DivSs => Op::DivSs { di, rd: Rd::new(src, 4) },
            }
        }
        AKind::Ucomi { w, lhs, rhs } => {
            let li = lhs.index() as u8;
            if w == 4 {
                Op::UcomiS { li, rd: Rd::new(rhs, 4) }
            } else {
                Op::UcomiD { li, rd: Rd::new(rhs, 8) }
            }
        }
        AKind::Cvtsi2f { wf, dst, src } => {
            let di = dst.index() as u8;
            let rd = Rd::new(src, 8);
            if wf == 4 {
                Op::CvtSiF32 { di, rd }
            } else {
                Op::CvtSiF64 { di, rd }
            }
        }
        AKind::Cvtf2si { wf, dst, src } => {
            let di = dst.index() as u8;
            if wf == 4 {
                Op::CvtF32Si { di, rd: Rd::new(src, 4) }
            } else {
                Op::CvtF64Si { di, rd: Rd::new(src, 8) }
            }
        }
        AKind::Cvtff { wd, dst, src } => {
            let (di, si) = (dst.index() as u8, src.index() as u8);
            if wd == 8 {
                Op::CvtF32F64 { di, si }
            } else {
                Op::CvtF64F32 { di, si }
            }
        }
        AKind::MovQ { w, dst, src } => Op::MovRR {
            di: dst.index() as u8,
            si: src.index() as u8,
            mask: width_ty(w).mask(),
        },
        AKind::Math { kind, dst, a, b } => Op::Math {
            intr: match kind {
                MathKind::Sqrt => Intrinsic::Sqrt,
                MathKind::Sin => Intrinsic::Sin,
                MathKind::Cos => Intrinsic::Cos,
                MathKind::Exp => Intrinsic::Exp,
                MathKind::Log => Intrinsic::Log,
                MathKind::Fabs => Intrinsic::Fabs,
                MathKind::Floor => Intrinsic::Floor,
                MathKind::Pow => Intrinsic::Pow,
            },
            di: dst.index() as u8,
            ai: a.index() as u8,
            b2: b.map_or(NO_REG, |r| r.index() as u8),
        },
        AKind::Out { kind, src } => {
            let rd = Rd::new(src, 8);
            match kind {
                OutKind::I64 => Op::OutI64 { rd },
                OutKind::F64 => Op::OutF64 { rd },
                OutKind::Byte => Op::OutByte { rd },
            }
        }
        AKind::DetectTrap => Op::DetectTrap,
    }
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    /// The hot dispatch array must stay within a 32-byte slot (two ops per
    /// cache line); fat generic forms live in the out-of-line side table.
    #[test]
    fn op_fits_32_bytes() {
        assert!(std::mem::size_of::<Op>() <= 32, "Op is {} bytes", std::mem::size_of::<Op>());
    }
}
