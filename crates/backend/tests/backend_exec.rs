//! End-to-end backend tests: MiniC -> IR -> machine code, executed on the
//! simulator and cross-checked against the IR interpreter.

use flowery_backend::{compile_module, BackendConfig, Machine};
use flowery_ir::interp::{ExecConfig, ExecStatus, Interpreter};

fn check_equiv(src: &str) -> (ExecStatus, Vec<u8>) {
    let m = flowery_lang::compile("t", src).expect("compile");
    let ir = Interpreter::new(&m).run(&ExecConfig::default(), None);
    let prog = compile_module(&m, &BackendConfig::default());
    let asm = Machine::new(&m, &prog).run(&ExecConfig::default(), None);
    assert_eq!(ir.status, asm.status, "status diverged for:\n{src}");
    assert_eq!(ir.output, asm.output, "output diverged for:\n{src}");
    (asm.status, asm.output)
}

fn ret_of(src: &str) -> i64 {
    match check_equiv(src).0 {
        ExecStatus::Completed(v) => v as i64,
        other => panic!("did not complete: {other:?}"),
    }
}

#[test]
fn arithmetic_matches_interpreter() {
    assert_eq!(ret_of("int main() { return 2 + 3 * 4 - 6 / 2; }"), 11);
    assert_eq!(ret_of("int main() { return -7 / 2; }"), -3);
    assert_eq!(ret_of("int main() { return -7 % 3; }"), -1);
    assert_eq!(ret_of("int main() { return (1 << 20) | 5; }"), (1 << 20) | 5);
    assert_eq!(ret_of("int main() { return -64 >> 3; }"), -8);
    assert_eq!(ret_of("int main() { int n = 6; return 1 << n; }"), 64);
}

#[test]
fn control_flow_matches() {
    assert_eq!(
        ret_of("int main() { int s = 0; int i; for (i = 0; i < 50; i = i + 1) { if (i % 7 == 0) { s = s + i; } } return s; }"),
        (0..50).filter(|i| i % 7 == 0).sum::<i64>()
    );
    assert_eq!(ret_of("int main() { int x = 100; while (x > 3) { x = x / 2; } return x; }"), 3);
}

#[test]
fn floats_match_bit_exactly() {
    check_equiv(
        "int main() { float s = 0.0; int i; for (i = 1; i <= 20; i = i + 1) { s = s + 1.0 / float(i); } output(s); return 0; }",
    );
    check_equiv("int main() { output(sqrt(2.0)); output(sin(1.0)); output(pow(1.5, 3.0)); return 0; }");
    check_equiv("int main() { float a = 1e10; float b = -1e-10; output(a * b); output(a / 3.0); return 0; }");
}

#[test]
fn arrays_and_functions_match() {
    assert_eq!(
        ret_of(
            "global int tbl[8] = {3, 1, 4, 1, 5, 9, 2, 6};\n\
             int sum(int* p, int n) { int s = 0; int i; for (i = 0; i < n; i = i + 1) { s = s + p[i]; } return s; }\n\
             int main() { return sum(tbl, 8); }"
        ),
        31
    );
    assert_eq!(
        ret_of(
            "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
             int main() { return fib(15); }"
        ),
        610
    );
}

#[test]
fn byte_arrays_match() {
    assert_eq!(
        ret_of(
            "int main() { byte buf[16]; int i; for (i = 0; i < 16; i = i + 1) { buf[i] = i * 37; }\n\
             int s = 0; for (i = 0; i < 16; i = i + 1) { s = s + buf[i]; } return s; }"
        ),
        (0..16).map(|i| (i * 37) % 256).sum::<i64>()
    );
}

#[test]
fn mixed_float_int_functions() {
    check_equiv(
        "float avg(float* v, int n) { float s = 0.0; int i; for (i = 0; i < n; i = i + 1) { s = s + v[i]; } return s / float(n); }\n\
         global float data[4] = {1.5, 2.5, 3.5, 4.5};\n\
         int main() { output(avg(data, 4)); return int(avg(data, 4) * 10.0); }",
    );
}

#[test]
fn division_by_zero_traps_identically() {
    check_equiv("int main() { int z = 0; return 7 / z; }");
}

#[test]
fn logical_operators_match() {
    assert_eq!(
        ret_of("int main() { int a = 5; int b = 0; return (a > 3 && b == 0) + (a < 3 || b != 0); }"),
        1
    );
}

#[test]
fn deep_call_chain_matches() {
    assert_eq!(
        ret_of(
            "int f3(int x) { return x * 2; }\n\
             int f2(int x) { return f3(x) + 1; }\n\
             int f1(int x) { return f2(x) * 3; }\n\
             int main() { return f1(4); }"
        ),
        27
    );
}

#[test]
fn six_int_args_supported() {
    assert_eq!(
        ret_of(
            "int f(int a, int b, int c, int d, int e, int g) { return a + 10*b + 100*c + 1000*d + 10000*e + 100000*g; }\n\
             int main() { return f(1, 2, 3, 4, 5, 6); }"
        ),
        654321
    );
}

#[test]
fn select_free_programs_run_with_all_configs() {
    let src =
        "int main() { int s = 0; int i; for (i = 0; i < 30; i = i + 1) { s = s + i * i; } output(s); return s % 251; }";
    let m = flowery_lang::compile("t", src).unwrap();
    let golden = Interpreter::new(&m).run(&ExecConfig::default(), None);
    for reg_cache in [false, true] {
        for fuse in [false, true] {
            for fold in [false, true] {
                let cfg = BackendConfig {
                    reg_cache,
                    fuse_cmp_branch: fuse,
                    fold_compares: fold,
                    ..Default::default()
                };
                let prog = compile_module(&m, &cfg);
                let r = Machine::new(&m, &prog).run(&ExecConfig::default(), None);
                assert_eq!(r.status, golden.status, "cfg {cfg:?}");
                assert_eq!(r.output, golden.output, "cfg {cfg:?}");
            }
        }
    }
}

#[test]
fn reg_cache_reduces_instruction_count() {
    let src =
        "int main() { int s = 0; int i; for (i = 0; i < 100; i = i + 1) { s = s + i * 3 - 1; } return s % 1000; }";
    let m = flowery_lang::compile("t", src).unwrap();
    let with = compile_module(&m, &BackendConfig::default());
    let without = compile_module(&m, &BackendConfig { reg_cache: false, ..Default::default() });
    let rw = Machine::new(&m, &with).run(&ExecConfig::default(), None);
    let ro = Machine::new(&m, &without).run(&ExecConfig::default(), None);
    assert_eq!(rw.status, ro.status);
    assert!(
        rw.dyn_insts < ro.dyn_insts,
        "cache should remove reload movs: {} vs {}",
        rw.dyn_insts,
        ro.dyn_insts
    );
}

#[test]
fn fused_branches_emit_no_test() {
    use flowery_backend::AKind;
    // Tight compare-and-branch: the icmp feeds the br directly, so the
    // lowering must fuse into cmp+jcc without a `test`.
    let src = "int main() { int i = 0; while (i < 10) { i = i + 1; } return i; }";
    let m = flowery_lang::compile("t", src).unwrap();
    let prog = compile_module(&m, &BackendConfig::default());
    let tests = prog.insts.iter().filter(|i| matches!(i.kind, AKind::Test { .. })).count();
    assert_eq!(tests, 0, "expected fully fused branches:\n{}", flowery_backend::print_program(&prog));
    let unfused = compile_module(&m, &BackendConfig { fuse_cmp_branch: false, ..Default::default() });
    let tests_unfused = unfused.insts.iter().filter(|i| matches!(i.kind, AKind::Test { .. })).count();
    assert!(tests_unfused > 0, "disabling fusion must materialize tests");
}

#[test]
fn asm_fault_site_count_is_stable() {
    let src = "int main() { int s = 1; s = s + 2; output(s); return s; }";
    let m = flowery_lang::compile("t", src).unwrap();
    let prog = compile_module(&m, &BackendConfig::default());
    let mach = Machine::new(&m, &prog);
    let a = mach.run(&ExecConfig::default(), None);
    let b = mach.run(&ExecConfig::default(), None);
    assert_eq!(a.fault_sites, b.fault_sites);
    assert_eq!(a.dyn_insts, b.dyn_insts);
    assert!(a.fault_sites > 0);
    assert!(a.cycles > a.dyn_insts / 2);
}

#[test]
fn asm_fault_injection_changes_outcomes() {
    use flowery_backend::AsmFaultSpec;
    let src = "int main() { int s = 0; int i; for (i = 0; i < 8; i = i + 1) { s = s + i; } output(s); return s; }";
    let m = flowery_lang::compile("t", src).unwrap();
    let prog = compile_module(&m, &BackendConfig::default());
    let mach = Machine::new(&m, &prog);
    let golden = mach.run(&ExecConfig::default(), None);
    let mut sdc = 0;
    let mut benign = 0;
    let mut due = 0;
    let cfg = ExecConfig::with_budget_for(golden.dyn_insts);
    for site in (0..golden.fault_sites).step_by(3) {
        for bit in [0u32, 7, 31, 63] {
            let r = mach.run(&cfg, Some(AsmFaultSpec::single(site, bit)));
            match r.status {
                ExecStatus::Completed(_) if r.output == golden.output => benign += 1,
                ExecStatus::Completed(_) => sdc += 1,
                ExecStatus::Detected => {}
                ExecStatus::Trapped(_) => due += 1,
            }
        }
    }
    assert!(sdc > 0, "some faults must corrupt output silently");
    assert!(benign > 0, "some faults must be masked");
    assert!(due > 0, "some faults must crash");
}

#[test]
fn unprotected_program_has_more_asm_sites_than_ir_sites() {
    // Stores/branches/calls are not IR fault sites but their lowered forms
    // are — the structural root of the paper's cross-layer gap.
    let src = "void bump(int* p) { p[0] = p[0] + 1; }\n\
               global int g[1];\n\
               int main() { int i; for (i = 0; i < 10; i = i + 1) { bump(g); } return g[0]; }";
    let m = flowery_lang::compile("t", src).unwrap();
    let ir = Interpreter::new(&m).run(&ExecConfig::default(), None);
    let prog = compile_module(&m, &BackendConfig::default());
    let asm = Machine::new(&m, &prog).run(&ExecConfig::default(), None);
    assert_eq!(ir.status, asm.status);
    assert!(
        asm.fault_sites > ir.fault_sites,
        "asm sites {} should exceed IR sites {}",
        asm.fault_sites,
        ir.fault_sites
    );
}
