//! Region model for compositional campaigns (FastFlip-style).
//!
//! A *region* is a function body: at the IR layer a [`flowery_ir::module::Function`] of the
//! module, at the machine layer the contiguous `AsmProgram` instruction
//! range of the corresponding `AsmFunc`. Each region carries
//!
//! * a **content hash** over the region's instructions plus a
//!   caller-supplied *salt* folding in everything else that shapes trial
//!   outcomes (variant, duplication level, layer, fault model, detectors,
//!   executor-visible memory geometry), and
//! * a **site mass**: the number of dynamic fault sites the golden run
//!   executes inside the region. Masses partition the golden run's total
//!   fault-site count, which is what makes per-region results compose.
//!
//! The composition rule: trials sample injection sites uniformly, so a
//! unit's outcome distribution is the mass-weighted mixture of its
//! regions' distributions. When every region's profile comes from the
//! same campaign the partition is exact — summing per-region counts
//! reproduces the monolithic tally bit-for-bit ([`compose_exact`]). When
//! profiles mix provenance (reused baseline regions + re-run changed
//! regions), [`compose_weighted`] recombines the per-region rates under
//! the *current* masses and propagates the per-region Wilson half-widths.
//!
//! Staleness caveat (documented in DESIGN.md §11): a fault injected in
//! region R can corrupt state that later misbehaves in region S. Reusing
//! R's profile after an edit to S is therefore an approximation — the
//! same one FastFlip makes — and holds to first order because R's trials
//! still classify against the *whole-program* golden output, which the
//! incremental engine recomputes for the edited program.

use flowery_backend::mir::AsmProgram;
use flowery_inject::stats::{wilson_half_width, Estimate};
use flowery_inject::OutcomeCounts;
use flowery_ir::inst::{Callee, InstKind};
use flowery_ir::interp::Profile;
use flowery_ir::module::Module;
use flowery_ir::printer::print_function;
use flowery_ir::value::{FuncId, InstId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Version of the region partition + hash recipe. Stamped into checkpoint
/// headers; a checkpoint written under a different schema is never
/// composed with profiles built under this one.
pub const REGION_SCHEMA_VERSION: u32 = 1;

/// Catch-all region for injection sites outside every function body
/// (machine-layer prologue/veneer code, or attribution fallback).
pub const OTHER_REGION: &str = "<other>";

/// FNV-1a over a byte string. Matches the harness cache's content hash so
/// region hashes are stable across processes and sessions.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fold one more word into an FNV-style hash.
pub fn combine(h: u64, x: u64) -> u64 {
    let mut h = h;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One region of one unit's program: identity, content hash, and golden
/// fault-site mass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Function name (shared across layers; machine regions are named
    /// after the IR function they were compiled from).
    pub name: String,
    /// Content hash: region instructions + caller salt.
    pub hash: u64,
    /// Dynamic fault sites the golden run executes in this region.
    pub site_mass: u64,
}

/// The full partition of one unit's program, sorted by region name.
/// Masses sum to the golden run's `fault_sites` count.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegionSet {
    pub regions: Vec<Region>,
}

impl RegionSet {
    pub fn get(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Total fault-site mass (equals the golden run's site count).
    pub fn total_mass(&self) -> u64 {
        self.regions.iter().map(|r| r.site_mass).sum()
    }

    /// Order-insensitive fingerprint of the whole partition, used by the
    /// distributed handshake to verify coordinator and worker computed
    /// identical regions.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(b"flowery-region-set");
        for r in &self.regions {
            h = combine(h, fnv1a(r.name.as_bytes()));
            h = combine(h, r.hash);
            h = combine(h, r.site_mass);
        }
        h
    }
}

/// Whether a static IR instruction can be a dynamic fault site. Mirrors
/// the interpreter's injection hook: only compute results are sites —
/// `alloca` addresses and function-call returns are excluded, and
/// instructions without a result (stores, output intrinsics) never reach
/// the result-write path.
pub fn ir_is_site(module: &Module, f: FuncId, i: InstId) -> bool {
    if module.result_ty(f, i).is_none() {
        return false;
    }
    let kind = &module.func(f).inst(i).kind;
    !matches!(kind, InstKind::Alloca { .. }) && !matches!(kind, InstKind::Call { callee: Callee::Func(_), .. })
}

/// Partition an IR module into per-function regions. `profile` is the
/// golden run's execution profile (`Interpreter::profile_run`); `salt`
/// folds in the unit configuration (variant, level, fault model,
/// detectors, geometry) so the same function under two configs hashes
/// differently.
pub fn ir_region_set(module: &Module, profile: &Profile, salt: u64) -> RegionSet {
    let mut regions = Vec::new();
    for (fi, func) in module.functions.iter().enumerate() {
        let fid = FuncId(fi as u32);
        let hash = combine(fnv1a(print_function(module, fid, func).as_bytes()), salt);
        let mut mass = 0u64;
        for ii in 0..func.insts.len() {
            let iid = InstId(ii as u32);
            if ir_is_site(module, fid, iid) {
                mass += profile.counts[fi][ii];
            }
        }
        regions.push(Region { name: func.name.clone(), hash, site_mass: mass });
    }
    regions.sort_by(|a, b| a.name.cmp(&b.name));
    RegionSet { regions }
}

/// Partition a machine program into per-function regions. Machine regions
/// are identified by the IR function they were compiled from, so the hash
/// covers that function's IR text (the machine encoding is a deterministic
/// function of it) plus the compiled range length — which changes whenever
/// that function's own codegen changes — plus `salt`. Absolute operand
/// addresses are deliberately excluded: an edit to one function must not
/// invalidate every function behind it just because code shifted.
/// `profile` is the golden run's per-instruction execution counts
/// (`Machine::profile_run`). Sites outside every function body fold into
/// [`OTHER_REGION`].
pub fn asm_region_set(module: &Module, program: &AsmProgram, profile: &[u64], salt: u64) -> RegionSet {
    let mut regions = Vec::new();
    let mut covered = vec![false; program.insts.len()];
    for f in &program.funcs {
        let (lo, hi) = (f.entry as usize, (f.end as usize).min(program.insts.len()));
        let ir_func = &module.functions[f.ir_id.index()];
        let mut hash = combine(fnv1a(print_function(module, f.ir_id, ir_func).as_bytes()), salt);
        hash = combine(hash, (hi - lo) as u64);
        let mut mass = 0u64;
        for (i, c) in covered.iter_mut().enumerate().take(hi).skip(lo) {
            *c = true;
            if program.insts[i].kind.is_fault_site() {
                mass += profile.get(i).copied().unwrap_or(0);
            }
        }
        regions.push(Region { name: f.name.clone(), hash, site_mass: mass });
    }
    let mut other = 0u64;
    for (i, c) in covered.iter().enumerate() {
        if !c && program.insts[i].kind.is_fault_site() {
            other += profile.get(i).copied().unwrap_or(0);
        }
    }
    if other > 0 {
        regions.push(Region {
            name: OTHER_REGION.into(),
            hash: combine(fnv1a(OTHER_REGION.as_bytes()), salt),
            site_mass: other,
        });
    }
    regions.sort_by(|a, b| a.name.cmp(&b.name));
    RegionSet { regions }
}

/// Per-region campaign results: everything needed to reuse this region's
/// answer in a later composed campaign.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegionProfile {
    pub name: String,
    /// Content hash of the region the trials were run against.
    pub hash: u64,
    /// Golden fault-site mass at the time the trials were run.
    pub site_mass: u64,
    /// Trials whose injection site fell inside this region.
    pub trials: u64,
    pub counts: OutcomeCounts,
    /// IR layer: SDC attributions by static instruction, restricted to
    /// this region's function.
    #[serde(default)]
    pub sdc_by_inst: HashMap<(FuncId, InstId), u64>,
    /// Machine layer: program indices of SDC injections inside the region.
    #[serde(default)]
    pub sdc_insts: Vec<u32>,
}

impl RegionProfile {
    /// SDC rate with 95% Wilson interval over this region's trials.
    pub fn sdc(&self) -> Estimate {
        Estimate::proportion(self.counts.sdc, self.trials)
    }
}

/// Exact composition: per-region counts from a *single* campaign
/// partition the unit tally, so summing reproduces it bit-for-bit.
pub fn compose_exact(profiles: &[RegionProfile]) -> OutcomeCounts {
    let mut total = OutcomeCounts::default();
    for p in profiles {
        total.merge(&p.counts);
    }
    total
}

/// A mass-weighted whole-program estimate recombined from per-region
/// profiles of possibly mixed provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedEstimate {
    /// Mass-weighted SDC rate.
    pub value: f64,
    /// Propagated 95% half-width: sqrt(Σ w² · hw_r²).
    pub ci95: f64,
    /// Trials backing the estimate (reused + re-run).
    pub trials: u64,
    /// Total fault-site mass of the composition.
    pub mass: u64,
}

/// Mass-weighted composition under the *current* region masses: trials
/// sample sites uniformly, so the whole-program SDC rate is the mixture
/// `Σ (mass_r / M) · p̂_r`. Regions with zero mass contribute nothing
/// (the current program never executes a site there); regions with mass
/// but no trials contribute their weight at rate 0 with a full-width
/// interval so the uncertainty is not understated.
pub fn compose_weighted(profiles: &[RegionProfile]) -> WeightedEstimate {
    let mass: u64 = profiles.iter().map(|p| p.site_mass).sum();
    let trials: u64 = profiles.iter().map(|p| p.trials).sum();
    if mass == 0 {
        return WeightedEstimate { value: 0.0, ci95: 0.0, trials, mass };
    }
    let mut value = 0.0;
    let mut var = 0.0;
    for p in profiles {
        if p.site_mass == 0 {
            continue;
        }
        let w = p.site_mass as f64 / mass as f64;
        if p.trials == 0 {
            var += w * w * 0.25; // untested region: half-width 0.5
            continue;
        }
        value += w * p.counts.sdc as f64 / p.trials as f64;
        let hw = wilson_half_width(p.counts.sdc, p.trials);
        var += w * w * hw * hw;
    }
    WeightedEstimate { value, ci95: var.sqrt(), trials, mass }
}

/// Provenance of one region in an incremental campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fate {
    /// Hash matched the baseline: profile reused verbatim.
    Reused,
    /// Region exists in the baseline but its hash changed: re-run.
    Rerun,
    /// Region absent from the baseline: run fresh.
    New,
}

impl std::fmt::Display for Fate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Fate::Reused => "reused",
            Fate::Rerun => "re-run",
            Fate::New => "new",
        })
    }
}

/// One region's diff verdict: its current identity, its fate, and (for
/// reused regions) the baseline profile to carry forward.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDelta {
    pub region: Region,
    pub fate: Fate,
    /// Baseline profile when `fate == Reused`.
    pub baseline: Option<RegionProfile>,
}

/// Compare the current partition against baseline profiles. Returns the
/// per-region verdicts (in region-name order) plus the names of baseline
/// regions that no longer exist (deleted functions — their profiles are
/// simply dropped).
pub fn diff(current: &RegionSet, baseline: &[RegionProfile]) -> (Vec<RegionDelta>, Vec<String>) {
    let by_name: HashMap<&str, &RegionProfile> = baseline.iter().map(|p| (p.name.as_str(), p)).collect();
    let mut deltas = Vec::new();
    for r in &current.regions {
        let (fate, base) = match by_name.get(r.name.as_str()) {
            Some(p) if p.hash == r.hash => (Fate::Reused, Some((*p).clone())),
            Some(_) => (Fate::Rerun, None),
            None => (Fate::New, None),
        };
        deltas.push(RegionDelta { region: r.clone(), fate, baseline: base });
    }
    let dropped = baseline
        .iter()
        .filter(|p| current.get(&p.name).is_none())
        .map(|p| p.name.clone())
        .collect();
    (deltas, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_ir::interp::{ExecConfig, Interpreter};

    const SRC: &str = "int helper(int x) { return x * 3 + 1; } \
         int main() { int s = 0; int i; for (i = 0; i < 10; i = i + 1) { s = s + helper(i); } output(s); return 0; }";

    fn module() -> Module {
        flowery_lang::compile("t", SRC).expect("compiles")
    }

    #[test]
    fn ir_masses_partition_golden_sites() {
        let m = module();
        let interp = Interpreter::new(&m);
        let golden = interp.profile_run(&ExecConfig::default());
        let set = ir_region_set(&m, golden.profile.as_ref().unwrap(), 7);
        assert_eq!(set.total_mass(), golden.fault_sites, "region masses must partition the golden site count");
        assert!(set.regions.iter().all(|r| r.site_mass > 0), "both functions execute");
    }

    #[test]
    fn salt_and_content_change_hashes() {
        let m = module();
        let interp = Interpreter::new(&m);
        let golden = interp.profile_run(&ExecConfig::default());
        let prof = golden.profile.as_ref().unwrap();
        let a = ir_region_set(&m, prof, 1);
        let b = ir_region_set(&m, prof, 2);
        assert_eq!(a.regions.len(), b.regions.len());
        assert!(a.regions.iter().zip(&b.regions).all(|(x, y)| x.hash != y.hash), "salt feeds every hash");

        let m2 = flowery_lang::compile("t", &SRC.replace("x * 3 + 1", "x * 3 + 2")).unwrap();
        let golden2 = Interpreter::new(&m2).profile_run(&ExecConfig::default());
        let c = ir_region_set(&m2, golden2.profile.as_ref().unwrap(), 1);
        let changed: Vec<_> = a
            .regions
            .iter()
            .zip(&c.regions)
            .filter(|(x, y)| x.hash != y.hash)
            .map(|(x, _)| x.name.clone())
            .collect();
        assert_eq!(changed, vec!["helper".to_string()], "only the edited function re-hashes");
    }

    #[test]
    fn asm_masses_partition_golden_sites() {
        let m = module();
        let program = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let mach = flowery_backend::Machine::new(&m, &program);
        let golden = mach.profile_run(&ExecConfig::default());
        let set = asm_region_set(&m, &program, golden.profile.as_ref().unwrap(), 7);
        assert_eq!(
            set.total_mass(),
            golden.fault_sites,
            "asm region masses must partition the golden site count"
        );
    }

    #[test]
    fn exact_composition_sums_counts() {
        let a = RegionProfile {
            name: "a".into(),
            trials: 10,
            counts: OutcomeCounts { benign: 6, sdc: 2, detected: 1, due: 1 },
            ..Default::default()
        };
        let b = RegionProfile {
            name: "b".into(),
            trials: 5,
            counts: OutcomeCounts { benign: 5, ..Default::default() },
            ..Default::default()
        };
        let total = compose_exact(&[a, b]);
        assert_eq!(total, OutcomeCounts { benign: 11, sdc: 2, detected: 1, due: 1 });
    }

    #[test]
    fn weighted_composition_matches_pooled_rate_on_uniform_sampling() {
        // Two regions sampled proportionally to mass: the weighted rate
        // equals the pooled rate.
        let a = RegionProfile {
            name: "a".into(),
            site_mass: 300,
            trials: 300,
            counts: OutcomeCounts { benign: 270, sdc: 30, ..Default::default() },
            ..Default::default()
        };
        let b = RegionProfile {
            name: "b".into(),
            site_mass: 100,
            trials: 100,
            counts: OutcomeCounts { benign: 90, sdc: 10, ..Default::default() },
            ..Default::default()
        };
        let w = compose_weighted(&[a.clone(), b.clone()]);
        let pooled = (a.counts.sdc + b.counts.sdc) as f64 / 400.0;
        assert!((w.value - pooled).abs() < 1e-12);
        assert!(w.ci95 > 0.0 && w.ci95 < 0.1);
        assert_eq!(w.trials, 400);
        assert_eq!(w.mass, 400);
    }

    #[test]
    fn diff_classifies_fates() {
        let cur = RegionSet {
            regions: vec![
                Region { name: "a".into(), hash: 1, site_mass: 5 },
                Region { name: "b".into(), hash: 9, site_mass: 5 },
                Region { name: "c".into(), hash: 3, site_mass: 5 },
            ],
        };
        let base = vec![
            RegionProfile { name: "a".into(), hash: 1, ..Default::default() },
            RegionProfile { name: "b".into(), hash: 2, ..Default::default() },
            RegionProfile { name: "gone".into(), hash: 4, ..Default::default() },
        ];
        let (deltas, dropped) = diff(&cur, &base);
        let fates: Vec<_> = deltas.iter().map(|d| (d.region.name.as_str(), d.fate)).collect();
        assert_eq!(fates, vec![("a", Fate::Reused), ("b", Fate::Rerun), ("c", Fate::New)]);
        assert!(deltas[0].baseline.is_some());
        assert_eq!(dropped, vec!["gone".to_string()]);
    }

    #[test]
    fn roundtrip_region_profile() {
        let p = RegionProfile {
            name: "main".into(),
            hash: 42,
            site_mass: 100,
            trials: 50,
            counts: OutcomeCounts { benign: 40, sdc: 10, ..Default::default() },
            sdc_by_inst: [((FuncId(0), InstId(3)), 7u64)].into_iter().collect(),
            sdc_insts: vec![1, 2, 2],
        };
        let text = serde::json::to_string(&p.serialize_value());
        let v = serde::json::parse(&text).unwrap();
        let back = RegionProfile::deserialize_value(&v).unwrap();
        assert_eq!(back, p);
    }
}
