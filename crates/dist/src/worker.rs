//! The campaign worker: connects to a coordinator, builds the experiment
//! matrix locally from the wire plan, and drains leased batches through
//! the same [`UnitRunner`] the in-process engine uses.
//!
//! Everything heavy is worker-local and persistent across reconnects: the
//! [`GoldenCache`] (goldens + snapshot sets) and the built matrix survive
//! a dropped connection, so a reconnect resumes at full speed. A
//! background thread heartbeats on the coordinator's advertised cadence
//! so lease deadlines stay refreshed even mid-batch.

use crate::protocol::{ClientMsg, PlanSpec, ServerMsg, PROTO_VERSION};
use crate::{framing, FrameError};
use flowery_harness::{
    build_matrix, matrix_fingerprint, region_fingerprint, run_region_task, BatchRecord, GoldenCache, TrialUnit,
    UnitRunner,
};
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Worker knobs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address, e.g. `10.0.0.1:7070`.
    pub connect: String,
    /// Local threads for building the matrix (profiling campaigns).
    pub threads: usize,
    /// Connection attempts beyond the first before giving up. Progress
    /// (completed batches) resets the budget, so a long campaign can ride
    /// out many separate drops.
    pub max_reconnects: u32,
    /// Base reconnect backoff; doubles per consecutive failed attempt.
    pub backoff_ms: u64,
    /// Print per-lease progress to stderr.
    pub verbose: bool,
    /// Override the coordinator's machine-layer engine for locally executed
    /// trials. Sound because engines are bit-identical: results merge
    /// byte-for-byte regardless of which engine each worker ran. `None`
    /// keeps whatever the `Welcome`'d config selects.
    pub executor: Option<flowery_backend::ExecMode>,
    /// Test hook: after this many completed batches (across sessions),
    /// hard-close the socket without a goodbye — simulates a crash so
    /// tests can exercise lease requeue.
    pub die_after_batches: Option<u64>,
}

impl Default for WorkerConfig {
    fn default() -> WorkerConfig {
        WorkerConfig {
            connect: "127.0.0.1:7070".into(),
            threads: 0,
            max_reconnects: 5,
            backoff_ms: 500,
            verbose: false,
            executor: None,
            die_after_batches: None,
        }
    }
}

/// What a worker did before stopping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Batches executed and reported (across all sessions).
    pub batches: u64,
    /// Reconnect attempts that were actually made.
    pub reconnects: u32,
    /// True when the `die_after_batches` test hook fired.
    pub died: bool,
}

enum SessionEnd {
    /// Coordinator said the campaign is over (or draining).
    Shutdown,
    /// The `die_after_batches` hook fired.
    Died,
    /// Unrecoverable protocol failure — do not reconnect.
    Fatal(String),
}

/// Run a worker until the coordinator shuts the campaign down (the
/// `flowery work` entry point).
pub fn work(cfg: WorkerConfig) -> Result<WorkerSummary, String> {
    let cache = GoldenCache::new();
    let mut matrix: Option<(PlanSpec, Vec<TrialUnit>, u64)> = None;
    let mut batches = 0u64;
    let mut reconnects = 0u32;
    let mut attempt = 0u32;
    loop {
        let before = batches;
        match session(&cfg, &cache, &mut matrix, &mut batches) {
            Ok(SessionEnd::Shutdown) => return Ok(WorkerSummary { batches, reconnects, died: false }),
            Ok(SessionEnd::Died) => return Ok(WorkerSummary { batches, reconnects, died: true }),
            Ok(SessionEnd::Fatal(msg)) => return Err(msg),
            Err(e) => {
                if batches > before {
                    attempt = 0; // the drop came after real progress; fresh budget
                }
                if attempt >= cfg.max_reconnects {
                    return Err(format!("{e} (giving up after {attempt} reconnect attempts)"));
                }
                attempt += 1;
                reconnects += 1;
                let delay = cfg.backoff_ms.saturating_mul(1u64 << attempt.min(6));
                if cfg.verbose {
                    eprintln!("  [work] connection lost ({e}); retrying in {delay}ms");
                }
                std::thread::sleep(Duration::from_millis(delay));
            }
        }
    }
}

/// One connection's lifetime: handshake, lease loop, disconnect.
/// `Err` means the transport failed and a reconnect may help.
fn session(
    cfg: &WorkerConfig,
    cache: &GoldenCache,
    matrix: &mut Option<(PlanSpec, Vec<TrialUnit>, u64)>,
    batches_done: &mut u64,
) -> Result<SessionEnd, String> {
    let stream = TcpStream::connect(&cfg.connect).map_err(|e| format!("connect {}: {e}", cfg.connect))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let mut reader = stream.try_clone().map_err(|e| e.to_string())?;
    let writer = Arc::new(Mutex::new(stream));
    let send = |msg: &ClientMsg| -> Result<(), String> {
        framing::write_frame(&mut *writer.lock().unwrap(), msg).map_err(|e| format!("send: {e}"))
    };

    send(&ClientMsg::Hello { proto_version: PROTO_VERSION })?;
    let (worker_id, plan, mut hcfg, heartbeat_ms) = match read(&mut reader)? {
        ServerMsg::Welcome { worker_id, plan, cfg, heartbeat_ms } => (worker_id, plan, cfg, heartbeat_ms),
        ServerMsg::Error { msg } => return Ok(SessionEnd::Fatal(format!("coordinator rejected us: {msg}"))),
        other => return Ok(SessionEnd::Fatal(format!("expected Welcome, got {other:?}"))),
    };
    if let Some(mode) = cfg.executor {
        hcfg.exec.executor = mode;
    }

    // Build (or reuse) the matrix; both sides must agree bit-for-bit.
    if matrix.as_ref().is_none_or(|(p, _, _)| *p != plan) {
        if cfg.verbose {
            eprintln!("  [work] worker {worker_id}: building matrix for {} bench(es)", plan.benches.len().max(1));
        }
        let units = build_matrix(&plan.to_spec(cfg.threads));
        let fp = matrix_fingerprint(&units);
        *matrix = Some((plan, units, fp));
    }
    let (_, units, fingerprint) = matrix.as_ref().unwrap();
    send(&ClientMsg::Ready {
        fingerprint: *fingerprint,
        models_hash: flowery_faultmodel::registry_hash(),
    })?;

    // Heartbeat on the coordinator's cadence until the session ends.
    let stop = Arc::new(AtomicBool::new(false));
    let hb = {
        let writer = writer.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut last = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                if last.elapsed() >= Duration::from_millis(heartbeat_ms) {
                    last = Instant::now();
                    if framing::write_frame(&mut *writer.lock().unwrap(), &ClientMsg::Heartbeat).is_err() {
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    };
    let finish = |end: Result<SessionEnd, String>| {
        stop.store(true, Ordering::Relaxed);
        let _ = hb.join();
        end
    };

    let mut runners: HashMap<usize, UnitRunner<'_>> = HashMap::new();
    // Region fingerprint for scoped (diff) leases, computed at most once
    // per session — the partition golden runs are served by the persistent
    // cache, so this is cheap after the first session.
    let mut region_fp: Option<u64> = None;
    loop {
        if let Err(e) = send(&ClientMsg::LeaseRequest) {
            return finish(Err(e));
        }
        let resp = match read(&mut reader) {
            Ok(r) => r,
            Err(e) => return finish(Err(e)),
        };
        match resp {
            ServerMsg::Lease { unit, batches } => {
                let Some(ui) = units.iter().position(|u| u.key == unit) else {
                    return finish(Ok(SessionEnd::Fatal(format!("leased unknown unit {unit}"))));
                };
                if cfg.verbose {
                    eprintln!("  [work] worker {worker_id}: {} batches of {unit}", batches.len());
                }
                let runner = runners.entry(ui).or_insert_with(|| UnitRunner::new(&units[ui], cache, &hcfg));
                for b in batches {
                    let out = runner.run_batch(&hcfg, b);
                    let msg = ClientMsg::Completed {
                        record: out.to_record(units[ui].key.clone(), b, hcfg.effective_model()),
                        ff_insts: out.ff_insts,
                        exec_insts: out.exec_insts,
                    };
                    if let Err(e) = send(&msg) {
                        return finish(Err(e));
                    }
                    *batches_done += 1;
                    if cfg.die_after_batches.is_some_and(|n| *batches_done >= n) {
                        // Crash simulation: sever the socket so the
                        // coordinator sees a hard close, not a goodbye.
                        let _ = writer.lock().unwrap().shutdown(std::net::Shutdown::Both);
                        return finish(Ok(SessionEnd::Died));
                    }
                }
            }
            ServerMsg::ScopedLease { scope, spec, batches, region_fingerprint: theirs } => {
                let Some(ui) = units.iter().position(|u| u.key == spec.unit) else {
                    return finish(Ok(SessionEnd::Fatal(format!("scoped lease for unknown unit {}", spec.unit))));
                };
                let ours = *region_fp.get_or_insert_with(|| region_fingerprint(units, cache, &hcfg));
                if ours != theirs {
                    return finish(Ok(SessionEnd::Fatal(format!(
                        "region fingerprint {ours:016x} != coordinator's {theirs:016x} \
                         (divergent region partition would scope trials wrongly)"
                    ))));
                }
                if cfg.verbose {
                    eprintln!(
                        "  [work] worker {worker_id}: {} scoped batches of `{}` in {}",
                        batches.len(),
                        spec.region,
                        spec.unit
                    );
                }
                for b in batches {
                    let lo = b * hcfg.batch_size;
                    let hi = (lo + hcfg.batch_size).min(spec.trials);
                    let Some(out) =
                        run_region_task(&units[ui], cache, &hcfg, &spec.region, spec.seed, spec.mass, lo..hi)
                    else {
                        return finish(Ok(SessionEnd::Fatal(format!(
                            "region `{}` of {} has no injection scope in this build",
                            spec.region, spec.unit
                        ))));
                    };
                    let record = BatchRecord {
                        unit: spec.unit.clone(),
                        batch: b,
                        counts: out.counts,
                        sdc_by_inst: out.sdc_by_inst,
                        sdc_insts: out.sdc_insts,
                        fault_model: hcfg.effective_model(),
                        region_counts: vec![(spec.region.clone(), out.counts)],
                        // Scoped region re-runs never prune: the scoped
                        // sampler re-draws sites within the region, which
                        // the site-trace proofs do not cover.
                        prune_table: 0,
                        pruned: 0,
                    };
                    let msg = ClientMsg::ScopedCompleted {
                        scope,
                        record,
                        ff_insts: out.ff_insts,
                        exec_insts: out.exec_insts,
                    };
                    if let Err(e) = send(&msg) {
                        return finish(Err(e));
                    }
                    *batches_done += 1;
                    if cfg.die_after_batches.is_some_and(|n| *batches_done >= n) {
                        let _ = writer.lock().unwrap().shutdown(std::net::Shutdown::Both);
                        return finish(Ok(SessionEnd::Died));
                    }
                }
            }
            ServerMsg::Wait { ms } => std::thread::sleep(Duration::from_millis(ms.min(1000))),
            ServerMsg::Shutdown { reason } => {
                if cfg.verbose {
                    eprintln!("  [work] worker {worker_id}: shutdown ({reason})");
                }
                let _ = send(&ClientMsg::Goodbye);
                return finish(Ok(SessionEnd::Shutdown));
            }
            ServerMsg::Error { msg } => return finish(Ok(SessionEnd::Fatal(msg))),
            ServerMsg::Welcome { .. } => return finish(Ok(SessionEnd::Fatal("unexpected second welcome".into()))),
        }
    }
}

fn read(reader: &mut TcpStream) -> Result<ServerMsg, String> {
    framing::read_frame(reader).map_err(|e: FrameError| format!("read: {e}"))
}
