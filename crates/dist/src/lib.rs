//! # flowery-dist
//!
//! Coordinator/worker distributed campaign execution over TCP.
//!
//! One coordinator ([`Coordinator`], `flowery serve`) owns the experiment
//! plan, the checkpoint, and the lease table; any number of workers
//! ([`work`], `flowery work`) connect, build the matrix locally from the
//! wire plan, lease fixed-size batch runs, and stream results back.
//! Built entirely on `std::net` — frames are length-prefixed JSON
//! ([`framing`]), messages are the [`protocol`] enums.
//!
//! The subsystem inherits the harness's determinism contract: every trial
//! is a pure function of `(seed, trial index)`, results merge
//! idempotently, and the finished checkpoint is compacted to canonical
//! form — so a distributed campaign's checkpoint is byte-identical to a
//! single-process run of the same plan, worker crashes and all. See
//! `DESIGN.md` §6 for the full argument.

pub mod coordinator;
pub mod framing;
pub mod lease;
pub mod protocol;
pub mod worker;

pub use coordinator::{serve, serve_diff, Coordinator, CoordinatorConfig, DistDiffReport, DistReport};
pub use framing::{read_frame, write_frame, FrameError, MAX_FRAME};
pub use lease::{LeaseKey, LeaseTable};
pub use protocol::{ClientMsg, PlanSpec, ScopeSpec, ServerMsg, PROTO_VERSION};
pub use worker::{work, WorkerConfig, WorkerSummary};
