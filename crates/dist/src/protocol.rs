//! The coordinator/worker wire protocol.
//!
//! Strictly request/response from the worker's point of view: the
//! coordinator only ever writes in reply to [`ClientMsg::Hello`],
//! [`ClientMsg::Ready`] (on failure), and [`ClientMsg::LeaseRequest`];
//! [`ClientMsg::Completed`], [`ClientMsg::Heartbeat`], and
//! [`ClientMsg::Goodbye`] elicit nothing. That keeps the worker's read
//! side trivial — every read is the answer to the request it just sent —
//! while the heartbeat thread is free to write concurrently (frames are
//! atomic, see [`crate::framing`]).
//!
//! The plan travels as a [`PlanSpec`]: both sides build the experiment
//! matrix *independently* from it and compare
//! [`flowery_harness::matrix_fingerprint`]s during the handshake, so a
//! divergent build (different code, nondeterministic compile) is caught
//! before any lease is granted instead of surfacing as corrupt results.

use flowery_harness::{BatchRecord, HarnessConfig, MatrixSpec, UnitKey};
use flowery_workloads::Scale;
use serde::{Deserialize, Serialize};

/// Protocol revision; bumped on any wire-incompatible change.
///
/// v2 added scoped (region-level) leases for incremental `flowery diff`
/// campaigns: [`ServerMsg::ScopedLease`] / [`ClientMsg::ScopedCompleted`]
/// and out-of-tree plan sources. A v1 worker would silently run scoped
/// work unscoped, so the versions refuse to pair.
pub const PROTO_VERSION: u32 = 2;

/// A wire-portable experiment plan. Floats are avoided (levels travel in
/// permille) and the backend configuration is pinned to the default on
/// both sides, so two builds of the same code produce the same matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSpec {
    /// Workload names; empty means every benchmark.
    pub benches: Vec<String>,
    /// Input scale: `true` = [`Scale::Tiny`], `false` = [`Scale::Standard`].
    pub tiny: bool,
    /// Protection levels in permille (1000 = full).
    pub levels_permille: Vec<u32>,
    /// Trials for the per-instruction SDC profile behind selective
    /// protection (levels below 1000).
    pub profile_trials: u64,
    pub profile_seed: u64,
    /// Out-of-tree programs as `(name, MiniC source)`; both sides compile
    /// them exactly like workloads (see [`MatrixSpec::sources`]).
    #[serde(default)]
    pub sources: Vec<(String, String)>,
}

impl PlanSpec {
    /// Capture a [`MatrixSpec`]'s schedule-relevant parameters. The
    /// backend configuration and thread count are deliberately dropped:
    /// the wire plan pins the default backend, and threads never affect
    /// results.
    pub fn from_spec(spec: &MatrixSpec) -> PlanSpec {
        PlanSpec {
            benches: spec.benches.clone(),
            tiny: spec.scale == Scale::Tiny,
            levels_permille: spec.levels.iter().map(|&l| (l * 1000.0).round() as u32).collect(),
            profile_trials: spec.profile_trials,
            profile_seed: spec.profile_seed,
            sources: spec.sources.clone(),
        }
    }

    /// The [`MatrixSpec`] this plan describes. `threads` is the local
    /// parallelism to use while building (profiling campaigns), not part
    /// of the plan's identity.
    pub fn to_spec(&self, threads: usize) -> MatrixSpec {
        MatrixSpec {
            benches: self.benches.clone(),
            scale: if self.tiny { Scale::Tiny } else { Scale::Standard },
            levels: self.levels_permille.iter().map(|&p| p as f64 / 1000.0).collect(),
            profile_trials: self.profile_trials,
            profile_seed: self.profile_seed,
            sources: self.sources.clone(),
            threads,
            ..Default::default()
        }
    }
}

/// One changed region's re-run budget in an incremental (diff) campaign.
/// The worker resolves `region` to an injection scope (IR function /
/// machine range) in its own build of `unit`; `seed` is the region-local
/// stream and `mass` the region's dynamic fault-site count, so every
/// scoped trial is a pure function of `(seed, trial index)` on any
/// machine. Batches index `trials` in [`HarnessConfig::batch_size`]
/// chunks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeSpec {
    pub unit: UnitKey,
    pub region: String,
    pub trials: u64,
    pub seed: u64,
    pub mass: u64,
}

/// Worker → coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientMsg {
    /// First frame on every connection.
    Hello { proto_version: u32 },
    /// Sent after building the matrix from the [`ServerMsg::Welcome`]
    /// plan; the coordinator verifies both hashes before leasing.
    /// `models_hash` is [`flowery_faultmodel::registry_hash`]: builds
    /// whose fault-model/detector registries diverge would sample or
    /// classify trials differently, so they refuse to pair. Defaults to 0
    /// for pre-model workers, which never match a current coordinator.
    Ready {
        fingerprint: u64,
        #[serde(default)]
        models_hash: u64,
    },
    /// Ask for work. Answered by `Lease`, `Wait`, or `Shutdown`.
    LeaseRequest,
    /// One finished batch. `ff_insts`/`exec_insts` feed the coordinator's
    /// per-worker metrics; the record itself is merged idempotently.
    Completed { record: BatchRecord, ff_insts: u64, exec_insts: u64 },
    /// One finished batch of a scoped (region-level) lease. `scope` echoes
    /// the [`ServerMsg::ScopedLease`] task index; the record's `batch`
    /// names the fragment so the coordinator can fold fragments in batch
    /// order, bit-identically to a local `flowery diff` run.
    ScopedCompleted {
        scope: u32,
        record: BatchRecord,
        ff_insts: u64,
        exec_insts: u64,
    },
    /// Liveness signal, sent on a timer even mid-batch. Refreshes the
    /// worker's lease deadlines.
    Heartbeat,
    /// Clean disconnect; outstanding leases are requeued immediately.
    Goodbye,
}

/// Coordinator → worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// Reply to `Hello`: identity, the plan to build, the schedule, and
    /// the heartbeat cadence this coordinator expects.
    Welcome {
        worker_id: u64,
        plan: PlanSpec,
        cfg: HarnessConfig,
        heartbeat_ms: u64,
    },
    /// A grant of work: run these batch indices of `unit`'s schedule.
    Lease { unit: UnitKey, batches: Vec<u64> },
    /// A grant of scoped work in an incremental (diff) campaign: run these
    /// batch indices of the region task `spec`, task index `scope`.
    /// `region_fingerprint` is [`flowery_harness::region_fingerprint`] of
    /// the coordinator's matrix — a worker whose build carves different
    /// regions would attribute trials to the wrong scope, so it must
    /// verify the hash before running the first scoped batch.
    ScopedLease {
        scope: u32,
        spec: ScopeSpec,
        batches: Vec<u64>,
        region_fingerprint: u64,
    },
    /// No work right now (all schedules leased out); ask again in `ms`.
    Wait { ms: u64 },
    /// The campaign is over (or draining); disconnect after this.
    Shutdown { reason: String },
    /// Handshake or protocol failure; the connection is closed after this.
    Error { msg: String },
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowery_harness::{Layer, Variant};
    use std::collections::HashMap;

    #[test]
    fn ready_without_models_hash_defaults_to_zero() {
        // A pre-model worker's Ready frame has no models_hash; it must
        // parse as 0, which never equals a real registry hash — so the
        // coordinator refuses the build divergence instead of crashing.
        let json = "{\"Ready\":{\"fingerprint\":7}}";
        let msg: ClientMsg = serde_json::from_str(json).unwrap();
        assert_eq!(msg, ClientMsg::Ready { fingerprint: 7, models_hash: 0 });
        assert_ne!(flowery_faultmodel::registry_hash(), 0);
    }

    #[test]
    fn plan_spec_roundtrips_through_matrix_spec() {
        let spec = MatrixSpec {
            benches: vec!["crc32".into(), "quicksort".into()],
            scale: Scale::Tiny,
            levels: vec![0.3, 0.7, 1.0],
            profile_trials: 600,
            profile_seed: 7,
            ..Default::default()
        };
        let plan = PlanSpec::from_spec(&spec);
        assert_eq!(plan.levels_permille, vec![300, 700, 1000]);
        let back = plan.to_spec(2);
        assert_eq!(back.benches, spec.benches);
        assert_eq!(back.scale, spec.scale);
        assert_eq!(back.levels, spec.levels);
        assert_eq!(back.profile_trials, spec.profile_trials);
        assert_eq!(back.threads, 2);
        // And the wire form itself is stable.
        let json = serde_json::to_string(&plan).unwrap();
        let wire: PlanSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(wire, plan);
    }

    #[test]
    fn messages_roundtrip_through_json() {
        let record = BatchRecord {
            unit: UnitKey::new("crc32", Variant::Id, 0.7, Layer::Asm),
            batch: 3,
            counts: Default::default(),
            sdc_by_inst: HashMap::new(),
            sdc_insts: vec![5, 9],
            fault_model: flowery_faultmodel::ModelSpec::MemCell,
            region_counts: Vec::new(),
            prune_table: 0x51a7_1c17,
            pruned: 12,
        };
        let msgs = vec![
            ClientMsg::Hello { proto_version: PROTO_VERSION },
            ClientMsg::Ready {
                fingerprint: u64::MAX,
                models_hash: flowery_faultmodel::registry_hash(),
            },
            ClientMsg::LeaseRequest,
            ClientMsg::Completed { record: record.clone(), ff_insts: 10, exec_insts: 20 },
            ClientMsg::ScopedCompleted { scope: 4, record, ff_insts: 10, exec_insts: 20 },
            ClientMsg::Heartbeat,
            ClientMsg::Goodbye,
        ];
        for m in msgs {
            let json = serde_json::to_string(&m).unwrap();
            let back: ClientMsg = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m, "{json}");
        }
        let msgs = vec![
            ServerMsg::Welcome {
                worker_id: 1,
                plan: PlanSpec {
                    benches: vec![],
                    tiny: false,
                    levels_permille: vec![1000],
                    profile_trials: 1200,
                    profile_seed: 3,
                    sources: vec![("probe".into(), "int main() { return 0; }".into())],
                },
                cfg: HarnessConfig::default(),
                heartbeat_ms: 2000,
            },
            ServerMsg::Lease {
                unit: UnitKey::new("crc32", Variant::Raw, 0.0, Layer::Ir),
                batches: vec![0, 1, 2],
            },
            ServerMsg::ScopedLease {
                scope: 4,
                spec: ScopeSpec {
                    unit: UnitKey::new("crc32", Variant::Id, 0.7, Layer::Asm),
                    region: "main".into(),
                    trials: 200,
                    seed: 0x5eed,
                    mass: 1234,
                },
                batches: vec![0, 1],
                region_fingerprint: 99,
            },
            ServerMsg::Wait { ms: 200 },
            ServerMsg::Shutdown { reason: "campaign complete".into() },
            ServerMsg::Error { msg: "fingerprint mismatch".into() },
        ];
        for m in msgs {
            let json = serde_json::to_string(&m).unwrap();
            let back: ServerMsg = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m, "{json}");
        }
    }
}
