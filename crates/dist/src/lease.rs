//! The coordinator's lease table: which batches are out with which
//! worker, and when they are presumed lost.
//!
//! Time enters only as caller-supplied millisecond counts, so expiry is
//! unit-testable with a fake clock. A lease's deadline is refreshed by
//! *any* frame from its holder (heartbeats included), which makes the
//! deadline a liveness bound, not an execution-time bound: a slow batch on
//! a live worker never expires, while a dead worker's leases requeue
//! after `ttl_ms` even if its TCP connection lingers.
//!
//! Requeued batches are served before fresh cursor batches, so work lost
//! to a crash is retried promptly rather than after the whole schedule.

use std::collections::{HashMap, HashSet, VecDeque};

/// One leased batch: `(unit index, batch index)`.
pub type LeaseKey = (usize, u64);

#[derive(Debug, Clone)]
struct Holder {
    worker: u64,
    deadline_ms: u64,
}

/// Tracks the per-unit schedule cursor, outstanding leases, the requeue
/// backlog, and which workers have completed batches of which units
/// (unit affinity).
pub struct LeaseTable {
    /// Per-item batch count: item `i` schedules batches `0..limits[i]`.
    /// Uniform for campaign units; per-task for scoped diff work, where
    /// each changed region gets its own trial budget.
    limits: Vec<u64>,
    cursors: Vec<u64>,
    outstanding: HashMap<LeaseKey, Holder>,
    requeued: VecDeque<LeaseKey>,
    requeue_count: u64,
    /// unit index -> workers that have completed a batch of it. Workers
    /// are steered back to units they already hold golden runs and
    /// snapshot sets for, so a fleet converges to disjoint unit
    /// ownership instead of every worker capturing every unit.
    affinity: HashMap<usize, HashSet<u64>>,
}

impl LeaseTable {
    pub fn new(n_units: usize, max_batches: u64) -> LeaseTable {
        LeaseTable::with_limits(vec![max_batches; n_units])
    }

    /// A table whose items have individual batch counts (scoped diff
    /// tasks: one item per changed region, sized by its trial budget).
    pub fn with_limits(limits: Vec<u64>) -> LeaseTable {
        LeaseTable {
            cursors: vec![0; limits.len()],
            limits,
            outstanding: HashMap::new(),
            requeued: VecDeque::new(),
            requeue_count: 0,
            affinity: HashMap::new(),
        }
    }

    /// Claim up to `max` batches of one unit for `worker`. Requeued
    /// batches are preferred; otherwise cursor batches are supplied from
    /// the best-ranked unit `done` does not rule out, skipping any `have`
    /// already reports (e.g. replayed from a checkpoint). Units are
    /// ranked by affinity — ones this worker already completed batches
    /// of, then ones no worker has touched, then everyone else's — so
    /// workers keep reusing the golden runs and snapshot sets they
    /// already captured. Returns an empty vec when everything left is
    /// leased out or finished.
    pub fn claim(
        &mut self,
        worker: u64,
        now_ms: u64,
        ttl_ms: u64,
        max: usize,
        done: impl Fn(usize) -> bool,
        have: impl Fn(usize, u64) -> bool,
    ) -> Vec<LeaseKey> {
        let mut grant: Vec<LeaseKey> = Vec::new();
        // Drain the requeue backlog first (all grants must share a unit so
        // the worker builds one runner). The first pick honours affinity;
        // backlog position breaks ties.
        while grant.len() < max {
            let pos = match grant.first() {
                Some(&(gu, _)) => self.requeued.iter().position(|&(ui, b)| ui == gu && !done(ui) && !have(ui, b)),
                None => self
                    .requeued
                    .iter()
                    .enumerate()
                    .filter(|&(_, &(ui, b))| !done(ui) && !have(ui, b))
                    .min_by_key(|&(i, &(ui, _))| (self.rank(worker, ui), i))
                    .map(|(i, _)| i),
            };
            let Some(i) = pos else {
                break;
            };
            let key = self.requeued.remove(i).unwrap();
            grant.push(key);
        }
        // Also drop requeued entries that became moot (unit decided or
        // batch satisfied elsewhere) so the backlog cannot grow stale.
        self.requeued.retain(|&(ui, b)| !done(ui) && !have(ui, b));
        if grant.is_empty() {
            let mut order: Vec<usize> = (0..self.cursors.len()).collect();
            order.sort_by_key(|&ui| self.rank(worker, ui)); // stable: index order within ranks
            'units: for ui in order {
                if done(ui) {
                    continue;
                }
                while grant.len() < max {
                    let b = self.cursors[ui];
                    if b >= self.limits[ui] {
                        if grant.is_empty() {
                            continue 'units;
                        }
                        break 'units;
                    }
                    self.cursors[ui] += 1;
                    if have(ui, b) {
                        continue;
                    }
                    grant.push((ui, b));
                }
                break;
            }
        }
        for &key in &grant {
            self.outstanding.insert(key, Holder { worker, deadline_ms: now_ms + ttl_ms });
        }
        grant
    }

    /// A result arrived for this batch from `worker` (who may not hold
    /// the lease — an expired lease's batch can be reported by its
    /// original worker). Completing a batch records unit affinity: the
    /// worker has this unit's golden run and snapshot set warm, so
    /// future [`LeaseTable::claim`]s steer it back to the same unit.
    pub fn complete(&mut self, key: LeaseKey, worker: u64) {
        self.outstanding.remove(&key);
        self.affinity.entry(key.0).or_default().insert(worker);
    }

    /// Affinity rank of `ui` for `worker`: 0 = a unit it completed a
    /// batch of, 1 = a unit nobody has completed or leased, 2 = a unit
    /// some other worker is invested in. Outstanding leases count as
    /// investment so two workers starting simultaneously split the units
    /// instead of racing the same cursor.
    fn rank(&self, worker: u64, ui: usize) -> u8 {
        if self.affinity.get(&ui).is_some_and(|ws| ws.contains(&worker)) {
            return 0;
        }
        let others = self.affinity.get(&ui).is_some_and(|ws| !ws.is_empty())
            || self.outstanding.iter().any(|(&(u, _), h)| u == ui && h.worker != worker);
        if others {
            2
        } else {
            1
        }
    }

    /// Push every lease past its deadline back onto the requeue backlog.
    /// Returns how many expired.
    pub fn expire(&mut self, now_ms: u64) -> usize {
        let expired: Vec<LeaseKey> = self
            .outstanding
            .iter()
            .filter(|(_, h)| h.deadline_ms <= now_ms)
            .map(|(&k, _)| k)
            .collect();
        for key in &expired {
            self.outstanding.remove(key);
            self.requeued.push_back(*key);
        }
        self.requeue_count += expired.len() as u64;
        self.sort_requeued();
        expired.len()
    }

    /// Requeue every lease held by `worker` (its connection died).
    pub fn release_worker(&mut self, worker: u64) -> usize {
        let lost: Vec<LeaseKey> = self
            .outstanding
            .iter()
            .filter(|(_, h)| h.worker == worker)
            .map(|(&k, _)| k)
            .collect();
        for key in &lost {
            self.outstanding.remove(key);
            self.requeued.push_back(*key);
        }
        self.requeue_count += lost.len() as u64;
        self.sort_requeued();
        lost.len()
    }

    /// Refresh the deadlines of every lease `worker` holds — called on any
    /// frame from it.
    pub fn touch(&mut self, worker: u64, now_ms: u64, ttl_ms: u64) {
        for h in self.outstanding.values_mut() {
            if h.worker == worker {
                h.deadline_ms = now_ms + ttl_ms;
            }
        }
    }

    /// Keep the backlog deterministic: `outstanding` iterates in hash
    /// order, so requeue bursts land unordered.
    fn sort_requeued(&mut self) {
        self.requeued.make_contiguous().sort_unstable();
    }

    pub fn outstanding(&self) -> u64 {
        self.outstanding.len() as u64
    }

    /// Total batches ever requeued (expiry + worker death).
    pub fn requeues(&self) -> u64 {
        self.requeue_count
    }

    /// True once no cursor can produce a fresh batch and nothing is
    /// requeued or outstanding. (Units decided early still show unspent
    /// cursors, so callers combine this with their own progress check.)
    pub fn drained(&self, done: impl Fn(usize) -> bool) -> bool {
        self.outstanding.is_empty()
            && self.requeued.is_empty()
            && self.cursors.iter().enumerate().all(|(ui, &c)| done(ui) || c >= self.limits[ui])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEVER_DONE: fn(usize) -> bool = |_| false;
    const HAVE_NONE: fn(usize, u64) -> bool = |_, _| false;

    #[test]
    fn claims_are_batched_per_unit_and_skip_existing() {
        let mut t = LeaseTable::new(2, 4);
        let have = |ui: usize, b: u64| ui == 0 && b == 1; // batch (0,1) replayed from a checkpoint
        let g = t.claim(1, 0, 1000, 3, NEVER_DONE, have);
        assert_eq!(g, vec![(0, 0), (0, 2), (0, 3)], "same unit, checkpointed batch skipped");
        let g = t.claim(2, 0, 1000, 3, NEVER_DONE, have);
        assert_eq!(g, vec![(1, 0), (1, 1), (1, 2)], "next worker moves to the next unit");
        assert_eq!(t.outstanding(), 6);
    }

    #[test]
    fn per_item_limits_bound_each_cursor() {
        let mut t = LeaseTable::with_limits(vec![1, 3]);
        let g = t.claim(1, 0, 1000, 4, NEVER_DONE, HAVE_NONE);
        assert_eq!(g, vec![(0, 0)], "item 0 offers exactly its one batch");
        let g = t.claim(2, 0, 1000, 4, NEVER_DONE, HAVE_NONE);
        assert_eq!(g, vec![(1, 0), (1, 1), (1, 2)], "item 1 offers three");
        for (k, w) in [((0, 0), 1u64), ((1, 0), 2), ((1, 1), 2), ((1, 2), 2)] {
            t.complete(k, w);
        }
        assert!(t.drained(NEVER_DONE));
    }

    #[test]
    fn expiry_requeues_and_requeues_are_served_first() {
        let mut t = LeaseTable::new(1, 4);
        let g = t.claim(1, 0, 1000, 2, NEVER_DONE, HAVE_NONE);
        assert_eq!(g, vec![(0, 0), (0, 1)]);
        // Deadline passes with no sign of life from worker 1.
        assert_eq!(t.expire(999), 0, "not yet");
        assert_eq!(t.expire(1000), 2, "deadline is inclusive");
        assert_eq!(t.requeues(), 2);
        assert_eq!(t.outstanding(), 0);
        // Worker 2 gets the lost batches before fresh cursor work.
        let g = t.claim(2, 1000, 1000, 4, NEVER_DONE, HAVE_NONE);
        assert_eq!(g, vec![(0, 0), (0, 1)], "requeued work first, in batch order");
        let g = t.claim(2, 1000, 1000, 4, NEVER_DONE, HAVE_NONE);
        assert_eq!(g, vec![(0, 2), (0, 3)], "then the cursor resumes");
    }

    #[test]
    fn touch_defers_expiry_for_live_workers() {
        let mut t = LeaseTable::new(1, 2);
        t.claim(1, 0, 1000, 2, NEVER_DONE, HAVE_NONE);
        t.touch(1, 900, 1000); // heartbeat at t=900 pushes deadlines to 1900
        assert_eq!(t.expire(1500), 0, "heartbeat kept the lease alive");
        assert_eq!(t.expire(1900), 2);
    }

    #[test]
    fn worker_death_releases_only_its_leases() {
        let mut t = LeaseTable::new(2, 2);
        let g1 = t.claim(1, 0, 1000, 2, NEVER_DONE, HAVE_NONE);
        let g2 = t.claim(2, 0, 1000, 2, NEVER_DONE, HAVE_NONE);
        assert_eq!(g1, vec![(0, 0), (0, 1)]);
        assert_eq!(g2, vec![(1, 0), (1, 1)]);
        assert_eq!(t.release_worker(1), 2);
        assert_eq!(t.outstanding(), 2, "worker 2's leases are untouched");
        let g = t.claim(2, 0, 1000, 2, NEVER_DONE, HAVE_NONE);
        assert_eq!(g, vec![(0, 0), (0, 1)], "worker 2 picks up the dead worker's unit");
    }

    #[test]
    fn workers_converge_to_disjoint_unit_ownership() {
        let mut t = LeaseTable::new(2, 4);
        let mut owned: [HashSet<usize>; 2] = [HashSet::new(), HashSet::new()];
        // Two workers alternate single-batch claims on a fake clock,
        // completing each batch before the next tick. Affinity should
        // give each worker its own unit from the very first round.
        let mut now = 0;
        loop {
            let mut progressed = false;
            for w in 1..=2u64 {
                for &(ui, b) in &t.claim(w, now, 1000, 1, NEVER_DONE, HAVE_NONE) {
                    owned[w as usize - 1].insert(ui);
                    t.complete((ui, b), w);
                    progressed = true;
                }
                now += 10;
            }
            if !progressed {
                break;
            }
        }
        assert!(t.drained(NEVER_DONE), "all batches were granted and completed");
        assert_eq!(owned[0], HashSet::from([0]), "worker 1 kept the unit it started");
        assert_eq!(owned[1], HashSet::from([1]), "worker 2 settled on the other unit");
    }

    #[test]
    fn requeued_work_prefers_the_unit_the_worker_completed() {
        let mut t = LeaseTable::new(2, 2);
        // Workers 3 and 4 lease everything, then die after worker 3's
        // batch (1,0) was reported by worker 1 (checkpoint replay path).
        assert_eq!(t.claim(3, 0, 100, 2, NEVER_DONE, HAVE_NONE), vec![(0, 0), (0, 1)]);
        assert_eq!(t.claim(4, 0, 100, 2, NEVER_DONE, HAVE_NONE), vec![(1, 0), (1, 1)]);
        t.complete((1, 0), 1);
        assert_eq!(t.expire(100), 3);
        // The sorted backlog holds (0,0),(0,1) ahead of (1,1), but worker
        // 1's affinity to unit 1 wins the first pick.
        let g = t.claim(1, 100, 1000, 2, NEVER_DONE, HAVE_NONE);
        assert_eq!(g, vec![(1, 1)], "affinity picks the requeued batch of worker 1's unit");
        // The rest of the backlog is still served next, oldest unit first.
        let g = t.claim(1, 100, 1000, 2, NEVER_DONE, HAVE_NONE);
        assert_eq!(g, vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn moot_requeues_are_dropped_and_drained_reports_completion() {
        let mut t = LeaseTable::new(1, 2);
        t.claim(1, 0, 1000, 2, NEVER_DONE, HAVE_NONE);
        t.release_worker(1);
        assert!(!t.drained(NEVER_DONE), "requeue backlog counts as remaining work");
        // The unit decided while the batches sat in the backlog.
        let done = |_ui: usize| true;
        assert!(t.claim(2, 0, 1000, 2, done, HAVE_NONE).is_empty());
        assert!(t.drained(done));
    }
}
