//! The campaign coordinator: owns the experiment plan, the checkpoint,
//! and the lease table; workers connect over TCP and drain the schedule.
//!
//! ## Determinism
//!
//! The coordinator never trusts arrival order. Results are merged
//! idempotently into the same [`UnitProgress`] fold the in-process engine
//! uses (duplicates are dropped after an equality check; conflicting
//! duplicates abort the campaign), and at the end the checkpoint is
//! [`compact`]ed into canonical form — so a distributed run's checkpoint
//! is byte-identical to a single-process run of the same plan, including
//! after worker deaths and lease requeues.
//!
//! ## Failure model
//!
//! Worker death is detected two ways, whichever fires first: the
//! per-connection read timeout (3× the heartbeat interval) and the lease
//! deadline in the [`LeaseTable`] (refreshed by any frame from the
//! holder). Both paths requeue the worker's outstanding batches; because
//! every batch is a pure function of `(seed, indices)`, a batch that was
//! secretly completed anyway just merges as a duplicate.
//!
//! Ctrl-C (or [`flowery_harness::shutdown::request`]) starts a drain:
//! workers get `Shutdown` at their next lease request, in-flight results
//! are still merged, and the checkpoint is flushed in the same format
//! `--resume` reads.

use crate::lease::LeaseTable;
use crate::protocol::{ClientMsg, PlanSpec, ScopeSpec, ServerMsg, PROTO_VERSION};
use crate::{framing, FrameError};
use flowery_harness::checkpoint::{compact, load as load_checkpoint, write_canonical_full, CheckpointLog, Header};
use flowery_harness::{
    build_matrix, compose_units, fold_task_result, matrix_fingerprint, plan_diff, region_fingerprint, run_units,
    Baseline, BatchOutcome, BatchRecord, CampaignReport, DiffReport, DiffTask, DiffUnitReport, DistStats, GoldenCache,
    HarnessConfig, Layer, Metrics, RegionTaskResult, RunOptions, TrialUnit, UnitKey, UnitProgress, WorkerStats,
};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Coordinator knobs. The defaults suit a LAN; tests shrink the
/// intervals.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Address to listen on, e.g. `0.0.0.0:7070` (`:0` for an ephemeral
    /// port, see [`Coordinator::local_addr`]).
    pub addr: String,
    /// Checkpoint path; written during the run, compacted at the end.
    pub checkpoint: PathBuf,
    /// Preload an existing checkpoint instead of truncating it.
    pub resume: bool,
    /// Expected heartbeat cadence; the per-connection read timeout is 3×
    /// this and lease deadlines are 4×.
    pub heartbeat_ms: u64,
    /// Batches granted per lease (all from one unit).
    pub lease_batches: usize,
    /// How long a drain waits for workers to disconnect before
    /// finalizing anyway.
    pub drain_grace_ms: u64,
    /// Local threads for building the matrix (profiling campaigns).
    pub threads: usize,
    /// Print live progress to stderr.
    pub verbose: bool,
    /// Incremental mode: a baseline checkpoint to diff against. Workers
    /// then lease region-scoped batches for changed regions only, and the
    /// coordinator writes the *composed* region checkpoint at the end
    /// (next diff's baseline) instead of a batch log. Run such a
    /// coordinator with [`serve_diff`], not [`serve`].
    pub baseline: Option<PathBuf>,
}

impl Default for CoordinatorConfig {
    fn default() -> CoordinatorConfig {
        CoordinatorConfig {
            addr: "127.0.0.1:7070".into(),
            checkpoint: PathBuf::from("campaign.jsonl"),
            resume: false,
            heartbeat_ms: 2000,
            lease_batches: 4,
            drain_grace_ms: 30_000,
            threads: 0,
            verbose: false,
            baseline: None,
        }
    }
}

/// What `run` hands back: the deterministic report plus the
/// distribution-side counters.
pub struct DistReport {
    pub report: CampaignReport,
    pub stats: DistStats,
    /// True when the run drained early (Ctrl-C / requested shutdown) and
    /// undecided units remain.
    pub interrupted: bool,
}

/// What a diff-mode run hands back: the composed incremental report plus
/// the distribution-side counters.
pub struct DistDiffReport {
    pub report: DiffReport,
    pub stats: DistStats,
    /// True when the run drained early; incomplete region profiles were
    /// still composed, but no composed checkpoint was written.
    pub interrupted: bool,
}

/// Diff-mode coordinator state: the plan from [`plan_diff`] plus the
/// fragments workers have reported so far. Fragments are folded in batch
/// order at finalize, so the composed result is bit-identical to a local
/// `flowery diff` of the same plan regardless of worker count or arrival
/// order.
struct DiffState {
    reports: Vec<DiffUnitReport>,
    tasks: Vec<DiffTask>,
    /// Wire form of each task, indexed like `tasks`.
    specs: Vec<ScopeSpec>,
    batches_per_task: Vec<u64>,
    /// Per task: batch index → that slice's result.
    frags: Vec<HashMap<u64, RegionTaskResult>>,
    region_fp: u64,
}

struct CoordState {
    progress: Vec<UnitProgress>,
    leases: LeaseTable,
    workers: HashMap<u64, WorkerStats>,
    next_worker_id: u64,
    log: Option<CheckpointLog>,
    batches_merged: u64,
    shutting_down: bool,
    finalized: bool,
    error: Option<String>,
    /// `Some` switches the coordinator to incremental (diff) mode.
    diff: Option<DiffState>,
}

impl CoordState {
    fn all_decided(&self) -> bool {
        match &self.diff {
            Some(d) => (0..d.tasks.len()).all(|ti| d.frags[ti].len() as u64 >= d.batches_per_task[ti]),
            None => self.progress.iter().all(|p| p.decided().is_some()),
        }
    }

    fn live_workers(&self) -> u64 {
        self.workers.values().filter(|w| w.live).count() as u64
    }

    fn dist_stats(&self) -> DistStats {
        let mut per_worker: Vec<WorkerStats> = self.workers.values().cloned().collect();
        per_worker.sort_by_key(|w| w.id);
        DistStats {
            workers_live: self.live_workers(),
            leases_outstanding: self.leases.outstanding(),
            batches_requeued: self.leases.requeues(),
            per_worker,
        }
    }
}

struct Ctx {
    units: Vec<TrialUnit>,
    key_index: HashMap<UnitKey, usize>,
    plan: PlanSpec,
    hcfg: HarnessConfig,
    header: Header,
    fingerprint: u64,
    ccfg: CoordinatorConfig,
    start: Instant,
    state: Mutex<CoordState>,
}

impl Ctx {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn lease_ttl_ms(&self) -> u64 {
        self.ccfg.heartbeat_ms * 4
    }
}

/// A bound coordinator, ready to [`run`](Coordinator::run). Binding is
/// split from running so callers (tests, scripts) can learn the actual
/// port of an `:0` listen address before starting workers.
pub struct Coordinator {
    listener: TcpListener,
    ctx: Arc<Ctx>,
}

impl Coordinator {
    pub fn bind(plan: PlanSpec, hcfg: HarnessConfig, ccfg: CoordinatorConfig) -> Result<Coordinator, String> {
        let units = build_matrix(&plan.to_spec(ccfg.threads));
        if units.is_empty() {
            return Err("plan produces an empty matrix".into());
        }
        let fingerprint = matrix_fingerprint(&units);
        let header = hcfg.header();
        let max_batches = hcfg.max_batches();
        let mut progress: Vec<UnitProgress> = units.iter().map(|_| UnitProgress::new(max_batches)).collect();
        let key_index: HashMap<UnitKey, usize> = units.iter().enumerate().map(|(i, u)| (u.key.clone(), i)).collect();

        // Incremental mode: plan the diff up front. Workers never see the
        // baseline — only the per-region scope specs derived from it.
        let diff = match &ccfg.baseline {
            Some(base) => {
                if ccfg.resume {
                    return Err("--resume is not supported for an incremental (diff) serve".into());
                }
                let baseline = Baseline::load(base, &header)?;
                if baseline.pre_region && ccfg.verbose {
                    eprintln!("  [serve] baseline {} predates region records; every region runs fresh", base.display());
                }
                let cache = GoldenCache::new();
                let (reports, tasks) = plan_diff(&units, &hcfg, &cache, &baseline, &HashMap::new());
                let specs: Vec<ScopeSpec> = tasks
                    .iter()
                    .map(|t| ScopeSpec {
                        unit: units[t.unit_index].key.clone(),
                        region: t.region.clone(),
                        trials: t.trials,
                        seed: t.seed,
                        mass: t.mass,
                    })
                    .collect();
                let batches_per_task: Vec<u64> = tasks.iter().map(|t| t.trials.div_ceil(hcfg.batch_size)).collect();
                let frags = tasks.iter().map(|_| HashMap::new()).collect();
                let region_fp = region_fingerprint(&units, &cache, &hcfg);
                Some(DiffState { reports, tasks, specs, batches_per_task, frags, region_fp })
            }
            None => None,
        };

        // Resume: preload the existing log; otherwise start fresh. Diff
        // mode keeps no batch log — the composed region checkpoint is
        // written whole at finalize.
        let log = if diff.is_some() {
            None
        } else if ccfg.resume && ccfg.checkpoint.exists() {
            let (h, records) = load_checkpoint(&ccfg.checkpoint)?;
            // Executor differences are provenance, not schedule: engines
            // are bit-identical, so mixed-executor resumes are sound.
            if let Some(why) = h.describe_mismatch(&header) {
                return Err(format!(
                    "{}: checkpoint was written with different campaign parameters — {why}",
                    ccfg.checkpoint.display()
                ));
            }
            for rec in &records {
                let Some(&ui) = key_index.get(&rec.unit) else { continue };
                if rec.batch >= max_batches || progress[ui].has_batch(rec.batch) {
                    continue;
                }
                progress[ui].insert(rec.batch, BatchOutcome::from_record(rec), &header);
            }
            Some(CheckpointLog::append_to(&ccfg.checkpoint)?)
        } else {
            Some(CheckpointLog::create(&ccfg.checkpoint, &header)?)
        };

        let listener = TcpListener::bind(&ccfg.addr).map_err(|e| format!("bind {}: {e}", ccfg.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener nonblocking: {e}"))?;

        let leases = match &diff {
            Some(d) => LeaseTable::with_limits(d.batches_per_task.clone()),
            None => LeaseTable::new(units.len(), max_batches),
        };
        let state = CoordState {
            progress,
            leases,
            workers: HashMap::new(),
            next_worker_id: 1,
            log,
            batches_merged: 0,
            shutting_down: false,
            finalized: false,
            error: None,
            diff,
        };
        let ctx = Arc::new(Ctx {
            units,
            key_index,
            plan,
            hcfg,
            header,
            fingerprint,
            ccfg,
            start: Instant::now(),
            state: Mutex::new(state),
        });
        Ok(Coordinator { listener, ctx })
    }

    /// The actual listen address (resolves `:0`).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// Accept workers and run the campaign to completion (or drain on a
    /// requested shutdown). Returns the same deterministic report a local
    /// run of the plan produces.
    pub fn run(self) -> Result<DistReport, String> {
        if self.ctx.state.lock().unwrap().diff.is_some() {
            return Err("coordinator was bound with a baseline; use run_diff / serve_diff".into());
        }
        let (ctx, interrupted) = self.run_loop()?;
        finalize(&ctx, interrupted)
    }

    /// Diff-mode counterpart of [`run`](Coordinator::run): drain the
    /// scoped schedule, fold worker fragments in batch order, compose, and
    /// write the composed region checkpoint. Bit-identical to a local
    /// `flowery diff` of the same plan and baseline.
    pub fn run_diff(self) -> Result<DistDiffReport, String> {
        if self.ctx.state.lock().unwrap().diff.is_none() {
            return Err("coordinator has no baseline; use run / serve".into());
        }
        let (ctx, interrupted) = self.run_loop()?;
        finalize_diff(&ctx, interrupted)
    }

    fn run_loop(self) -> Result<(Arc<Ctx>, bool), String> {
        let ctx = self.ctx;
        let mut handlers = Vec::new();
        let mut last_render = Instant::now();
        let interrupted = loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let ctx = ctx.clone();
                    handlers.push(std::thread::spawn(move || handle_connection(stream, &ctx)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(format!("accept: {e}")),
            }
            {
                let mut st = ctx.state.lock().unwrap();
                st.leases.expire(ctx.now_ms());
                if let Some(e) = &st.error {
                    let e = e.clone();
                    st.shutting_down = true;
                    drop(st);
                    drain(&ctx);
                    return Err(e);
                }
                if st.all_decided() {
                    break false;
                }
                if flowery_harness::shutdown::requested() {
                    break true;
                }
                if ctx.ccfg.verbose && last_render.elapsed() >= Duration::from_secs(2) {
                    last_render = Instant::now();
                    eprintln!("  [serve] {}", st.dist_stats().render());
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        };

        drain(&ctx);
        for h in handlers {
            let _ = h.join();
        }
        Ok((ctx, interrupted))
    }
}

/// Tell workers to stop (at their next lease request) and wait for them
/// to disconnect, up to the configured grace period. In-flight results
/// keep merging during the wait.
fn drain(ctx: &Ctx) {
    ctx.state.lock().unwrap().shutting_down = true;
    let deadline = Instant::now() + Duration::from_millis(ctx.ccfg.drain_grace_ms);
    while Instant::now() < deadline {
        if ctx.state.lock().unwrap().live_workers() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Flush + compact the checkpoint, then fold it into the final report
/// without executing anything (goldens are computed locally for the
/// per-unit reference fields).
fn finalize(ctx: &Ctx, interrupted: bool) -> Result<DistReport, String> {
    let stats = {
        let mut st = ctx.state.lock().unwrap();
        st.finalized = true;
        st.log = None; // close the writer before rewriting the file
        st.dist_stats()
    };
    compact(&ctx.ccfg.checkpoint)?;
    let (_, records) = load_checkpoint(&ctx.ccfg.checkpoint)?;
    let cache = GoldenCache::new();
    let report = run_units(
        &ctx.units,
        &ctx.hcfg,
        &cache,
        RunOptions { preloaded: records, replay_only: true, ..Default::default() },
    );
    Ok(DistReport { report, stats, interrupted })
}

/// Diff-mode finalize: fold every task's fragments in batch-index order
/// (the same order a local run executes them), compose the per-unit
/// reports, and — on a clean completion — write the composed region
/// checkpoint, the next diff's baseline.
fn finalize_diff(ctx: &Ctx, interrupted: bool) -> Result<DistDiffReport, String> {
    let (stats, diff) = {
        let mut st = ctx.state.lock().unwrap();
        st.finalized = true;
        (st.dist_stats(), st.diff.take())
    };
    let mut d = diff.ok_or("coordinator is not in diff mode")?;
    let metrics = Metrics::with_mode(ctx.hcfg.exec.executor);
    for rep in &d.reports {
        let (reused, rerun, _) = rep.fate_counts();
        metrics.record_region_plan(rep.regions.len() as u64, reused, rerun, rep.trials_saved);
    }
    for (ti, task) in d.tasks.iter().enumerate() {
        let mut batches: Vec<u64> = d.frags[ti].keys().copied().collect();
        batches.sort_unstable();
        for b in batches {
            let r = &d.frags[ti][&b];
            let compiled = ctx.units[task.unit_index].key.layer == flowery_harness::Layer::Asm
                && ctx.hcfg.exec.executor == flowery_backend::ExecMode::Compiled;
            metrics.record_batch(&r.counts, false, r.ff_insts, r.exec_insts, compiled);
            fold_task_result(&mut d.reports[task.unit_index].regions[task.region_index].profile, r);
        }
    }
    compose_units(&mut d.reports);
    let metrics = metrics.snapshot(ctx.units.len(), 0, GoldenCache::new().stats());
    let report = DiffReport { units: d.reports, metrics };
    if !interrupted {
        write_canonical_full(&ctx.ccfg.checkpoint, &ctx.header, &[], &report.records())?;
    }
    Ok(DistDiffReport { report, stats, interrupted })
}

/// Per-connection protocol loop. Any read failure releases the worker's
/// leases; the distinction between a clean goodbye, a closed socket, and
/// a heartbeat timeout only matters for logging.
fn handle_connection(mut stream: TcpStream, ctx: &Ctx) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(ctx.ccfg.heartbeat_ms * 3)));
    let mut worker_id: Option<u64> = None;
    let end: Result<&str, FrameError> = loop {
        let msg: ClientMsg = match framing::read_frame(&mut stream) {
            Ok(m) => m,
            Err(e) => break Err(e),
        };
        if let Some(id) = worker_id {
            ctx.state.lock().unwrap().leases.touch(id, ctx.now_ms(), ctx.lease_ttl_ms());
        }
        match msg {
            ClientMsg::Hello { proto_version } => {
                if proto_version != PROTO_VERSION {
                    let msg = format!("protocol version {proto_version} != {PROTO_VERSION}");
                    let _ = framing::write_frame(&mut stream, &ServerMsg::Error { msg });
                    break Ok("version mismatch");
                }
                let id = {
                    let mut st = ctx.state.lock().unwrap();
                    let id = st.next_worker_id;
                    st.next_worker_id += 1;
                    st.workers.insert(id, WorkerStats::new(id));
                    id
                };
                worker_id = Some(id);
                let welcome = ServerMsg::Welcome {
                    worker_id: id,
                    plan: ctx.plan.clone(),
                    cfg: ctx.hcfg.clone(),
                    heartbeat_ms: ctx.ccfg.heartbeat_ms,
                };
                if framing::write_frame(&mut stream, &welcome).is_err() {
                    break Ok("welcome write failed");
                }
            }
            ClientMsg::Ready { fingerprint, models_hash } => {
                if fingerprint != ctx.fingerprint {
                    let msg = format!(
                        "matrix fingerprint {fingerprint:016x} != coordinator's {:016x} (divergent build?)",
                        ctx.fingerprint
                    );
                    let _ = framing::write_frame(&mut stream, &ServerMsg::Error { msg });
                    break Ok("fingerprint mismatch");
                }
                let ours = flowery_faultmodel::registry_hash();
                if models_hash != ours {
                    let msg = format!(
                        "fault-model registry {models_hash:016x} != coordinator's {ours:016x} \
                         (divergent model sets would sample different faults)"
                    );
                    let _ = framing::write_frame(&mut stream, &ServerMsg::Error { msg });
                    break Ok("fault-model registry mismatch");
                }
            }
            ClientMsg::LeaseRequest => {
                let Some(id) = worker_id else {
                    break Ok("lease before hello");
                };
                let resp = {
                    let mut st = ctx.state.lock().unwrap();
                    if st.finalized || st.shutting_down {
                        ServerMsg::Shutdown { reason: "campaign draining".into() }
                    } else if st.all_decided() {
                        ServerMsg::Shutdown { reason: "campaign complete".into() }
                    } else {
                        let CoordState { leases, progress, diff, .. } = &mut *st;
                        match diff {
                            Some(d) => {
                                let grant = leases.claim(
                                    id,
                                    ctx.now_ms(),
                                    ctx.lease_ttl_ms(),
                                    ctx.ccfg.lease_batches,
                                    |ti| d.frags[ti].len() as u64 >= d.batches_per_task[ti],
                                    |ti, b| d.frags[ti].contains_key(&b),
                                );
                                match grant.first() {
                                    Some(&(ti, _)) => ServerMsg::ScopedLease {
                                        scope: ti as u32,
                                        spec: d.specs[ti].clone(),
                                        batches: grant.iter().map(|&(_, b)| b).collect(),
                                        region_fingerprint: d.region_fp,
                                    },
                                    None => ServerMsg::Wait { ms: 200 },
                                }
                            }
                            None => {
                                let grant = leases.claim(
                                    id,
                                    ctx.now_ms(),
                                    ctx.lease_ttl_ms(),
                                    ctx.ccfg.lease_batches,
                                    |ui| progress[ui].decided().is_some(),
                                    |ui, b| progress[ui].has_batch(b),
                                );
                                match grant.first() {
                                    Some(&(ui, _)) => ServerMsg::Lease {
                                        unit: ctx.units[ui].key.clone(),
                                        batches: grant.iter().map(|&(_, b)| b).collect(),
                                    },
                                    None => ServerMsg::Wait { ms: 200 },
                                }
                            }
                        }
                    }
                };
                let shutdown = matches!(resp, ServerMsg::Shutdown { .. });
                if framing::write_frame(&mut stream, &resp).is_err() || shutdown {
                    break Ok(if shutdown { "shutdown sent" } else { "lease write failed" });
                }
            }
            ClientMsg::Completed { record, ff_insts, exec_insts } => {
                let Some(id) = worker_id else {
                    break Ok("result before hello");
                };
                if let Err(e) = merge_result(ctx, id, record, ff_insts, exec_insts) {
                    ctx.state.lock().unwrap().error.get_or_insert(e);
                    break Ok("merge conflict");
                }
            }
            ClientMsg::ScopedCompleted { scope, record, ff_insts, exec_insts } => {
                let Some(id) = worker_id else {
                    break Ok("result before hello");
                };
                if let Err(e) = merge_scoped(ctx, id, scope, record, ff_insts, exec_insts) {
                    ctx.state.lock().unwrap().error.get_or_insert(e);
                    break Ok("merge conflict");
                }
            }
            ClientMsg::Heartbeat => {} // the touch above is the whole effect
            ClientMsg::Goodbye => break Ok("goodbye"),
        }
    };
    if let Some(id) = worker_id {
        let mut st = ctx.state.lock().unwrap();
        st.leases.release_worker(id);
        if let Some(w) = st.workers.get_mut(&id) {
            w.live = false;
        }
        if ctx.ccfg.verbose {
            match &end {
                Ok(why) => eprintln!("  [serve] worker {id} disconnected ({why})"),
                Err(e) => eprintln!("  [serve] worker {id} lost ({e})"),
            }
        }
    }
}

/// Idempotent merge of one remotely executed batch: exact duplicates are
/// dropped, conflicting duplicates are fatal (they mean a diverging
/// worker — the campaign's determinism guarantee is gone).
fn merge_result(ctx: &Ctx, worker: u64, record: BatchRecord, ff_insts: u64, exec_insts: u64) -> Result<(), String> {
    let mut st = ctx.state.lock().unwrap();
    if st.finalized {
        return Ok(());
    }
    if st.diff.is_some() {
        return Err(format!("worker {worker} sent an unscoped result to an incremental (diff) coordinator"));
    }
    let Some(&ui) = ctx.key_index.get(&record.unit) else {
        return Err(format!("worker {worker} reported unknown unit {}", record.unit));
    };
    if record.batch >= ctx.header.max_batches() {
        return Err(format!(
            "worker {worker} reported out-of-schedule batch {} of {}",
            record.batch, record.unit
        ));
    }
    if record.fault_model != ctx.header.fault_model {
        return Err(format!(
            "worker {worker} reported batch {} of {} under model `{}` (schedule runs `{}`)",
            record.batch, record.unit, record.fault_model, ctx.header.fault_model
        ));
    }
    if record.unit.layer == Layer::Asm && (record.prune_table != 0) != (ctx.header.static_prune != 0) {
        return Err(format!(
            "worker {worker} reported batch {} of {} with prune provenance {:#x} (schedule's static_prune is {:#x})",
            record.batch, record.unit, record.prune_table, ctx.header.static_prune
        ));
    }
    st.leases.complete((ui, record.batch), worker);
    if st.progress[ui].has_batch(record.batch) {
        let existing = st.progress[ui].batch(record.batch).unwrap().to_record(
            record.unit.clone(),
            record.batch,
            ctx.header.fault_model,
        );
        if existing != record {
            return Err(format!("conflicting duplicate for batch {} of {}", record.batch, record.unit));
        }
        return Ok(()); // idempotent: a requeued batch re-ran identically
    }
    if let Some(log) = &st.log {
        log.record_batch(&record)?;
    }
    let outcome = BatchOutcome::from_record(&record);
    st.progress[ui].insert(record.batch, outcome, &ctx.header);
    st.batches_merged += 1;
    if let Some(w) = st.workers.get_mut(&worker) {
        w.batches += 1;
        w.ff_insts += ff_insts;
        w.exec_insts += exec_insts;
    }
    Ok(())
}

/// Idempotent merge of one remotely executed *scoped* batch: the fragment
/// is parked under its (task, batch) slot; folding into region profiles
/// happens at finalize, in batch order, so arrival order never matters.
fn merge_scoped(
    ctx: &Ctx,
    worker: u64,
    scope: u32,
    record: BatchRecord,
    ff_insts: u64,
    exec_insts: u64,
) -> Result<(), String> {
    let mut st = ctx.state.lock().unwrap();
    if st.finalized {
        return Ok(());
    }
    let CoordState { diff, leases, workers, batches_merged, .. } = &mut *st;
    let Some(d) = diff else {
        return Err(format!("worker {worker} sent a scoped result to a non-diff coordinator"));
    };
    let ti = scope as usize;
    let Some(spec) = d.specs.get(ti) else {
        return Err(format!("worker {worker} reported unknown scope {scope}"));
    };
    if record.unit != spec.unit {
        return Err(format!(
            "worker {worker} reported scope {scope} under unit {} (scope belongs to {})",
            record.unit, spec.unit
        ));
    }
    if record.batch >= d.batches_per_task[ti] {
        return Err(format!(
            "worker {worker} reported out-of-schedule batch {} of scope {scope} (`{}` of {})",
            record.batch, spec.region, spec.unit
        ));
    }
    if record.fault_model != ctx.header.fault_model {
        return Err(format!(
            "worker {worker} reported batch {} of scope {scope} under model `{}` (schedule runs `{}`)",
            record.batch, record.fault_model, ctx.header.fault_model
        ));
    }
    if record.prune_table != 0 || record.pruned != 0 {
        return Err(format!(
            "worker {worker} reported pruned trials in scoped batch {} of scope {scope} \
             (scoped re-sampling is never prunable)",
            record.batch
        ));
    }
    let batch = record.batch;
    let frag = RegionTaskResult {
        counts: record.counts,
        sdc_by_inst: record.sdc_by_inst,
        sdc_insts: record.sdc_insts,
        ff_insts,
        exec_insts,
    };
    leases.complete((ti, batch), worker);
    if let Some(existing) = d.frags[ti].get(&batch) {
        if *existing != frag {
            return Err(format!(
                "conflicting duplicate for batch {batch} of scope {scope} (`{}` of {})",
                spec.region, spec.unit
            ));
        }
        return Ok(()); // idempotent: a requeued batch re-ran identically
    }
    d.frags[ti].insert(batch, frag);
    *batches_merged += 1;
    if let Some(w) = workers.get_mut(&worker) {
        w.batches += 1;
        w.ff_insts += ff_insts;
        w.exec_insts += exec_insts;
    }
    Ok(())
}

/// Convenience wrapper: bind and run in one call (the `flowery serve`
/// entry point).
pub fn serve(plan: PlanSpec, hcfg: HarnessConfig, ccfg: CoordinatorConfig) -> Result<DistReport, String> {
    let coord = Coordinator::bind(plan, hcfg, ccfg)?;
    let mut out = std::io::stderr();
    let _ = writeln!(out, "  [serve] listening on {}", coord.local_addr()?);
    coord.run()
}

/// Bind and run an incremental (diff) coordinator in one call (the
/// `flowery serve --baseline` entry point). `ccfg.baseline` must be set.
pub fn serve_diff(plan: PlanSpec, hcfg: HarnessConfig, ccfg: CoordinatorConfig) -> Result<DistDiffReport, String> {
    if ccfg.baseline.is_none() {
        return Err("serve_diff needs a baseline checkpoint".into());
    }
    let coord = Coordinator::bind(plan, hcfg, ccfg)?;
    let mut out = std::io::stderr();
    let _ = writeln!(out, "  [serve] listening on {} (incremental)", coord.local_addr()?);
    coord.run_diff()
}
