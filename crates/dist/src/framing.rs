//! Length-prefixed JSON framing over a byte stream.
//!
//! Every message is one frame: a 4-byte big-endian payload length followed
//! by that many bytes of JSON. Frames are written with a single
//! `write_all` of the assembled buffer, so concurrent writers (the
//! worker's heartbeat thread and its request loop) interleave at frame
//! granularity when they serialize on the stream lock — never mid-frame.
//!
//! Reads distinguish the failure modes a coordinator cares about:
//! a peer that closed at a frame boundary ([`FrameError::Closed`], a clean
//! goodbye-less exit), one that died mid-frame ([`FrameError::Truncated`]),
//! a read timeout ([`FrameError::Timeout`], the heartbeat deadline), and a
//! length prefix over [`MAX_FRAME`] ([`FrameError::Oversized`], garbage or
//! a hostile peer — rejected before any allocation).

use serde::{Deserialize, Serialize};
use std::io::{ErrorKind, Read, Write};

/// Hard cap on one frame's payload. Generous for batch records (a batch
/// record is a few KB) while keeping a corrupt length prefix from
/// triggering a multi-GB allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Why a frame could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// EOF at a frame boundary: the peer closed the connection.
    Closed,
    /// EOF inside a frame: the peer died mid-write.
    Truncated,
    /// No frame arrived within the socket's read timeout.
    Timeout,
    /// Declared payload length exceeds [`MAX_FRAME`].
    Oversized(u64),
    /// Transport error.
    Io(String),
    /// Payload was not valid JSON for the expected type.
    Decode(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::Timeout => write!(f, "read timed out"),
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap"),
            FrameError::Io(e) => write!(f, "frame I/O: {e}"),
            FrameError::Decode(e) => write!(f, "frame decode: {e}"),
        }
    }
}

/// Serialize `msg` and write it as one frame with a single `write_all`.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), FrameError> {
    let json = serde_json::to_string(msg).map_err(|e| FrameError::Decode(format!("{e:?}")))?;
    let payload = json.as_bytes();
    if payload.len() > MAX_FRAME {
        return Err(FrameError::Oversized(payload.len() as u64));
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf).map_err(io_err)
}

/// Read one frame and decode it as `T`.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<T, FrameError> {
    let mut len_buf = [0u8; 4];
    read_exact_or(r, &mut len_buf, FrameError::Closed)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len as u64));
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, FrameError::Truncated)?;
    let text = std::str::from_utf8(&payload).map_err(|e| FrameError::Decode(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| FrameError::Decode(format!("{e:?}")))
}

/// `read_exact` that maps a clean EOF to `on_eof` — [`FrameError::Closed`]
/// when it happens before any length byte, [`FrameError::Truncated`] once
/// a frame has started. An EOF after *some* length bytes also counts as
/// truncated, which `read_exact`'s `UnexpectedEof` covers only when the
/// first byte already arrived; track that case by hand.
fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], on_eof: FrameError) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 { on_eof } else { FrameError::Truncated });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(if filled == 0 { FrameError::Timeout } else { FrameError::Truncated });
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    Ok(())
}

fn io_err(e: std::io::Error) -> FrameError {
    FrameError::Io(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ClientMsg, ServerMsg};

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ClientMsg::Heartbeat).unwrap();
        write_frame(&mut buf, &ClientMsg::Ready { fingerprint: 0xDEAD_BEEF, models_hash: 1 }).unwrap();
        write_frame(&mut buf, &ServerMsg::Wait { ms: 250 }).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame::<_, ClientMsg>(&mut r).unwrap(), ClientMsg::Heartbeat);
        assert_eq!(
            read_frame::<_, ClientMsg>(&mut r).unwrap(),
            ClientMsg::Ready { fingerprint: 0xDEAD_BEEF, models_hash: 1 }
        );
        assert_eq!(read_frame::<_, ServerMsg>(&mut r).unwrap(), ServerMsg::Wait { ms: 250 });
        assert_eq!(
            read_frame::<_, ClientMsg>(&mut r),
            Err(FrameError::Closed),
            "EOF at boundary is a clean close"
        );
    }

    #[test]
    fn truncated_frames_are_distinguished_from_clean_closes() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ClientMsg::Heartbeat).unwrap();
        // Cut inside the payload.
        let mut r = &buf[..buf.len() - 2];
        assert_eq!(read_frame::<_, ClientMsg>(&mut r), Err(FrameError::Truncated));
        // Cut inside the length prefix.
        let mut r = &buf[..2];
        assert_eq!(read_frame::<_, ClientMsg>(&mut r), Err(FrameError::Truncated));
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        let mut r = huge.as_slice();
        assert_eq!(read_frame::<_, ClientMsg>(&mut r), Err(FrameError::Oversized(MAX_FRAME as u64 + 1)));
    }

    #[test]
    fn garbage_payload_is_a_decode_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(b"!!!!");
        let mut r = buf.as_slice();
        assert!(matches!(read_frame::<_, ClientMsg>(&mut r), Err(FrameError::Decode(_))));
    }
}
