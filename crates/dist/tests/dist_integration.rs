//! End-to-end distributed-execution guarantees: a coordinator plus
//! in-process workers produce a checkpoint byte-identical to a
//! single-process run of the same plan — including after a worker crash
//! mid-lease, a duplicate result, a partial resume, and a handshake
//! rejection.

use flowery_dist::{
    framing, work, ClientMsg, Coordinator, CoordinatorConfig, PlanSpec, ServerMsg, WorkerConfig, PROTO_VERSION,
};
use flowery_harness::{
    build_matrix, compact, matrix_fingerprint, run_units, CheckpointLog, GoldenCache, HarnessConfig, RunOptions,
    UnitRunner,
};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

fn plan() -> PlanSpec {
    PlanSpec {
        benches: vec!["crc32".into()],
        tiny: true,
        levels_permille: vec![1000],
        profile_trials: 0,
        profile_seed: 0,
        sources: Vec::new(),
    }
}

fn hcfg(trials: u64, batch: u64) -> HarnessConfig {
    HarnessConfig {
        batch_size: batch,
        max_trials: trials,
        min_trials: trials,
        ci_target: None,
        seed: 0xD157,
        threads: 2,
        ..Default::default()
    }
}

fn ccfg(checkpoint: &Path, lease_batches: usize) -> CoordinatorConfig {
    CoordinatorConfig {
        addr: "127.0.0.1:0".into(),
        checkpoint: checkpoint.to_path_buf(),
        resume: false,
        heartbeat_ms: 200,
        lease_batches,
        drain_grace_ms: 5000,
        threads: 2,
        verbose: false,
        baseline: None,
    }
}

fn wcfg(addr: &str) -> WorkerConfig {
    WorkerConfig { connect: addr.into(), threads: 2, ..Default::default() }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("flowery-dist-it-{}-{name}.jsonl", std::process::id()))
}

/// The single-process ground truth: same plan, same schedule, compacted.
fn reference_bytes(plan: &PlanSpec, cfg: &HarnessConfig, name: &str) -> (PathBuf, Vec<u8>) {
    let path = tmp(name);
    let units = build_matrix(&plan.to_spec(2));
    let log = CheckpointLog::create(&path, &cfg.header()).unwrap();
    let r = run_units(
        &units,
        cfg,
        &GoldenCache::new(),
        RunOptions { checkpoint: Some(&log), ..Default::default() },
    );
    assert!(!r.interrupted && r.error.is_none());
    drop(log);
    compact(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

#[test]
fn distributed_checkpoint_is_byte_identical_including_after_worker_death() {
    let plan = plan();
    let cfg = hcfg(120, 30); // 4 batches × 5 units = 20 batches
    let (_ref_path, want) = reference_bytes(&plan, &cfg, "death-ref");

    let ck = tmp("death-dist");
    let _ = std::fs::remove_file(&ck);
    let coord = Coordinator::bind(plan.clone(), cfg.clone(), ccfg(&ck, 4)).unwrap();
    let addr = coord.local_addr().unwrap().to_string();
    let run = std::thread::spawn(move || coord.run());

    // Phase 1: a lone worker that crashes two batches into its 4-batch
    // lease (hard socket close, no goodbye).
    let crash = work(WorkerConfig { die_after_batches: Some(2), max_reconnects: 0, ..wcfg(&addr) }).unwrap();
    assert!(crash.died);
    assert_eq!(crash.batches, 2);

    // Phase 2: two healthy workers drain the rest concurrently.
    let spawn = |addr: String| std::thread::spawn(move || work(wcfg(&addr)));
    let w1 = spawn(addr.clone());
    let w2 = spawn(addr);
    let s1 = w1.join().unwrap().unwrap();
    let s2 = w2.join().unwrap().unwrap();
    assert!(!s1.died && !s2.died);

    let dist = run.join().unwrap().unwrap();
    assert!(!dist.interrupted);
    assert_eq!(dist.report.units.len(), 5);
    assert!(dist.report.pending.is_empty());
    assert_eq!(
        dist.stats.batches_requeued, 2,
        "the crashed worker's unfinished lease batches were requeued"
    );
    assert_eq!(
        dist.stats.per_worker.iter().map(|w| w.batches).sum::<u64>(),
        20,
        "{:?}",
        dist.stats.per_worker
    );
    assert!(dist.stats.per_worker.iter().all(|w| !w.live));

    let got = std::fs::read(&ck).unwrap();
    assert_eq!(got, want, "distributed checkpoint differs from the single-process bytes");

    // The deterministic fold agrees with a plain local run of the plan.
    let units = build_matrix(&plan.to_spec(2));
    let local = run_units(&units, &cfg, &GoldenCache::new(), RunOptions::default());
    assert_eq!(
        serde_json::to_string(&dist.report.units).unwrap(),
        serde_json::to_string(&local.units).unwrap(),
        "distributed report differs from the local report"
    );

    // Re-serving the finished checkpoint with `--resume` replays it
    // without executing anything and leaves the bytes untouched.
    let coord =
        Coordinator::bind(plan.clone(), cfg.clone(), CoordinatorConfig { resume: true, ..ccfg(&ck, 4) }).unwrap();
    let dist = coord.run().unwrap();
    assert!(!dist.interrupted);
    assert_eq!(dist.report.units.len(), 5);
    assert_eq!(std::fs::read(&ck).unwrap(), want, "resume of a complete checkpoint must not change it");
}

#[test]
fn partial_checkpoint_resumes_to_identical_bytes() {
    let plan = plan();
    let cfg = hcfg(90, 30); // 3 batches × 5 units = 15 batches
    let (ref_path, want) = reference_bytes(&plan, &cfg, "resume-ref");

    // Truncate the finished checkpoint to header + 6 records — a campaign
    // killed mid-flight.
    let full = std::fs::read_to_string(&ref_path).unwrap();
    let partial: Vec<&str> = full.lines().take(7).collect();
    let ck = tmp("resume-dist");
    std::fs::write(&ck, format!("{}\n", partial.join("\n"))).unwrap();

    let coord = Coordinator::bind(plan, cfg, CoordinatorConfig { resume: true, ..ccfg(&ck, 2) }).unwrap();
    let addr = coord.local_addr().unwrap().to_string();
    let run = std::thread::spawn(move || coord.run());
    let s = work(wcfg(&addr)).unwrap();
    let dist = run.join().unwrap().unwrap();
    assert!(!dist.interrupted);
    assert_eq!(s.batches, 9, "only the missing batches are executed");
    assert_eq!(
        std::fs::read(&ck).unwrap(),
        want,
        "resumed checkpoint differs from the uninterrupted bytes"
    );
}

#[test]
fn duplicate_results_merge_idempotently_and_bad_handshakes_are_rejected() {
    let plan = plan();
    let cfg = hcfg(60, 30); // 2 batches × 5 units = 10 batches
    let (_ref_path, want) = reference_bytes(&plan, &cfg, "dup-ref");

    let ck = tmp("dup-dist");
    let _ = std::fs::remove_file(&ck);
    let coord = Coordinator::bind(plan.clone(), cfg.clone(), ccfg(&ck, 2)).unwrap();
    let addr = coord.local_addr().unwrap().to_string();
    let run = std::thread::spawn(move || coord.run());

    // A stale-version client is turned away before any lease.
    let mut s = TcpStream::connect(&addr).unwrap();
    framing::write_frame(&mut s, &ClientMsg::Hello { proto_version: PROTO_VERSION + 1 }).unwrap();
    assert!(matches!(framing::read_frame(&mut s).unwrap(), ServerMsg::Error { .. }));
    drop(s);

    // A divergent-build client (wrong fingerprint) is turned away too.
    let mut s = TcpStream::connect(&addr).unwrap();
    framing::write_frame(&mut s, &ClientMsg::Hello { proto_version: PROTO_VERSION }).unwrap();
    let ServerMsg::Welcome { .. } = framing::read_frame(&mut s).unwrap() else {
        panic!("expected welcome")
    };
    let models_hash = flowery_faultmodel::registry_hash();
    framing::write_frame(&mut s, &ClientMsg::Ready { fingerprint: 0, models_hash }).unwrap();
    assert!(matches!(framing::read_frame(&mut s).unwrap(), ServerMsg::Error { .. }));
    drop(s);

    // A client with a divergent fault-model registry (e.g. a pre-model
    // build, whose Ready defaults to hash 0) is refused before leasing.
    let mut s = TcpStream::connect(&addr).unwrap();
    framing::write_frame(&mut s, &ClientMsg::Hello { proto_version: PROTO_VERSION }).unwrap();
    let ServerMsg::Welcome { .. } = framing::read_frame(&mut s).unwrap() else {
        panic!("expected welcome")
    };
    let units = build_matrix(&plan.to_spec(2));
    let fingerprint = matrix_fingerprint(&units);
    framing::write_frame(&mut s, &ClientMsg::Ready { fingerprint, models_hash: 0 }).unwrap();
    let ServerMsg::Error { msg } = framing::read_frame(&mut s).unwrap() else {
        panic!("expected registry-mismatch error")
    };
    assert!(msg.contains("fault-model registry"), "{msg}");
    drop(s);

    // A hand-rolled client leases two batches, reports the first one
    // TWICE, then says goodbye — the duplicate must be dropped and the
    // unreported batch requeued.
    let mut s = TcpStream::connect(&addr).unwrap();
    framing::write_frame(&mut s, &ClientMsg::Hello { proto_version: PROTO_VERSION }).unwrap();
    let ServerMsg::Welcome { cfg: wire_cfg, .. } = framing::read_frame(&mut s).unwrap() else {
        panic!("expected welcome")
    };
    assert_eq!(wire_cfg, cfg, "schedule travels verbatim");
    framing::write_frame(&mut s, &ClientMsg::Ready { fingerprint, models_hash }).unwrap();
    framing::write_frame(&mut s, &ClientMsg::LeaseRequest).unwrap();
    let ServerMsg::Lease { unit, batches } = framing::read_frame(&mut s).unwrap() else {
        panic!("expected lease")
    };
    assert_eq!(batches.len(), 2);
    let ui = units.iter().position(|u| u.key == unit).unwrap();
    let cache = GoldenCache::new();
    let out = UnitRunner::new(&units[ui], &cache, &cfg).run_batch(&cfg, batches[0]);
    let msg = ClientMsg::Completed {
        record: out.to_record(unit, batches[0], cfg.effective_model()),
        ff_insts: out.ff_insts,
        exec_insts: out.exec_insts,
    };
    framing::write_frame(&mut s, &msg).unwrap();
    framing::write_frame(&mut s, &msg).unwrap();
    framing::write_frame(&mut s, &ClientMsg::Goodbye).unwrap();
    drop(s);

    // A real worker finishes the campaign (re-running the requeued batch).
    let s = work(wcfg(&addr)).unwrap();
    let dist = run.join().unwrap().unwrap();
    assert!(!dist.interrupted && dist.report.pending.is_empty());
    assert_eq!(s.batches, 9, "one batch was already merged by the raw client");
    assert!(dist.stats.batches_requeued >= 1, "{:?}", dist.stats);
    let by_id: Vec<u64> = dist.stats.per_worker.iter().map(|w| w.batches).collect();
    assert_eq!(by_id.iter().sum::<u64>(), 10, "duplicate was not double-counted: {by_id:?}");
    assert_eq!(std::fs::read(&ck).unwrap(), want);
}
