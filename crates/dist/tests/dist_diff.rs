//! Distributed incremental campaigns: a diff-mode coordinator plus
//! workers must produce the same composed report — and the same composed
//! checkpoint bytes — as a local `flowery diff` of the same plan and
//! baseline, with only the changed regions re-executed.

use flowery_dist::{serve_diff, work, Coordinator, CoordinatorConfig, PlanSpec, WorkerConfig};
use flowery_harness::checkpoint::write_canonical_full;
use flowery_harness::{build_matrix, run_diff, Baseline, GoldenCache, HarnessConfig};
use flowery_regions::Fate;
use std::collections::HashMap;
use std::path::PathBuf;

const SRC: &str = "int helper(int x) { return x * 3 + 1; } \
     int main() { int s = 0; int i; for (i = 0; i < 10; i = i + 1) { s = s + helper(i); } output(s); return 0; }";

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("flowery-dist-diff-{}-{name}.jsonl", std::process::id()))
}

fn plan(src: &str) -> PlanSpec {
    PlanSpec {
        benches: vec![],
        tiny: true,
        levels_permille: vec![1000],
        profile_trials: 0,
        profile_seed: 0,
        sources: vec![("probe".into(), src.into())],
    }
}

fn hcfg() -> HarnessConfig {
    HarnessConfig {
        batch_size: 25,
        max_trials: 100,
        min_trials: 25,
        ci_target: None,
        seed: 0xD1FF,
        threads: 2,
        ..Default::default()
    }
}

#[test]
fn distributed_diff_matches_local_diff_bit_for_bit() {
    let cfg = hcfg();
    let cache = GoldenCache::new();

    // Baseline campaign over the original source, written as a composed
    // region checkpoint (exactly what `flowery diff --out` produces).
    let base_units = build_matrix(&plan(SRC).to_spec(2));
    let empty = Baseline {
        header: cfg.header(),
        regions: HashMap::new(),
        pre_region: true,
    };
    let base = run_diff(&base_units, &cfg, &cache, &empty, &HashMap::new());
    let base_path = tmp("base");
    write_canonical_full(&base_path, &cfg.header(), &[], &base.records()).unwrap();

    // Edit helper only; the local diff is the ground truth.
    let edited = plan(&SRC.replace("x * 3 + 1", "x * 3 + 2"));
    let units = build_matrix(&edited.to_spec(2));
    let baseline = Baseline::load(&base_path, &cfg.header()).unwrap();
    let local = run_diff(&units, &cfg, &cache, &baseline, &HashMap::new());
    let local_path = tmp("local");
    write_canonical_full(&local_path, &cfg.header(), &[], &local.records()).unwrap();

    // The same diff, distributed: coordinator plans from the baseline,
    // two workers drain the scoped leases.
    let ck = tmp("composed");
    let _ = std::fs::remove_file(&ck);
    let ccfg = CoordinatorConfig {
        addr: "127.0.0.1:0".into(),
        checkpoint: ck.clone(),
        heartbeat_ms: 200,
        lease_batches: 2,
        drain_grace_ms: 5000,
        threads: 2,
        baseline: Some(base_path.clone()),
        ..Default::default()
    };
    let coord = Coordinator::bind(edited.clone(), cfg.clone(), ccfg).unwrap();
    let addr = coord.local_addr().unwrap().to_string();
    let run = std::thread::spawn(move || coord.run_diff());
    let spawn = |addr: String| {
        std::thread::spawn(move || work(WorkerConfig { connect: addr, threads: 2, ..Default::default() }))
    };
    let w1 = spawn(addr.clone());
    let w2 = spawn(addr);
    let s1 = w1.join().unwrap().unwrap();
    let s2 = w2.join().unwrap().unwrap();
    let dist = run.join().unwrap().unwrap();

    assert!(!dist.interrupted);
    assert_eq!(dist.report.units, local.units, "distributed diff diverged from the local diff");
    assert_eq!(
        std::fs::read(&ck).unwrap(),
        std::fs::read(&local_path).unwrap(),
        "composed checkpoint differs from the local bytes"
    );
    // Only the edited function re-ran; everything else was reused without
    // a single remote trial.
    for u in &dist.report.units {
        let helper = u.regions.iter().find(|r| r.name == "helper").unwrap();
        assert_eq!(helper.fate, Fate::Rerun, "{}", u.key);
        assert!(
            u.regions.iter().filter(|r| r.name != "helper").all(|r| r.fate == Fate::Reused),
            "{}",
            u.key
        );
        assert!(u.trials_saved > 0, "{}", u.key);
    }
    let total: u64 = s1.batches + s2.batches;
    let expected: u64 = dist
        .report
        .units
        .iter()
        .flat_map(|u| &u.regions)
        .filter(|r| r.fate != Fate::Reused)
        .map(|r| r.planned_trials.div_ceil(cfg.batch_size))
        .sum();
    assert_eq!(total, expected, "workers ran exactly the changed regions' batches");

    // Re-serving the composed checkpoint as the next baseline finds
    // nothing to do: the coordinator completes without any worker.
    let ccfg = CoordinatorConfig {
        addr: "127.0.0.1:0".into(),
        checkpoint: tmp("composed2"),
        heartbeat_ms: 200,
        drain_grace_ms: 1000,
        threads: 2,
        baseline: Some(ck),
        ..Default::default()
    };
    let again = serve_diff(edited, cfg, ccfg).unwrap();
    assert!(!again.interrupted);
    assert!(again.report.units.iter().all(|u| u.trials_run == 0));
}
