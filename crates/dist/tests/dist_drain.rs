//! Graceful-drain guarantee, isolated in its own test binary because it
//! drives the process-global shutdown flag: a requested shutdown
//! (Ctrl-C) mid-campaign flushes a resumable checkpoint, and resuming
//! it finishes with bytes identical to an uninterrupted run.

use flowery_dist::{work, Coordinator, CoordinatorConfig, PlanSpec, WorkerConfig};
use flowery_harness::{
    build_matrix, compact, run_units, shutdown, CheckpointLog, GoldenCache, HarnessConfig, RunOptions,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("flowery-dist-drain-{}-{name}.jsonl", std::process::id()))
}

#[test]
fn requested_shutdown_drains_to_a_resumable_checkpoint() {
    let plan = PlanSpec {
        benches: vec!["crc32".into()],
        tiny: true,
        levels_permille: vec![1000],
        profile_trials: 0,
        profile_seed: 0,
        sources: Vec::new(),
    };
    // 40 batches × 5 units: long enough that the campaign is mid-flight
    // when the shutdown lands, short enough to finish after resume.
    let cfg = HarnessConfig {
        batch_size: 30,
        max_trials: 1200,
        min_trials: 1200,
        ci_target: None,
        seed: 0xD157,
        threads: 2,
        ..Default::default()
    };

    // Uninterrupted single-process reference.
    let ref_path = tmp("ref");
    let units = build_matrix(&plan.to_spec(2));
    let log = CheckpointLog::create(&ref_path, &cfg.header()).unwrap();
    let r = run_units(
        &units,
        &cfg,
        &GoldenCache::new(),
        RunOptions { checkpoint: Some(&log), ..Default::default() },
    );
    assert!(!r.interrupted);
    drop(log);
    compact(&ref_path).unwrap();
    let want = std::fs::read(&ref_path).unwrap();

    let ck = tmp("dist");
    let _ = std::fs::remove_file(&ck);
    let ccfg = CoordinatorConfig {
        addr: "127.0.0.1:0".into(),
        checkpoint: ck.clone(),
        resume: false,
        heartbeat_ms: 200,
        lease_batches: 2,
        drain_grace_ms: 5000,
        threads: 2,
        verbose: false,
        baseline: None,
    };

    shutdown::reset();
    let coord = Coordinator::bind(plan.clone(), cfg.clone(), ccfg.clone()).unwrap();
    let addr = coord.local_addr().unwrap().to_string();
    let run = std::thread::spawn(move || coord.run());
    let wrk = {
        let addr = addr.clone();
        std::thread::spawn(move || work(WorkerConfig { connect: addr, threads: 2, ..Default::default() }))
    };

    // "Ctrl-C" once some batches have landed in the checkpoint.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let lines = std::fs::read_to_string(&ck).map(|s| s.lines().count()).unwrap_or(0);
        if lines >= 4 {
            break; // header + a few records: mid-campaign
        }
        assert!(Instant::now() < deadline, "no progress before the simulated Ctrl-C");
        std::thread::sleep(Duration::from_millis(5));
    }
    shutdown::request();

    let s = wrk.join().unwrap().unwrap();
    assert!(!s.died, "worker must exit via the coordinator's shutdown");
    let dist = run.join().unwrap().unwrap();
    shutdown::reset();
    assert!(dist.interrupted, "the drain must report the campaign as unfinished");
    assert!(!dist.report.pending.is_empty());

    // The drained checkpoint is canonical (compacted on drain): every
    // line, header included, appears verbatim in the uninterrupted run's
    // file — records are pure, so partial progress is a strict subset.
    let drained = std::fs::read_to_string(&ck).unwrap();
    let full: std::collections::HashSet<&str> = std::str::from_utf8(&want).unwrap().lines().collect();
    for line in drained.lines() {
        assert!(full.contains(line), "drained line not in the full run: {line}");
    }
    assert!(drained.lines().count() < full.len(), "the campaign really was interrupted");

    // Resume with a fresh coordinator + worker and finish.
    let coord = Coordinator::bind(plan, cfg, CoordinatorConfig { resume: true, ..ccfg }).unwrap();
    let addr = coord.local_addr().unwrap().to_string();
    let run = std::thread::spawn(move || coord.run());
    let s2 = work(WorkerConfig { connect: addr, threads: 2, ..Default::default() }).unwrap();
    let dist = run.join().unwrap().unwrap();
    assert!(!dist.interrupted);
    assert_eq!(dist.report.units.len(), 5);
    assert_eq!(s.batches + s2.batches, 200, "every batch ran exactly once across the interrupt");
    assert_eq!(
        std::fs::read(&ck).unwrap(),
        want,
        "resumed checkpoint differs from the uninterrupted bytes"
    );
}
