//! Extension experiment: assembly-level hardening on top of Flowery.
//!
//! The paper stops at IR-level patches, noting (§6.3/§8) that call and
//! mapping penetration "can be mitigated at assembly level if the
//! corresponding compiler for transformation and analysis is available".
//! This substrate *is* such a compiler, so [`flowery_backend::harden`]
//! implements the read-back checks and this module measures how much of
//! the remaining gap they close.

use crate::config::ExperimentConfig;
use flowery_backend::{compile_module, harden_program, HardenConfig};
use flowery_inject::{run_asm_campaign, run_ir_campaign, Coverage};
use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use flowery_workloads::workload;
use serde::{Deserialize, Serialize};

/// One benchmark's coverage ladder at full protection, assembly level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HardeningRow {
    pub benchmark: String,
    /// Plain instruction duplication.
    pub id_pct: f64,
    /// ID + the three Flowery patches.
    pub flowery_pct: f64,
    /// ID + Flowery + assembly-level read-back hardening.
    pub hardened_pct: f64,
    /// The IR-level estimate (upper bound, ~100%).
    pub id_ir_pct: f64,
    /// Dynamic-instruction overhead of hardening over Flowery.
    pub harden_overhead: f64,
    /// Read-back checks inserted.
    pub checks: usize,
}

/// Run the hardening ladder for the given benchmarks (all 16 when empty).
pub fn asm_hardening_study(names: &[&str], cfg: &ExperimentConfig) -> Vec<HardeningRow> {
    let names: Vec<&str> = if names.is_empty() {
        flowery_workloads::NAMES.to_vec()
    } else {
        names.to_vec()
    };
    let camp = cfg.campaign();
    let mut rows = Vec::new();
    for name in names {
        if cfg.verbose {
            eprintln!("[harden] {name}");
        }
        let raw = workload(name, cfg.scale).compile();
        let mut id = raw.clone();
        let plan = ProtectionPlan::full(&id);
        duplicate_module(&mut id, &plan, &DupConfig::default());
        let mut fl = id.clone();
        apply_flowery(&mut fl, &FloweryConfig::default());

        let raw_prog = compile_module(&raw, &cfg.backend);
        let id_prog = compile_module(&id, &cfg.backend);
        let fl_prog = compile_module(&fl, &cfg.backend);
        let (hd_prog, hstats) = harden_program(&fl_prog, &HardenConfig::default());

        let raw_ir = run_ir_campaign(&raw, &camp);
        let id_ir = run_ir_campaign(&id, &camp);
        let raw_asm = run_asm_campaign(&raw, &raw_prog, &camp);
        let id_asm = run_asm_campaign(&id, &id_prog, &camp);
        let fl_asm = run_asm_campaign(&fl, &fl_prog, &camp);
        let hd_asm = run_asm_campaign(&fl, &hd_prog, &camp);

        rows.push(HardeningRow {
            benchmark: name.to_string(),
            id_pct: Coverage::compute(&raw_asm.counts, &id_asm.counts).percent(),
            flowery_pct: Coverage::compute(&raw_asm.counts, &fl_asm.counts).percent(),
            hardened_pct: Coverage::compute(&raw_asm.counts, &hd_asm.counts).percent(),
            id_ir_pct: Coverage::compute(&raw_ir.counts, &id_ir.counts).percent(),
            harden_overhead: flowery_inject::relative_overhead(fl_asm.golden_dyn_insts, hd_asm.golden_dyn_insts),
            checks: hstats.total(),
        });
    }
    rows
}

/// Render the hardening ladder.
pub fn render_hardening(rows: &[HardeningRow]) -> String {
    let body = flowery_analysis::render_table(
        &["Benchmark", "ID", "Flowery", "+AsmHarden", "ID-IR bound", "HD ovh", "checks"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.clone(),
                    format!("{:.2}%", r.id_pct),
                    format!("{:.2}%", r.flowery_pct),
                    format!("{:.2}%", r.hardened_pct),
                    format!("{:.2}%", r.id_ir_pct),
                    format!("{:+.1}%", r.harden_overhead * 100.0),
                    r.checks.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let avg = |f: fn(&HardeningRow) -> f64| -> f64 {
        if rows.is_empty() {
            0.0
        } else {
            rows.iter().map(f).sum::<f64>() / rows.len() as f64
        }
    };
    format!(
        "{body}\nfull protection, assembly level: ID {:.2}% -> Flowery {:.2}% -> +AsmHarden {:.2}%\n",
        avg(|r| r.id_pct),
        avg(|r| r.flowery_pct),
        avg(|r| r.hardened_pct),
    )
}

// ---------------------------------------------------------------- multi-bit

/// One benchmark's single-bit vs double-bit comparison (the emerging fault
/// model the paper cites in §2.2 but leaves to future work).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiBitRow {
    pub benchmark: String,
    /// Raw SDC rates.
    pub raw_sdc_single: f64,
    pub raw_sdc_double: f64,
    /// Full-protection assembly coverage under each model.
    pub cov_single_pct: f64,
    pub cov_double_pct: f64,
}

/// Does the cross-layer protection story survive double-bit faults?
pub fn multi_bit_study(names: &[&str], cfg: &ExperimentConfig) -> Vec<MultiBitRow> {
    let names: Vec<&str> = if names.is_empty() {
        vec!["is", "quicksort"]
    } else {
        names.to_vec()
    };
    let single = cfg.campaign();
    let double = flowery_inject::CampaignConfig { double_bit: true, ..single.clone() };
    let mut rows = Vec::new();
    for name in names {
        if cfg.verbose {
            eprintln!("[multibit] {name}");
        }
        let raw = workload(name, cfg.scale).compile();
        let mut id = raw.clone();
        let plan = ProtectionPlan::full(&id);
        duplicate_module(&mut id, &plan, &DupConfig::default());
        apply_flowery(&mut id, &FloweryConfig::default());
        let raw_prog = compile_module(&raw, &cfg.backend);
        let id_prog = compile_module(&id, &cfg.backend);

        let raw_s = run_asm_campaign(&raw, &raw_prog, &single);
        let raw_d = run_asm_campaign(&raw, &raw_prog, &double);
        let id_s = run_asm_campaign(&id, &id_prog, &single);
        let id_d = run_asm_campaign(&id, &id_prog, &double);
        rows.push(MultiBitRow {
            benchmark: name.to_string(),
            raw_sdc_single: raw_s.counts.sdc_rate(),
            raw_sdc_double: raw_d.counts.sdc_rate(),
            cov_single_pct: Coverage::compute(&raw_s.counts, &id_s.counts).percent(),
            cov_double_pct: Coverage::compute(&raw_d.counts, &id_d.counts).percent(),
        });
    }
    rows
}

/// Render the multi-bit comparison.
pub fn render_multi_bit(rows: &[MultiBitRow]) -> String {
    flowery_analysis::render_table(
        &["Benchmark", "raw SDC 1-bit", "raw SDC 2-bit", "Flowery cov 1-bit", "Flowery cov 2-bit"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.clone(),
                    format!("{:.2}%", r.raw_sdc_single * 100.0),
                    format!("{:.2}%", r.raw_sdc_double * 100.0),
                    format!("{:.2}%", r.cov_single_pct),
                    format!("{:.2}%", r.cov_double_pct),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardening_ladder_improves_coverage() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 400;
        let rows = asm_hardening_study(&["quicksort"], &cfg);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.checks > 0);
        assert!(
            r.hardened_pct >= r.flowery_pct,
            "hardening must not reduce coverage: {} vs {}",
            r.hardened_pct,
            r.flowery_pct
        );
        assert!(r.flowery_pct > r.id_pct, "{r:?}");
        assert!(r.harden_overhead > 0.0 && r.harden_overhead < 1.0, "{r:?}");
        let text = render_hardening(&rows);
        assert!(text.contains("+AsmHarden"), "{text}");
    }

    #[test]
    fn double_bit_faults_keep_the_story() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = 300;
        let rows = multi_bit_study(&["is"], &cfg);
        let r = &rows[0];
        assert!(r.raw_sdc_double > 0.0);
        assert!(r.cov_double_pct > 30.0, "protection still works under 2-bit faults: {r:?}");
        assert!(render_multi_bit(&rows).contains("2-bit"));
    }
}
