//! Experiment configuration shared by every figure/table pipeline.

use flowery_backend::BackendConfig;
use flowery_workloads::Scale;
use serde::{Deserialize, Serialize};

/// Full study configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Workload input scale.
    #[serde(skip)]
    pub scale: Scale,
    /// Fault-injection campaigns per configuration (paper: 3,000).
    pub trials: u64,
    /// Campaigns used to estimate per-instruction SDC probabilities for
    /// selective protection.
    pub profile_trials: u64,
    /// Protection levels (paper: 30%, 50%, 70%, 100%).
    pub levels: Vec<f64>,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for campaigns (0 = all cores).
    pub threads: usize,
    /// Trials per scheduling batch of the campaign harness.
    pub batch_size: u64,
    /// Adaptive stopping: target half-width of the 95% Wilson CI on each
    /// unit's SDC rate. `None` runs the full `trials` everywhere.
    pub ci_target: Option<f64>,
    /// Floor below which adaptive stopping never fires.
    pub min_trials: u64,
    /// Backend knobs (ablation axes).
    #[serde(skip)]
    pub backend: BackendConfig,
    /// Fast-forward trials from golden-run snapshots (bit-identical
    /// results; default on — turn off to measure the speedup or to pin
    /// down a suspected snapshot divergence).
    pub snapshots: bool,
    /// Byte budget for each snapshot set's page overlays (`None` =
    /// unbounded): capture runs widen their cadence and drop every other
    /// snapshot while over budget, bounding memory on store-heavy
    /// workloads at some fast-forward granularity cost.
    pub snapshot_budget: Option<u64>,
    /// Print progress to stderr.
    pub verbose: bool,
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig {
            scale: Scale::Standard,
            trials: 3000,
            profile_trials: 1200,
            levels: vec![0.3, 0.5, 0.7, 1.0],
            seed: 0x51C2_3001,
            threads: 0,
            batch_size: 250,
            ci_target: None,
            min_trials: 500,
            backend: BackendConfig::default(),
            snapshots: true,
            snapshot_budget: None,
            verbose: false,
        }
    }
}

impl ExperimentConfig {
    /// A cheap configuration for tests and Criterion benches: fewer trials,
    /// same protocol.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig { trials: 250, profile_trials: 150, ..Default::default() }
    }

    /// Even cheaper: single level, minimal trials (smoke tests).
    pub fn smoke() -> ExperimentConfig {
        ExperimentConfig {
            trials: 120,
            profile_trials: 80,
            levels: vec![1.0],
            scale: Scale::Tiny,
            ..Default::default()
        }
    }

    /// Harness parameters for the campaign engine.
    pub fn harness(&self) -> flowery_harness::HarnessConfig {
        flowery_harness::HarnessConfig {
            batch_size: self.batch_size.clamp(1, self.trials.max(1)),
            max_trials: self.trials,
            min_trials: self.min_trials.min(self.trials),
            ci_target: self.ci_target,
            seed: self.seed,
            threads: self.threads,
            double_bit: false,
            snapshots: self.snapshots,
            exec: self.exec(),
            ..Default::default()
        }
    }

    fn exec(&self) -> flowery_ir::interp::ExecConfig {
        flowery_ir::interp::ExecConfig { snapshot_budget: self.snapshot_budget, ..Default::default() }
    }

    pub(crate) fn campaign(&self) -> flowery_inject::CampaignConfig {
        flowery_inject::CampaignConfig {
            trials: self.trials,
            seed: self.seed,
            threads: self.threads,
            double_bit: false,
            snapshots: self.snapshots,
            golden_profile: false,
            exec: self.exec(),
            ..Default::default()
        }
    }

    pub(crate) fn profile_campaign(&self) -> flowery_inject::CampaignConfig {
        flowery_inject::CampaignConfig {
            trials: self.profile_trials,
            seed: self.seed ^ 0x9E37_79B9,
            threads: self.threads,
            double_bit: false,
            snapshots: self.snapshots,
            golden_profile: false,
            exec: self.exec(),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_protocol() {
        let c = ExperimentConfig::default();
        assert_eq!(c.trials, 3000);
        assert_eq!(c.levels, vec![0.3, 0.5, 0.7, 1.0]);
    }

    #[test]
    fn quick_is_cheaper() {
        assert!(ExperimentConfig::quick().trials < ExperimentConfig::default().trials);
        assert_eq!(ExperimentConfig::smoke().levels, vec![1.0]);
    }
}
