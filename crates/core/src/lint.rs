//! Lint-vs-campaign entry point: run the static penetration analyzer over
//! one benchmark variant and (optionally) cross-validate the predictions
//! against a fresh injection campaign — `flowery lint` is a thin shell
//! around [`run_lint`].

use crate::config::ExperimentConfig;
use flowery_analysis::statline::{
    analyze_bits, cross_validate, lint_module, predict_program, Finding, StaticReport, Validation,
};
use flowery_backend::{compile_module, BackendConfig};
use flowery_inject::{profile_sdc, run_asm_campaign, CampaignConfig};
use flowery_ir::Module;
use flowery_passes::{apply_flowery, choose_protection, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use serde::{Deserialize, Serialize};

/// Which protection pipeline to lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PassConfig {
    /// Unprotected baseline.
    Raw,
    /// Instruction duplication only.
    Id,
    /// Instruction duplication + the three Flowery patches.
    Flowery,
}

impl PassConfig {
    pub fn parse(s: &str) -> Option<PassConfig> {
        match s {
            "raw" => Some(PassConfig::Raw),
            "id" => Some(PassConfig::Id),
            "flowery" => Some(PassConfig::Flowery),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            PassConfig::Raw => "raw",
            PassConfig::Id => "id",
            PassConfig::Flowery => "flowery",
        }
    }
}

/// Everything one lint run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LintOutcome {
    pub bench: String,
    pub pass_config: PassConfig,
    pub level: f64,
    /// Layer-1 machine-level predictions.
    pub report: StaticReport,
    /// Layer-2 IR invariant findings.
    pub findings: Vec<Finding>,
    /// Cross-validation against an injection campaign (`--validate`).
    pub validation: Option<Validation>,
    /// Bit-lattice verdicts (the prune table `flowery campaign
    /// --static-prune` consumes). Always computed — the analysis is pure
    /// and cheap; `Option` only so pre-bits JSON keeps deserializing.
    #[serde(default)]
    pub bits: Option<BitsSummary>,
}

/// Per-site bit-mask verdicts of one linted program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BitsSummary {
    /// Injectable sites the bit table covers.
    pub sites: u32,
    /// Proven-masked (site, bit) pairs across the whole program.
    pub proven_pairs: u64,
    /// Mean vulnerable-bit fraction across sites (1.0 = nothing proven).
    pub mean_vulnerable: f64,
    /// One entry per injectable site, in program order.
    pub masks: Vec<SiteBits>,
}

/// The bit verdict of one injectable site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteBits {
    /// Program index of the site.
    pub idx: u32,
    /// Sampled-bit families proven masked (bit `b` set = family `b`).
    pub proven_masked: u64,
    /// Complement: families the analysis cannot prove benign.
    pub vulnerable: u64,
}

/// Protect `raw` per `(pass, level)`, run both lint layers, and optionally
/// cross-validate against a `validate_trials`-shot injection campaign.
///
/// A partial `level` (< 1.0) selects instructions with an SDC profile of
/// `cfg.profile_campaign()` trials, exactly like the experiment pipeline.
pub fn run_lint(
    bench: &str,
    raw: &Module,
    pass: PassConfig,
    level: f64,
    cfg: &ExperimentConfig,
    validate_trials: Option<u64>,
) -> LintOutcome {
    let mut m = raw.clone();
    if pass != PassConfig::Raw {
        let plan = if (level - 1.0).abs() < 1e-9 {
            ProtectionPlan::full(&m)
        } else {
            let profile = profile_sdc(&m, &cfg.profile_campaign());
            choose_protection(&m, &profile, level)
        };
        duplicate_module(&mut m, &plan, &DupConfig::default());
        if pass == PassConfig::Flowery {
            apply_flowery(&mut m, &FloweryConfig::default());
        }
    }
    let bcfg = BackendConfig::default();
    let prog = compile_module(&m, &bcfg);
    let report = predict_program(&m, &prog, bcfg.fold_compares);
    let findings = lint_module(&m);
    let validation = validate_trials.map(|trials| {
        let camp = run_asm_campaign(&m, &prog, &CampaignConfig::with_trials(trials));
        cross_validate(&m, &prog, &report, &camp.sdc_insts, bcfg.fold_compares)
    });
    let table = analyze_bits(&m, &prog);
    let masks: Vec<SiteBits> = prog
        .insts
        .iter()
        .enumerate()
        .filter(|(_, inst)| inst.kind.is_fault_site())
        .map(|(idx, _)| {
            let v = &table.verdicts[idx];
            SiteBits {
                idx: idx as u32,
                proven_masked: v.proven_masked,
                vulnerable: v.vulnerable,
            }
        })
        .collect();
    let bits = Some(BitsSummary {
        sites: table.sites,
        proven_pairs: table.proven_pairs,
        mean_vulnerable: table.mean_vulnerable(),
        masks,
    });
    LintOutcome {
        bench: bench.to_string(),
        pass_config: pass,
        level,
        report,
        findings,
        validation,
        bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int main() { int s = 0; int i; for (i = 0; i < 20; i = i + 1) {\n\
                       s = s + i * 3; } output(s); return s; }";

    #[test]
    fn pass_config_parse_round_trips() {
        for p in [PassConfig::Raw, PassConfig::Id, PassConfig::Flowery] {
            assert_eq!(PassConfig::parse(p.name()), Some(p));
        }
        assert_eq!(PassConfig::parse("bogus"), None);
    }

    #[test]
    fn run_lint_cross_validates() {
        let raw = flowery_lang::compile("t", SRC).unwrap();
        let cfg = ExperimentConfig::smoke();
        let out = run_lint("t", &raw, PassConfig::Id, 1.0, &cfg, Some(400));
        assert!(out.report.sites > 0);
        assert!(out.report.protected > 0, "full duplication proves sites");
        let v = out.validation.as_ref().expect("validation requested");
        assert!(v.overall_recall() >= 0.9, "soundness on the smoke program: {:.2}", v.overall_recall());
        let bits = out.bits.as_ref().expect("bit table always computed");
        assert_eq!(bits.masks.len() as u32, bits.sites);
        assert!(bits.proven_pairs > 0, "some (site, bit) pairs prove masked");
        assert_eq!(
            bits.proven_pairs,
            bits.masks.iter().map(|s| u64::from(s.proven_masked.count_ones())).sum::<u64>(),
            "summary tallies the per-site masks"
        );
        // The outcome must serialize (the CLI's --format json path).
        let json = serde_json::to_string(&out).unwrap();
        assert!(json.contains("\"bench\""));
        assert!(json.contains("\"proven_masked\""), "JSON carries the per-site bit masks");
    }

    #[test]
    fn run_lint_partial_level_profiles() {
        let raw = flowery_lang::compile("t", SRC).unwrap();
        let cfg = ExperimentConfig::smoke();
        let half = run_lint("t", &raw, PassConfig::Id, 0.5, &cfg, None);
        assert!(half.report.sites > 0);
        assert!(half.report.protected > 0, "the selected half is provably covered");
        assert!(!half.report.flagged.is_empty(), "the unselected half stays exposed");
        let frac = half.report.flagged.len() as f64 / half.report.sites as f64;
        let full = run_lint("t", &raw, PassConfig::Id, 1.0, &cfg, None);
        let full_frac = full.report.flagged.len() as f64 / full.report.sites as f64;
        assert!(
            frac >= full_frac,
            "less protection cannot flag a smaller fraction: {frac:.2} vs {full_frac:.2}"
        );
    }
}
