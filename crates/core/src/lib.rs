//! # flowery-core
//!
//! The experiment pipelines that reproduce every table and figure of
//! *"Demystifying and Mitigating Cross-Layer Deficiencies of Soft Error
//! Protection in Instruction Duplication"* (SC'23):
//!
//! - [`pipeline::run_study`] runs the complete cross-layer study
//!   (compile → profile → protect → inject at both layers) for any subset
//!   of the 16 benchmarks;
//! - [`figures`] extracts and renders Table 1, Figures 2/3/17, and the
//!   §7.2/§7.3 measurements from the results.
//!
//! ```no_run
//! use flowery_core::{ExperimentConfig, run_study, figures};
//! let cfg = ExperimentConfig::quick();
//! let study = run_study(&["quicksort"], &cfg);
//! println!("{}", figures::render_fig17(&figures::fig17(&study)));
//! ```

pub mod ablation;
pub mod config;
pub mod extension;
pub mod figures;
pub mod lint;
pub mod pipeline;

pub use config::ExperimentConfig;
pub use lint::{run_lint, BitsSummary, LintOutcome, PassConfig, SiteBits};
pub use pipeline::{
    prepare, run_bench, run_prepared, run_study, BenchResults, LevelResults, PreparedBench, StudyResults,
};

// Re-export the layer crates for downstream users of the facade.
pub use flowery_analysis as analysis;
pub use flowery_backend as backend;
pub use flowery_inject as inject;
pub use flowery_ir as ir;
pub use flowery_lang as lang;
pub use flowery_passes as passes;
pub use flowery_workloads as workloads;
