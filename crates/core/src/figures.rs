//! Generators for every table and figure in the paper's evaluation.
//!
//! | artefact | paper | here |
//! |----------|-------|------|
//! | Table 1  | benchmark inventory + dynamic instruction counts | [`table1`] |
//! | Figure 2 | ID coverage at IR vs assembly, 4 protection levels | [`fig2`] |
//! | Figure 3 | penetration root-cause distribution | [`fig3`] |
//! | Figure 17| Flowery vs ID-Assembly vs ID-IR coverage | [`fig17`] |
//! | §7.2     | Flowery runtime overhead over ID | [`overhead`] |
//! | §7.3     | Flowery pass execution time | [`pass_time`] |

use crate::config::ExperimentConfig;
use crate::pipeline::{prepare, StudyResults};
use flowery_analysis::{render_table, Penetration, PenetrationBreakdown};
use flowery_backend::{compile_module, Machine};
use flowery_ir::interp::{ExecConfig, Interpreter};
use flowery_workloads::{all_workloads, workload};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------- Table 1

/// One Table 1 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    pub benchmark: String,
    pub suite: String,
    pub domain: String,
    /// Dynamic IR instructions of the golden run.
    pub di_ir: u64,
    /// Dynamic assembly instructions of the golden run.
    pub di_asm: u64,
}

/// Regenerate Table 1 (benchmark inventory with dynamic instruction
/// counts; ours are simulation-scale, see DESIGN.md).
pub fn table1(cfg: &ExperimentConfig) -> Vec<Table1Row> {
    all_workloads(cfg.scale)
        .iter()
        .map(|w| {
            let m = w.compile();
            let ir = Interpreter::new(&m).run(&ExecConfig::default(), None);
            let prog = compile_module(&m, &cfg.backend);
            let asm = Machine::new(&m, &prog).run(&ExecConfig::default(), None);
            Table1Row {
                benchmark: w.name.to_string(),
                suite: w.suite.name().to_string(),
                domain: w.domain.to_string(),
                di_ir: ir.dyn_insts,
                di_asm: asm.dyn_insts,
            }
        })
        .collect()
}

/// Render Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    render_table(
        &["Benchmark", "Suite", "Domain", "DI (IR)", "DI (asm)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.clone(),
                    r.suite.clone(),
                    r.domain.clone(),
                    r.di_ir.to_string(),
                    r.di_asm.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

// ---------------------------------------------------------------- Figure 2

/// One Figure 2 cell: ID coverage at both layers for (benchmark, level).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Row {
    pub benchmark: String,
    pub level: f64,
    pub id_ir_pct: f64,
    pub id_asm_pct: f64,
    pub gap_pct: f64,
}

/// Extract Figure 2 from study results.
pub fn fig2(study: &StudyResults) -> Vec<Fig2Row> {
    let mut rows = Vec::new();
    for b in &study.benches {
        for l in &b.levels {
            rows.push(Fig2Row {
                benchmark: b.name.clone(),
                level: l.level,
                id_ir_pct: l.id_ir.percent(),
                id_asm_pct: l.id_asm.percent(),
                gap_pct: l.id_ir.percent() - l.id_asm.percent(),
            });
        }
    }
    rows
}

/// Render Figure 2 as a table plus the headline average gap.
pub fn render_fig2(rows: &[Fig2Row]) -> String {
    let body = render_table(
        &["Benchmark", "Level", "ID-IR", "ID-Assembly", "Gap"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.clone(),
                    format!("{:.0}%", r.level * 100.0),
                    format!("{:.2}%", r.id_ir_pct),
                    format!("{:.2}%", r.id_asm_pct),
                    format!("{:+.2}%", r.gap_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let avg: f64 = if rows.is_empty() {
        0.0
    } else {
        rows.iter().map(|r| r.gap_pct).sum::<f64>() / rows.len() as f64
    };
    format!("{body}\naverage IR-vs-assembly coverage gap: {avg:.2}% (paper: 31.21%)\n")
}

// ---------------------------------------------------------------- Figure 3

/// Figure 3: the penetration distribution over deficiency cases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    pub aggregate: PenetrationBreakdown,
    pub per_bench: Vec<(String, PenetrationBreakdown)>,
}

/// Extract Figure 3 (classification of full-protection assembly SDCs).
pub fn fig3(study: &StudyResults) -> Fig3 {
    Fig3 {
        aggregate: study.aggregate_rootcause(),
        per_bench: study
            .benches
            .iter()
            .map(|b| (b.name.clone(), b.full_level().rootcause.clone()))
            .collect(),
    }
}

/// Render the per-benchmark penetration shares (the paper discusses how
/// category prevalence varies across programs, e.g. kNN vs BFS store
/// shares in §5.2).
pub fn render_fig3_per_bench(f: &Fig3) -> String {
    flowery_analysis::render_table(
        &["Benchmark", "store%", "branch%", "cmp%", "call%", "map%", "cases"],
        &f.per_bench
            .iter()
            .map(|(name, b)| {
                vec![
                    name.clone(),
                    format!("{:.1}", b.percent(Penetration::Store)),
                    format!("{:.1}", b.percent(Penetration::Branch)),
                    format!("{:.1}", b.percent(Penetration::Comparison)),
                    format!("{:.1}", b.percent(Penetration::Call)),
                    format!("{:.1}", b.percent(Penetration::Mapping)),
                    b.deficiency_total().to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Render Figure 3 with the paper's reference distribution alongside.
pub fn render_fig3(f: &Fig3) -> String {
    let paper = [
        (Penetration::Store, 39.1),
        (Penetration::Branch, 35.7),
        (Penetration::Comparison, 19.7),
        (Penetration::Call, 3.1),
        (Penetration::Mapping, 2.5),
    ];
    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|(p, ref_pct)| {
            vec![
                p.name().to_string(),
                f.aggregate.get(*p).to_string(),
                format!("{:.2}%", f.aggregate.percent(*p)),
                format!("{ref_pct:.1}%"),
            ]
        })
        .collect();
    let mut s = render_table(&["Category", "Cases", "Measured", "Paper"], &rows);
    s.push_str(&format!(
        "deficiency cases: {} (of {} SDCs)\n",
        f.aggregate.deficiency_total(),
        f.aggregate.total()
    ));
    s
}

// ---------------------------------------------------------------- Figure 17

/// One Figure 17 cell: the three coverage curves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig17Row {
    pub benchmark: String,
    pub level: f64,
    pub id_ir_pct: f64,
    pub id_asm_pct: f64,
    pub flowery_asm_pct: f64,
}

/// Extract Figure 17 from study results.
pub fn fig17(study: &StudyResults) -> Vec<Fig17Row> {
    let mut rows = Vec::new();
    for b in &study.benches {
        for l in &b.levels {
            rows.push(Fig17Row {
                benchmark: b.name.clone(),
                level: l.level,
                id_ir_pct: l.id_ir.percent(),
                id_asm_pct: l.id_asm.percent(),
                flowery_asm_pct: l.flowery_asm.percent(),
            });
        }
    }
    rows
}

/// Render Figure 17 plus the full-protection averages the paper reports.
pub fn render_fig17(rows: &[Fig17Row]) -> String {
    let body = render_table(
        &["Benchmark", "Level", "ID-IR", "ID-Assembly", "Flowery"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.clone(),
                    format!("{:.0}%", r.level * 100.0),
                    format!("{:.2}%", r.id_ir_pct),
                    format!("{:.2}%", r.id_asm_pct),
                    format!("{:.2}%", r.flowery_asm_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let full: Vec<&Fig17Row> = rows.iter().filter(|r| (r.level - 1.0).abs() < 1e-9).collect();
    if full.is_empty() {
        return body;
    }
    let avg_id: f64 = full.iter().map(|r| r.id_asm_pct).sum::<f64>() / full.len() as f64;
    let avg_fl: f64 = full.iter().map(|r| r.flowery_asm_pct).sum::<f64>() / full.len() as f64;
    format!(
        "{body}\nfull protection, assembly level: ID {avg_id:.2}% -> Flowery {avg_fl:.2}% \
         (paper: 76.74% -> 93.72%)\n"
    )
}

// ---------------------------------------------------------------- §7.2 overhead

/// Per-level average overhead figures (paper §7.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadRow {
    pub level: f64,
    /// ID over raw, dynamic instructions.
    pub id_over_raw_dyn: f64,
    /// Flowery over ID, dynamic instructions (paper: 1.93/1.63/3.72/3.74%).
    pub flowery_over_id_dyn: f64,
    /// ID over raw, modelled cycles.
    pub id_over_raw_cycles: f64,
    /// Flowery over ID, modelled cycles.
    pub flowery_over_id_cycles: f64,
}

/// Extract the §7.2 overhead table from study results.
pub fn overhead(study: &StudyResults) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for &level in &study.levels {
        let mut id_dyn = 0.0;
        let mut fl_dyn = 0.0;
        let mut id_cyc = 0.0;
        let mut fl_cyc = 0.0;
        let mut n = 0usize;
        for b in &study.benches {
            if let Some(l) = b.at_level(level) {
                id_dyn += flowery_inject::relative_overhead(l.raw_dyn, l.id_dyn);
                fl_dyn += flowery_inject::relative_overhead(l.id_dyn, l.flowery_dyn);
                id_cyc += flowery_inject::relative_overhead(l.raw_cycles, l.id_cycles);
                fl_cyc += flowery_inject::relative_overhead(l.id_cycles, l.flowery_cycles);
                n += 1;
            }
        }
        if n > 0 {
            let n = n as f64;
            rows.push(OverheadRow {
                level,
                id_over_raw_dyn: id_dyn / n,
                flowery_over_id_dyn: fl_dyn / n,
                id_over_raw_cycles: id_cyc / n,
                flowery_over_id_cycles: fl_cyc / n,
            });
        }
    }
    rows
}

/// Render the overhead table.
pub fn render_overhead(rows: &[OverheadRow]) -> String {
    render_table(
        &["Level", "ID/raw dyn", "FL/ID dyn", "ID/raw cyc", "FL/ID cyc"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}%", r.level * 100.0),
                    format!("{:+.2}%", r.id_over_raw_dyn * 100.0),
                    format!("{:+.2}%", r.flowery_over_id_dyn * 100.0),
                    format!("{:+.2}%", r.id_over_raw_cycles * 100.0),
                    format!("{:+.2}%", r.flowery_over_id_cycles * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

// ---------------------------------------------------------------- §7.3 pass time

/// Per-benchmark Flowery transformation time (paper §7.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PassTimeRow {
    pub benchmark: String,
    /// Static instructions of the duplicated program the pass scans.
    pub static_insts: usize,
    /// Seconds the three patches took at full protection.
    pub seconds: f64,
}

/// Measure Flowery's compile-time cost per benchmark (standalone: does not
/// need fault-injection campaigns).
pub fn pass_time(cfg: &ExperimentConfig) -> Vec<PassTimeRow> {
    let mut full_cfg = cfg.clone();
    full_cfg.levels = vec![1.0];
    flowery_workloads::NAMES
        .iter()
        .map(|name| {
            let w = workload(name, cfg.scale);
            let p = prepare(&w, &full_cfg);
            let lm = &p.levels[0];
            PassTimeRow {
                benchmark: name.to_string(),
                static_insts: lm.id.static_size(),
                seconds: lm.flowery_secs,
            }
        })
        .collect()
}

/// Render the §7.3 table.
pub fn render_pass_time(rows: &[PassTimeRow]) -> String {
    let body = render_table(
        &["Benchmark", "Static insts", "Flowery µs"],
        &rows
            .iter()
            .map(|r| vec![r.benchmark.clone(), r.static_insts.to_string(), format!("{:.1}", r.seconds * 1e6)])
            .collect::<Vec<_>>(),
    );
    let avg = if rows.is_empty() {
        0.0
    } else {
        rows.iter().map(|r| r.seconds).sum::<f64>() / rows.len() as f64
    };
    format!(
        "{body}\naverage Flowery pass time: {:.1}µs here vs 0.12s in the paper \
         (real LLVM pass on full-size benchmarks; both scale linearly in static instructions)\n",
        avg * 1e6
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_study;
    use flowery_workloads::Scale;

    #[test]
    fn table1_covers_all_benchmarks() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.scale = Scale::Tiny;
        let rows = table1(&cfg);
        assert_eq!(rows.len(), 16);
        assert!(rows.iter().all(|r| r.di_ir > 0 && r.di_asm > r.di_ir));
        let text = render_table1(&rows);
        assert!(text.contains("stringsearch"));
        assert!(text.contains("Rodinia"));
    }

    #[test]
    fn figures_extract_from_study() {
        let cfg = ExperimentConfig::smoke();
        let study = run_study(&["is"], &cfg);
        let f2 = fig2(&study);
        assert_eq!(f2.len(), 1);
        assert!(render_fig2(&f2).contains("average IR-vs-assembly"));
        let f3 = fig3(&study);
        assert!(render_fig3(&f3).contains("store"));
        let f17 = fig17(&study);
        assert!(render_fig17(&f17).contains("Flowery"));
        let oh = overhead(&study);
        assert_eq!(oh.len(), 1);
        assert!(oh[0].id_over_raw_dyn > 0.3, "{:?}", oh);
        assert!(render_overhead(&oh).contains("FL/ID"));
    }

    #[test]
    fn outcomes_table_renders() {
        let cfg = ExperimentConfig::smoke();
        let study = run_study(&["pathfinder"], &cfg);
        let rows = outcomes(&study);
        assert_eq!(rows.len(), 1);
        let text = render_outcomes(&rows);
        assert!(text.contains("Flowery asm"), "{text}");
        assert!(text.contains("pathfinder"));
    }

    #[test]
    fn pass_time_is_fast_and_scales_with_size() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.scale = Scale::Tiny;
        let rows = pass_time(&cfg);
        assert_eq!(rows.len(), 16);
        for r in &rows {
            assert!(r.seconds < 1.0, "{}: {}s", r.benchmark, r.seconds);
            assert!(r.static_insts > 0);
        }
        assert!(render_pass_time(&rows).contains("average Flowery pass time"));
    }
}

// ---------------------------------------------------------------- outcome distribution

/// Per-benchmark outcome distributions (Benign/SDC/Detected/DUE rates) for
/// the raw program and ID at full protection, at both layers. The paper
/// reports SDC rates; the full distribution makes the DUE/Detected shifts
/// visible too.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutcomeRow {
    pub benchmark: String,
    pub raw_ir: flowery_inject::OutcomeCounts,
    pub raw_asm: flowery_inject::OutcomeCounts,
    pub id_ir: flowery_inject::OutcomeCounts,
    pub id_asm: flowery_inject::OutcomeCounts,
    pub flowery_asm: flowery_inject::OutcomeCounts,
}

/// Extract the outcome-distribution table from study results.
pub fn outcomes(study: &StudyResults) -> Vec<OutcomeRow> {
    study
        .benches
        .iter()
        .map(|b| {
            let full = b.full_level();
            OutcomeRow {
                benchmark: b.name.clone(),
                raw_ir: b.raw_ir_counts,
                raw_asm: b.raw_asm_counts,
                id_ir: full.id_ir_counts,
                id_asm: full.id_asm_counts,
                flowery_asm: full.flowery_asm_counts,
            }
        })
        .collect()
}

fn fmt_counts(c: &flowery_inject::OutcomeCounts) -> String {
    format!(
        "B{:.0}/S{:.0}/D{:.0}/U{:.0}",
        100.0 * c.benign as f64 / c.total().max(1) as f64,
        100.0 * c.sdc_rate(),
        100.0 * c.detected_rate(),
        100.0 * c.due_rate(),
    )
}

/// Render the outcome distributions (percent Benign/Sdc/Detected/dUe).
pub fn render_outcomes(rows: &[OutcomeRow]) -> String {
    let body = flowery_analysis::render_table(
        &["Benchmark", "raw IR", "raw asm", "ID IR", "ID asm", "Flowery asm"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.clone(),
                    fmt_counts(&r.raw_ir),
                    fmt_counts(&r.raw_asm),
                    fmt_counts(&r.id_ir),
                    fmt_counts(&r.id_asm),
                    fmt_counts(&r.flowery_asm),
                ]
            })
            .collect::<Vec<_>>(),
    );
    format!("{body}(cells are % Benign/Sdc/Detected/dUe at full protection)\n")
}
