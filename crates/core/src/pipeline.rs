//! The per-benchmark experiment pipeline: compile → profile → protect at
//! each level (ID, then ID+Flowery) → fault-inject at both layers →
//! coverage, overhead, and root-cause statistics.
//!
//! Campaign execution is delegated to the `flowery-harness` engine: every
//! (benchmark, variant, layer) cell becomes one [`TrialUnit`] and the
//! whole matrix drains under a single work-stealing scheduler, with golden
//! runs shared through a content-addressed [`GoldenCache`] (the overhead
//! measurements below reuse the campaign goldens for free).

use crate::config::ExperimentConfig;
use flowery_analysis::PenetrationBreakdown;
use flowery_backend::{compile_module, AsmProgram};
use flowery_harness::{run_units, Control, GoldenCache, Layer, RunOptions, TrialUnit, UnitKey, UnitResult, Variant};
use flowery_inject::{Coverage, OutcomeCounts};
use flowery_ir::Module;
use flowery_passes::{
    apply_flowery, choose_protection, duplicate_module, DupConfig, DupStats, FloweryConfig, FloweryStats,
    ProtectionPlan,
};
use flowery_workloads::Workload;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Protected modules for one protection level.
#[derive(Debug, Clone)]
pub struct LevelModules {
    pub level: f64,
    pub selected: usize,
    pub id: Module,
    pub flowery: Module,
    pub dup_stats: DupStats,
    pub flowery_stats: FloweryStats,
    /// Wall-clock seconds the Flowery transformation took (paper §7.3).
    pub flowery_secs: f64,
}

/// A benchmark with all its protected variants prepared.
#[derive(Debug, Clone)]
pub struct PreparedBench {
    pub name: &'static str,
    pub raw: Module,
    pub levels: Vec<LevelModules>,
    /// Static instruction count of the raw program.
    pub static_insts: usize,
}

/// Prepare a workload: compile, profile, and build protected variants.
pub fn prepare(w: &Workload, cfg: &ExperimentConfig) -> PreparedBench {
    let raw = w.compile();
    let profile = flowery_inject::profile_sdc(&raw, &cfg.profile_campaign());
    let mut levels = Vec::with_capacity(cfg.levels.len());
    for &level in &cfg.levels {
        let plan = if (level - 1.0).abs() < 1e-9 {
            ProtectionPlan::full(&raw)
        } else {
            choose_protection(&raw, &profile, level)
        };
        let selected = plan.selected_count();
        let mut id = raw.clone();
        let dup_stats = duplicate_module(&mut id, &plan, &DupConfig::default());
        let mut flowery = id.clone();
        let t0 = Instant::now();
        let flowery_stats = apply_flowery(&mut flowery, &FloweryConfig::default());
        let flowery_secs = t0.elapsed().as_secs_f64();
        levels.push(LevelModules {
            level,
            selected,
            id,
            flowery,
            dup_stats,
            flowery_stats,
            flowery_secs,
        });
    }
    PreparedBench { name: w.name, static_insts: raw.static_size(), raw, levels }
}

/// Fault-injection results for one protection level of one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelResults {
    pub level: f64,
    /// Instructions selected for duplication.
    pub selected: usize,
    /// SDC coverage of ID measured at the IR layer (what prior work
    /// reports).
    pub id_ir: Coverage,
    /// SDC coverage of ID measured at the assembly layer (the realistic
    /// number).
    pub id_asm: Coverage,
    /// SDC coverage of ID+Flowery at the assembly layer.
    pub flowery_asm: Coverage,
    pub id_ir_counts: OutcomeCounts,
    pub id_asm_counts: OutcomeCounts,
    pub flowery_asm_counts: OutcomeCounts,
    /// Root-cause classification of the assembly-level SDCs under ID.
    pub rootcause: PenetrationBreakdown,
    /// Golden dynamic instruction / cycle counts for overhead analysis.
    pub raw_dyn: u64,
    pub id_dyn: u64,
    pub flowery_dyn: u64,
    pub raw_cycles: u64,
    pub id_cycles: u64,
    pub flowery_cycles: u64,
    /// Flowery pass wall-clock seconds (paper §7.3).
    pub flowery_secs: f64,
}

/// All results for one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchResults {
    pub name: String,
    pub static_insts: usize,
    pub raw_ir_counts: OutcomeCounts,
    pub raw_asm_counts: OutcomeCounts,
    pub raw_ir_dyn: u64,
    pub raw_asm_dyn: u64,
    pub levels: Vec<LevelResults>,
}

impl BenchResults {
    /// The level entry closest to full protection.
    pub fn full_level(&self) -> &LevelResults {
        self.levels
            .iter()
            .max_by(|a, b| a.level.partial_cmp(&b.level).unwrap())
            .expect("at least one level")
    }

    /// Results at a specific level.
    pub fn at_level(&self, level: f64) -> Option<&LevelResults> {
        self.levels.iter().find(|l| (l.level - level).abs() < 1e-9)
    }
}

/// Run the complete cross-layer study for one benchmark.
pub fn run_bench(w: &Workload, cfg: &ExperimentConfig) -> BenchResults {
    let prepared = prepare(w, cfg);
    run_prepared(&prepared, cfg)
}

/// Compiled programs for one prepared benchmark, kept for root-cause
/// classification and golden-cache overhead lookups after the campaigns.
struct BenchPrograms {
    raw: Arc<AsmProgram>,
    /// Per level: (ID program, ID+Flowery program).
    levels: Vec<(Arc<AsmProgram>, Arc<AsmProgram>)>,
}

/// Decompose one prepared benchmark into schedulable trial units.
fn bench_units(p: &PreparedBench, cfg: &ExperimentConfig) -> (Vec<TrialUnit>, BenchPrograms) {
    let raw = Arc::new(p.raw.clone());
    let raw_prog = Arc::new(compile_module(&p.raw, &cfg.backend));
    let mut units = vec![
        TrialUnit::ir(UnitKey::new(p.name, Variant::Raw, 0.0, Layer::Ir), raw.clone()),
        TrialUnit::asm(UnitKey::new(p.name, Variant::Raw, 0.0, Layer::Asm), raw.clone(), raw_prog.clone()),
    ];
    let mut levels = Vec::with_capacity(p.levels.len());
    for lm in &p.levels {
        let id = Arc::new(lm.id.clone());
        let id_prog = Arc::new(compile_module(&lm.id, &cfg.backend));
        let fl = Arc::new(lm.flowery.clone());
        let fl_prog = Arc::new(compile_module(&lm.flowery, &cfg.backend));
        units.push(
            TrialUnit::ir(UnitKey::new(p.name, Variant::Id, lm.level, Layer::Ir), id.clone())
                .with_raw(raw.clone(), None),
        );
        units.push(
            TrialUnit::asm(UnitKey::new(p.name, Variant::Id, lm.level, Layer::Asm), id, id_prog.clone())
                .with_raw(raw.clone(), Some(raw_prog.clone())),
        );
        units.push(
            TrialUnit::asm(UnitKey::new(p.name, Variant::Flowery, lm.level, Layer::Asm), fl, fl_prog.clone())
                .with_raw(raw.clone(), Some(raw_prog.clone())),
        );
        levels.push((id_prog, fl_prog));
    }
    (units, BenchPrograms { raw: raw_prog, levels })
}

/// Assemble [`BenchResults`] from the harness unit results. Overhead
/// goldens come from the cache the engine already populated.
fn assemble_bench(
    p: &PreparedBench,
    cfg: &ExperimentConfig,
    progs: &BenchPrograms,
    results: &HashMap<UnitKey, &UnitResult>,
    cache: &GoldenCache,
) -> BenchResults {
    let get = |variant, level: f64, layer| -> &UnitResult {
        let key = UnitKey::new(p.name, variant, level, layer);
        results.get(&key).unwrap_or_else(|| panic!("missing unit result {key}"))
    };
    let raw_ir = get(Variant::Raw, 0.0, Layer::Ir);
    let raw_asm = get(Variant::Raw, 0.0, Layer::Asm);
    let exec = Default::default();
    let raw_golden = cache.asm_golden(&p.raw, &progs.raw, &exec);

    let mut levels = Vec::with_capacity(p.levels.len());
    for (lm, (id_prog, fl_prog)) in p.levels.iter().zip(&progs.levels) {
        let id_ir = get(Variant::Id, lm.level, Layer::Ir);
        let id_asm = get(Variant::Id, lm.level, Layer::Asm);
        let fl_asm = get(Variant::Flowery, lm.level, Layer::Asm);
        let rootcause =
            flowery_analysis::classify_campaign_with(&lm.id, id_prog, &id_asm.sdc_insts, cfg.backend.fold_compares);
        let id_golden = cache.asm_golden(&lm.id, id_prog, &exec);
        let fl_golden = cache.asm_golden(&lm.flowery, fl_prog, &exec);
        levels.push(LevelResults {
            level: lm.level,
            selected: lm.selected,
            id_ir: Coverage::compute(&raw_ir.counts, &id_ir.counts),
            id_asm: Coverage::compute(&raw_asm.counts, &id_asm.counts),
            flowery_asm: Coverage::compute(&raw_asm.counts, &fl_asm.counts),
            id_ir_counts: id_ir.counts,
            id_asm_counts: id_asm.counts,
            flowery_asm_counts: fl_asm.counts,
            rootcause,
            raw_dyn: raw_golden.dyn_insts,
            id_dyn: id_golden.dyn_insts,
            flowery_dyn: fl_golden.dyn_insts,
            raw_cycles: raw_golden.cycles,
            id_cycles: id_golden.cycles,
            flowery_cycles: fl_golden.cycles,
            flowery_secs: lm.flowery_secs,
        });
    }

    BenchResults {
        name: p.name.to_string(),
        static_insts: p.static_insts,
        raw_ir_counts: raw_ir.counts,
        raw_asm_counts: raw_asm.counts,
        raw_ir_dyn: raw_ir.golden_dyn_insts,
        raw_asm_dyn: raw_asm.golden_dyn_insts,
        levels,
    }
}

/// Progress callback printing a throttled status line to stderr.
fn stderr_progress() -> impl Fn(&flowery_harness::MetricsSnapshot) -> Control + Sync {
    let last = std::sync::Mutex::new(Instant::now());
    move |snap| {
        let mut last = last.lock().unwrap();
        if last.elapsed().as_secs_f64() >= 1.0 {
            eprintln!("[harness] {}", snap.render());
            *last = Instant::now();
        }
        Control::Continue
    }
}

/// Run campaigns over a prepared benchmark through the harness engine.
pub fn run_prepared(p: &PreparedBench, cfg: &ExperimentConfig) -> BenchResults {
    let (units, progs) = bench_units(p, cfg);
    let cache = GoldenCache::new();
    let progress = stderr_progress();
    let opts = RunOptions {
        progress: cfg
            .verbose
            .then_some(&progress as &(dyn Fn(&flowery_harness::MetricsSnapshot) -> Control + Sync)),
        ..Default::default()
    };
    let report = run_units(&units, &cfg.harness(), &cache, opts);
    let map: HashMap<UnitKey, &UnitResult> = report.units.iter().map(|u| (u.key.clone(), u)).collect();
    assemble_bench(p, cfg, &progs, &map, &cache)
}

/// Results for every benchmark in the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyResults {
    pub benches: Vec<BenchResults>,
    pub trials: u64,
    pub levels: Vec<f64>,
}

impl StudyResults {
    /// Average IR-vs-assembly coverage gap of ID across all benchmarks and
    /// levels (the paper's headline 31.21%).
    pub fn average_gap(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for b in &self.benches {
            for l in &b.levels {
                sum += l.id_ir.coverage - l.id_asm.coverage;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Average coverage improvement from Flowery over ID at assembly level.
    pub fn average_flowery_gain(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for b in &self.benches {
            for l in &b.levels {
                sum += l.flowery_asm.coverage - l.id_asm.coverage;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Aggregated root-cause distribution at full protection (Figure 3).
    pub fn aggregate_rootcause(&self) -> PenetrationBreakdown {
        let mut out = PenetrationBreakdown::default();
        for b in &self.benches {
            out.merge(&b.full_level().rootcause);
        }
        out
    }
}

/// Run the study for the given benchmark names (or all 16 when empty).
///
/// All campaigns of all benchmarks share one work-stealing scheduler and
/// one golden cache: no per-campaign (or per-benchmark) barrier ever
/// leaves cores idle while a straggler finishes.
pub fn run_study(names: &[&str], cfg: &ExperimentConfig) -> StudyResults {
    let names: Vec<&str> = if names.is_empty() {
        flowery_workloads::NAMES.to_vec()
    } else {
        names.to_vec()
    };
    let prepared: Vec<PreparedBench> = names
        .iter()
        .map(|name| {
            if cfg.verbose {
                eprintln!("[{name}] preparing protected variants");
            }
            prepare(&flowery_workloads::workload(name, cfg.scale), cfg)
        })
        .collect();
    run_prepared_study(&prepared, cfg)
}

/// Run one engine pass over every unit of every prepared benchmark.
pub fn run_prepared_study(prepared: &[PreparedBench], cfg: &ExperimentConfig) -> StudyResults {
    let mut all_units = Vec::new();
    let mut all_progs = Vec::with_capacity(prepared.len());
    for p in prepared {
        let (units, progs) = bench_units(p, cfg);
        all_units.extend(units);
        all_progs.push(progs);
    }
    let cache = GoldenCache::new();
    let progress = stderr_progress();
    let opts = RunOptions {
        progress: cfg
            .verbose
            .then_some(&progress as &(dyn Fn(&flowery_harness::MetricsSnapshot) -> Control + Sync)),
        ..Default::default()
    };
    let report = run_units(&all_units, &cfg.harness(), &cache, opts);
    if cfg.verbose {
        eprintln!("[harness] done: {}", report.metrics.render());
    }
    let map: HashMap<UnitKey, &UnitResult> = report.units.iter().map(|u| (u.key.clone(), u)).collect();
    let benches = prepared
        .iter()
        .zip(&all_progs)
        .map(|(p, progs)| assemble_bench(p, cfg, progs, &map, &cache))
        .collect();
    StudyResults { benches, trials: cfg.trials, levels: cfg.levels.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pipeline_single_bench() {
        let cfg = ExperimentConfig::smoke();
        let w = flowery_workloads::workload("quicksort", cfg.scale);
        let r = run_bench(&w, &cfg);
        assert_eq!(r.levels.len(), 1);
        let full = r.full_level();
        // The structural laws of the paper at full protection:
        assert!(full.id_ir.coverage > 0.95, "IR full coverage ~100%: {:?}", full.id_ir);
        assert!(
            full.id_asm.coverage < full.id_ir.coverage,
            "assembly coverage falls short: {} vs {}",
            full.id_asm.coverage,
            full.id_ir.coverage
        );
        assert!(full.flowery_asm.coverage >= full.id_asm.coverage, "Flowery must not reduce coverage");
        assert!(full.id_dyn > full.raw_dyn, "duplication costs dynamic instructions");
        assert!(full.flowery_dyn >= full.id_dyn);
        assert!(full.rootcause.total() > 0, "assembly SDCs exist to classify");
    }

    #[test]
    fn study_aggregates() {
        let cfg = ExperimentConfig::smoke();
        let s = run_study(&["pathfinder", "is"], &cfg);
        assert_eq!(s.benches.len(), 2);
        assert!(s.average_gap() > 0.0, "gap {}", s.average_gap());
        assert!(s.average_flowery_gain() > 0.0, "gain {}", s.average_flowery_gain());
        assert!(s.aggregate_rootcause().deficiency_total() > 0);
    }
}
