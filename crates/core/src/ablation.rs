//! Ablation experiments over the backend mechanisms that produce the
//! cross-layer deficiencies (DESIGN.md §4). Each ablation switches off or
//! resizes one mechanism and re-measures full-protection assembly coverage
//! and the penetration distribution, verifying that the right category
//! responds — i.e. that the penetrations emerge from the modelled
//! mechanisms rather than being artefacts.

use crate::config::ExperimentConfig;
use flowery_analysis::{classify_campaign_with, PenetrationBreakdown};
use flowery_backend::{compile_module, BackendConfig};
use flowery_inject::{run_asm_campaign, Coverage};
use flowery_passes::{duplicate_module, DupConfig, ProtectionPlan};
use flowery_workloads::workload;
use serde::{Deserialize, Serialize};

/// One ablation configuration's measurements on one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    pub benchmark: String,
    pub config: String,
    /// Full-protection assembly-level SDC coverage.
    pub coverage_pct: f64,
    /// Golden dynamic instruction count (code-size effect of the knob).
    pub golden_dyn: u64,
    pub rootcause: PenetrationBreakdown,
}

/// The ablation axes, each relative to the default backend.
pub fn ablation_configs() -> Vec<(String, BackendConfig)> {
    let base = BackendConfig::default();
    vec![
        ("default".into(), base),
        ("no-reg-cache".into(), BackendConfig { reg_cache: false, ..base }),
        ("no-fold".into(), BackendConfig { fold_compares: false, ..base }),
        ("no-fuse".into(), BackendConfig { fuse_cmp_branch: false, ..base }),
        ("gpr-4".into(), BackendConfig { gpr_pool: 4, ..base }),
        ("gpr-6".into(), BackendConfig { gpr_pool: 6, ..base }),
    ]
}

/// Run every ablation over the given benchmarks at full protection.
pub fn ablation_study(names: &[&str], cfg: &ExperimentConfig) -> Vec<AblationRow> {
    let names: Vec<&str> = if names.is_empty() {
        vec!["is", "quicksort"]
    } else {
        names.to_vec()
    };
    let camp = cfg.campaign();
    let mut rows = Vec::new();
    for name in names {
        let raw = workload(name, cfg.scale).compile();
        let mut id = raw.clone();
        let plan = ProtectionPlan::full(&id);
        duplicate_module(&mut id, &plan, &DupConfig::default());
        for (label, bcfg) in ablation_configs() {
            if cfg.verbose {
                eprintln!("[ablate] {name}/{label}");
            }
            let raw_prog = compile_module(&raw, &bcfg);
            let id_prog = compile_module(&id, &bcfg);
            let raw_asm = run_asm_campaign(&raw, &raw_prog, &camp);
            let id_asm = run_asm_campaign(&id, &id_prog, &camp);
            rows.push(AblationRow {
                benchmark: name.to_string(),
                config: label,
                coverage_pct: Coverage::compute(&raw_asm.counts, &id_asm.counts).percent(),
                golden_dyn: id_asm.golden_dyn_insts,
                rootcause: classify_campaign_with(&id, &id_prog, &id_asm.sdc_insts, bcfg.fold_compares),
            });
        }
    }
    rows
}

/// Render the ablation table.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    flowery_analysis::render_table(
        &["Benchmark", "Config", "Coverage", "Dyn insts", "store%", "branch%", "cmp%"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.clone(),
                    r.config.clone(),
                    format!("{:.2}%", r.coverage_pct),
                    r.golden_dyn.to_string(),
                    format!("{:.1}", r.rootcause.percent(flowery_analysis::Penetration::Store)),
                    format!("{:.1}", r.rootcause.percent(flowery_analysis::Penetration::Branch)),
                    format!("{:.1}", r.rootcause.percent(flowery_analysis::Penetration::Comparison)),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_for(bench: &str, trials: u64) -> Vec<AblationRow> {
        let mut cfg = ExperimentConfig::smoke();
        cfg.trials = trials;
        ablation_study(&[bench], &cfg)
    }

    #[test]
    fn no_fold_removes_comparison_penetration() {
        let rows = rows_for("is", 600);
        let default = rows.iter().find(|r| r.config == "default").unwrap();
        let nofold = rows.iter().find(|r| r.config == "no-fold").unwrap();
        assert_eq!(
            nofold.rootcause.comparison, 0,
            "without folding there is no comparison penetration: {:?}",
            nofold.rootcause
        );
        assert!(
            nofold.coverage_pct >= default.coverage_pct,
            "disabling the folding can only help coverage: {} vs {}",
            nofold.coverage_pct,
            default.coverage_pct
        );
    }

    #[test]
    fn smaller_register_pool_costs_more_instructions() {
        let rows = rows_for("quicksort", 200);
        let default = rows.iter().find(|r| r.config == "default").unwrap();
        let small = rows.iter().find(|r| r.config == "gpr-4").unwrap();
        assert!(
            small.golden_dyn >= default.golden_dyn,
            "a smaller pool cannot shrink the program: {} vs {}",
            small.golden_dyn,
            default.golden_dyn
        );
    }

    #[test]
    fn no_cache_inflates_dynamic_count() {
        let rows = rows_for("is", 200);
        let default = rows.iter().find(|r| r.config == "default").unwrap();
        let nocache = rows.iter().find(|r| r.config == "no-reg-cache").unwrap();
        assert!(nocache.golden_dyn > default.golden_dyn);
        let text = render_ablation(&rows);
        assert!(text.contains("no-reg-cache"));
    }
}
