//! MiniC abstract syntax tree.

/// Scalar element types of MiniC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scalar {
    /// 64-bit signed integer (`int`).
    Int,
    /// IEEE double (`float`).
    Float,
    /// 8-bit unsigned integer (`byte`), promoted to `int` in arithmetic.
    Byte,
}

/// A MiniC type: a scalar, a pointer-to-scalar (array parameter), or void.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    Scalar(Scalar),
    Ptr(Scalar),
    Void,
}

/// Binary operators (source level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LogAnd,
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    Neg,
    Not,
}

/// Assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array / pointer element.
    Index(String, Box<Expr>),
}

/// Expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    FloatLit(f64),
    /// Variable read, or the address of an array when the name denotes one.
    Ident(String),
    /// `a[i]`
    Index(String, Box<Expr>),
    Unary(UnKind, Box<Expr>),
    Binary(BinKind, Box<Expr>, Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>),
    /// Explicit conversion: `int(e)`, `float(e)`, `byte(e)`.
    Cast(Scalar, Box<Expr>),
}

/// Statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `int x;` / `int x = e;` / `int a[10];`
    Decl {
        name: String,
        scalar: Scalar,
        array: Option<u32>,
        init: Option<Expr>,
    },
    /// `x = e;` / `a[i] = e;`
    Assign {
        target: LValue,
        value: Expr,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
    },
    Return(Option<Expr>),
    /// Expression evaluated for effect (calls).
    Expr(Expr),
    Break,
    Continue,
}

/// Global variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    pub name: String,
    pub scalar: Scalar,
    /// Element count (scalars are arrays of length 1).
    pub count: u64,
    /// Optional element initializers (integer or float literals).
    pub init: Option<Vec<f64>>,
    pub line: u32,
}

/// Function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub ty: TypeName,
}

/// Function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    pub name: String,
    pub params: Vec<Param>,
    pub ret: TypeName,
    pub body: Vec<Stmt>,
    pub line: u32,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub globals: Vec<GlobalDecl>,
    pub funcs: Vec<FuncDecl>,
}
