//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::token::{err, lex, LangError, Spanned, Tok};

/// Parse a translation unit.
pub fn parse(src: &str) -> Result<Program, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), LangError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            err(self.line(), format!("expected {want:?}, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => err(self.toks[self.pos.saturating_sub(1)].line, format!("expected identifier, found {other}")),
        }
    }

    // ---- items ---------------------------------------------------------

    fn program(&mut self) -> Result<Program, LangError> {
        let mut prog = Program::default();
        while *self.peek() != Tok::Eof {
            if *self.peek() == Tok::KwGlobal {
                prog.globals.push(self.global_decl()?);
            } else {
                prog.funcs.push(self.func_decl()?);
            }
        }
        Ok(prog)
    }

    fn scalar(&mut self) -> Result<Scalar, LangError> {
        match self.bump() {
            Tok::KwInt => Ok(Scalar::Int),
            Tok::KwFloat => Ok(Scalar::Float),
            Tok::KwByte => Ok(Scalar::Byte),
            other => err(self.line(), format!("expected type, found {other}")),
        }
    }

    fn global_decl(&mut self) -> Result<GlobalDecl, LangError> {
        let line = self.line();
        self.expect(Tok::KwGlobal)?;
        let scalar = self.scalar()?;
        let name = self.ident()?;
        let mut count = 1u64;
        if *self.peek() == Tok::LBracket {
            self.bump();
            match self.bump() {
                Tok::Int(n) if n > 0 => count = n as u64,
                other => return err(line, format!("expected array size, found {other}")),
            }
            self.expect(Tok::RBracket)?;
        }
        let mut init = None;
        if *self.peek() == Tok::Assign {
            self.bump();
            self.expect(Tok::LBrace)?;
            let mut vals = Vec::new();
            loop {
                let neg = if *self.peek() == Tok::Minus {
                    self.bump();
                    true
                } else {
                    false
                };
                let v = match self.bump() {
                    Tok::Int(v) => v as f64,
                    Tok::Float(v) => v,
                    other => return err(line, format!("expected literal in initializer, found {other}")),
                };
                vals.push(if neg { -v } else { v });
                match self.bump() {
                    Tok::Comma => continue,
                    Tok::RBrace => break,
                    other => return err(line, format!("expected ',' or '}}', found {other}")),
                }
            }
            if vals.len() as u64 > count {
                return err(line, format!("{} initializers for {} elements", vals.len(), count));
            }
            init = Some(vals);
        }
        self.expect(Tok::Semi)?;
        Ok(GlobalDecl { name, scalar, count, init, line })
    }

    fn type_name(&mut self) -> Result<TypeName, LangError> {
        if *self.peek() == Tok::KwVoid {
            self.bump();
            return Ok(TypeName::Void);
        }
        let s = self.scalar()?;
        if *self.peek() == Tok::Star {
            self.bump();
            Ok(TypeName::Ptr(s))
        } else {
            Ok(TypeName::Scalar(s))
        }
    }

    fn func_decl(&mut self) -> Result<FuncDecl, LangError> {
        let line = self.line();
        let ret = self.type_name()?;
        if matches!(ret, TypeName::Ptr(_)) {
            return err(line, "functions cannot return pointers");
        }
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let ty = self.type_name()?;
                if ty == TypeName::Void {
                    return err(self.line(), "void parameter");
                }
                let pname = self.ident()?;
                params.push(Param { name: pname, ty });
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(FuncDecl { name, params, ret, body, line })
    }

    // ---- statements ----------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return err(self.line(), "unexpected end of file in block");
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        match self.peek() {
            Tok::KwInt | Tok::KwFloat | Tok::KwByte => {
                let s = self.decl_stmt()?;
                Ok(s)
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_body = self.block()?;
                let else_body = if *self.peek() == Tok::KwElse {
                    self.bump();
                    if *self.peek() == Tok::KwIf {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt { kind: StmtKind::If { cond, then_body, else_body }, line })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt { kind: StmtKind::While { cond, body }, line })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if *self.peek() == Tok::Semi {
                    self.bump();
                    None
                } else {
                    let s = self.simple_stmt()?;
                    self.expect(Tok::Semi)?;
                    Some(Box::new(s))
                };
                let cond = if *self.peek() == Tok::Semi { None } else { Some(self.expr()?) };
                self.expect(Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt { kind: StmtKind::For { init, cond, step, body }, line })
            }
            Tok::KwReturn => {
                self.bump();
                let val = if *self.peek() == Tok::Semi { None } else { Some(self.expr()?) };
                self.expect(Tok::Semi)?;
                Ok(Stmt { kind: StmtKind::Return(val), line })
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt { kind: StmtKind::Break, line })
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt { kind: StmtKind::Continue, line })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
        }
    }

    /// Declaration statement (consumes the trailing semicolon).
    fn decl_stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        let scalar = self.scalar()?;
        let name = self.ident()?;
        let mut array = None;
        if *self.peek() == Tok::LBracket {
            self.bump();
            match self.bump() {
                Tok::Int(n) if n > 0 => array = Some(n as u32),
                other => return err(line, format!("expected array size, found {other}")),
            }
            self.expect(Tok::RBracket)?;
        }
        let init = if *self.peek() == Tok::Assign {
            if array.is_some() {
                return err(line, "local arrays cannot have initializers");
            }
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok(Stmt { kind: StmtKind::Decl { name, scalar, array, init }, line })
    }

    /// Assignment or expression statement (no trailing semicolon).
    fn simple_stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        // Lookahead: `ident =`/`ident op=` or the indexed forms.
        if let Tok::Ident(name) = self.peek().clone() {
            if let Some(op) = assign_op(self.peek2()) {
                self.bump();
                self.bump();
                let rhs = self.expr()?;
                let value = desugar_compound(op, LValue::Var(name.clone()), rhs, line);
                return Ok(Stmt {
                    kind: StmtKind::Assign { target: LValue::Var(name), value },
                    line,
                });
            }
            if *self.peek2() == Tok::LBracket {
                // Could be `a[i] = e` / `a[i] op= e` or an expression.
                let save = self.pos;
                self.bump(); // ident
                self.bump(); // [
                let idx = self.expr()?;
                if *self.peek() == Tok::RBracket {
                    if let Some(op) = assign_op(self.peek2()) {
                        self.bump(); // ]
                        self.bump(); // op=
                        let rhs = self.expr()?;
                        let target = LValue::Index(name.clone(), Box::new(idx.clone()));
                        let value = desugar_compound(op, target.clone(), rhs, line);
                        return Ok(Stmt { kind: StmtKind::Assign { target, value }, line });
                    }
                }
                self.pos = save;
            }
        }
        let e = self.expr()?;
        Ok(Stmt { kind: StmtKind::Expr(e), line })
    }

    // ---- expressions (precedence climbing) ------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::OrOr => (BinKind::LogOr, 1),
                Tok::AndAnd => (BinKind::LogAnd, 2),
                Tok::Pipe => (BinKind::BitOr, 3),
                Tok::Caret => (BinKind::BitXor, 4),
                Tok::Amp => (BinKind::BitAnd, 5),
                Tok::Eq => (BinKind::Eq, 6),
                Tok::Ne => (BinKind::Ne, 6),
                Tok::Lt => (BinKind::Lt, 7),
                Tok::Le => (BinKind::Le, 7),
                Tok::Gt => (BinKind::Gt, 7),
                Tok::Ge => (BinKind::Ge, 7),
                Tok::Shl => (BinKind::Shl, 8),
                Tok::Shr => (BinKind::Shr, 8),
                Tok::Plus => (BinKind::Add, 9),
                Tok::Minus => (BinKind::Sub, 9),
                Tok::Star => (BinKind::Mul, 10),
                Tok::Slash => (BinKind::Div, 10),
                Tok::Percent => (BinKind::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr { kind: ExprKind::Unary(UnKind::Neg, Box::new(e)), line })
            }
            Tok::Not => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr { kind: ExprKind::Unary(UnKind::Not, Box::new(e)), line })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr { kind: ExprKind::IntLit(v), line }),
            Tok::Float(v) => Ok(Expr { kind: ExprKind::FloatLit(v), line }),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            // Casts look like calls of type keywords: int(e), float(e), byte(e).
            Tok::KwInt | Tok::KwFloat | Tok::KwByte => {
                let s = match &self.toks[self.pos - 1].tok {
                    Tok::KwInt => Scalar::Int,
                    Tok::KwFloat => Scalar::Float,
                    _ => Scalar::Byte,
                };
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Expr { kind: ExprKind::Cast(s, Box::new(e)), line })
            }
            Tok::Ident(name) => match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr { kind: ExprKind::Call(name, args), line })
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    Ok(Expr { kind: ExprKind::Index(name, Box::new(idx)), line })
                }
                _ => Ok(Expr { kind: ExprKind::Ident(name), line }),
            },
            other => err(line, format!("unexpected token {other} in expression")),
        }
    }
}

/// The binary operator of an assignment token (`None` for plain `=`
/// meaning: `Some(None)`; not an assignment at all: `None`).
fn assign_op(t: &Tok) -> Option<Option<BinKind>> {
    match t {
        Tok::Assign => Some(None),
        Tok::PlusEq => Some(Some(BinKind::Add)),
        Tok::MinusEq => Some(Some(BinKind::Sub)),
        Tok::StarEq => Some(Some(BinKind::Mul)),
        Tok::SlashEq => Some(Some(BinKind::Div)),
        Tok::PercentEq => Some(Some(BinKind::Rem)),
        _ => None,
    }
}

/// Desugar `target op= rhs` into `target = target op rhs`. The index
/// expression of an indexed target is evaluated twice, as in the direct
/// spelling (benchmarks keep index expressions pure).
fn desugar_compound(op: Option<BinKind>, target: LValue, rhs: Expr, line: u32) -> Expr {
    match op {
        None => rhs,
        Some(op) => {
            let read = match target {
                LValue::Var(n) => Expr { kind: ExprKind::Ident(n), line },
                LValue::Index(n, i) => Expr { kind: ExprKind::Index(n, i), line },
            };
            Expr {
                kind: ExprKind::Binary(op, Box::new(read), Box::new(rhs)),
                line,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_global_and_function() {
        let p = parse(
            "global int tbl[4] = {1, 2, 3, 4};\n\
             int main() { int s = 0; return s; }",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.globals[0].count, 4);
        assert_eq!(p.globals[0].init.as_ref().unwrap().len(), 4);
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
    }

    #[test]
    fn parses_control_flow() {
        let p = parse(
            "void f(int n) {\n\
               int i;\n\
               for (i = 0; i < n; i = i + 1) {\n\
                 if (i % 2 == 0) { continue; } else { output(i); }\n\
               }\n\
               while (n > 0) { n = n - 1; if (n == 3) { break; } }\n\
             }",
        )
        .unwrap();
        assert_eq!(p.funcs[0].params.len(), 1);
        assert!(matches!(p.funcs[0].body[1].kind, StmtKind::For { .. }));
        assert!(matches!(p.funcs[0].body[2].kind, StmtKind::While { .. }));
    }

    #[test]
    fn precedence_is_c_like() {
        let p = parse("int f() { return 1 + 2 * 3 < 4 && 5 == 5; }").unwrap();
        // ((1 + (2*3)) < 4) && (5 == 5)
        let StmtKind::Return(Some(e)) = &p.funcs[0].body[0].kind else {
            panic!()
        };
        let ExprKind::Binary(BinKind::LogAnd, l, _) = &e.kind else {
            panic!("{:?}", e.kind)
        };
        let ExprKind::Binary(BinKind::Lt, a, _) = &l.kind else {
            panic!("{:?}", l.kind)
        };
        let ExprKind::Binary(BinKind::Add, _, m) = &a.kind else {
            panic!("{:?}", a.kind)
        };
        assert!(matches!(m.kind, ExprKind::Binary(BinKind::Mul, _, _)));
    }

    #[test]
    fn parses_array_assign_and_index_expr() {
        let p = parse("void f(int* a) { a[0] = a[1] + 2; }").unwrap();
        assert!(matches!(
            &p.funcs[0].body[0].kind,
            StmtKind::Assign { target: LValue::Index(n, _), .. } if n == "a"
        ));
    }

    #[test]
    fn parses_casts() {
        let p = parse("float f(int x) { return float(x) * 0.5; }").unwrap();
        let StmtKind::Return(Some(e)) = &p.funcs[0].body[0].kind else {
            panic!()
        };
        let ExprKind::Binary(BinKind::Mul, l, _) = &e.kind else {
            panic!()
        };
        assert!(matches!(l.kind, ExprKind::Cast(Scalar::Float, _)));
    }

    #[test]
    fn parses_negative_initializers() {
        let p = parse("global float w[2] = {-1.5, 2.0};\nvoid f() { }").unwrap();
        assert_eq!(p.globals[0].init, Some(vec![-1.5, 2.0]));
    }

    #[test]
    fn else_if_chains() {
        let p = parse("int f(int x) { if (x < 0) { return 0; } else if (x < 10) { return 1; } else { return 2; } }")
            .unwrap();
        let StmtKind::If { else_body, .. } = &p.funcs[0].body[0].kind else {
            panic!()
        };
        assert_eq!(else_body.len(), 1);
        assert!(matches!(else_body[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn error_has_line_number() {
        let e = parse("int f() {\n  return +;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_local_array_initializer() {
        assert!(parse("void f() { int a[3] = 1; }").is_err());
    }
}
