//! Type checking and lowering of MiniC to `flowery-ir`.
//!
//! The output deliberately has `-O0` Clang shape: every local (including
//! parameters) lives in an entry-block `alloca`, every read is a `load`,
//! every write is a `store`, and no midend cleanup is applied. The
//! cross-layer experiments depend on this shape.

use crate::ast::*;
use crate::token::{err, LangError};
use flowery_ir::builder::{FuncBuilder, ModuleBuilder};
use flowery_ir::inst::{BinOp, CastKind, FPred, IPred, Intrinsic};
use flowery_ir::types::Type;
use flowery_ir::value::{FuncId, GlobalId, InstId, Op};
use flowery_ir::Module;
use std::collections::HashMap;

/// Expression-level type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ETy {
    Int,
    Float,
    Bool,
    Ptr(Scalar),
}

/// A typed value during lowering.
#[derive(Debug, Clone, Copy)]
struct TV {
    op: Op,
    ty: ETy,
}

fn scalar_ir(s: Scalar) -> Type {
    match s {
        Scalar::Int => Type::I64,
        Scalar::Float => Type::F64,
        Scalar::Byte => Type::I8,
    }
}

fn param_ir(ty: TypeName) -> Type {
    match ty {
        TypeName::Scalar(Scalar::Float) => Type::F64,
        TypeName::Scalar(_) => Type::I64, // byte params promoted, C-style
        TypeName::Ptr(_) => Type::Ptr,
        TypeName::Void => unreachable!("void params rejected by parser"),
    }
}

/// What a name refers to.
#[derive(Debug, Clone, Copy)]
enum Binding {
    /// Scalar local: pointer to its alloca + element scalar.
    Local(InstId, Scalar),
    /// Local array: alloca pointer + element scalar.
    LocalArray(InstId, Scalar),
    /// Pointer parameter, spilled to an alloca holding the pointer.
    PtrParam(InstId, Scalar),
}

struct FuncSig {
    id: FuncId,
    params: Vec<TypeName>,
    ret: TypeName,
}

struct Lowerer<'a> {
    mb: &'a mut ModuleBuilder,
    funcs: HashMap<String, FuncSig>,
    globals: HashMap<String, (GlobalId, Scalar)>,
}

/// Compile MiniC source into a verified IR module.
pub fn compile(name: &str, src: &str) -> Result<Module, LangError> {
    let prog = crate::parser::parse(src)?;
    lower(name, &prog)
}

/// Lower a parsed program.
pub fn lower(name: &str, prog: &Program) -> Result<Module, LangError> {
    let mut mb = ModuleBuilder::new(name);
    let mut lw = Lowerer { mb: &mut mb, funcs: HashMap::new(), globals: HashMap::new() };

    for g in &prog.globals {
        if lw.globals.contains_key(&g.name) {
            return err(g.line, format!("duplicate global '{}'", g.name));
        }
        let elem = scalar_ir(g.scalar);
        let gid = match &g.init {
            None => lw.mb.global_zeroed(&g.name, elem, g.count),
            Some(vals) => {
                let mut words: Vec<u64> = vals
                    .iter()
                    .map(|&v| match g.scalar {
                        Scalar::Float => v.to_bits(),
                        Scalar::Int => elem.canon(v as i64 as u64),
                        Scalar::Byte => elem.canon(v as i64 as u64),
                    })
                    .collect();
                words.resize(g.count as usize, 0);
                lw.mb.global_init(&g.name, elem, words)
            }
        };
        lw.globals.insert(g.name.clone(), (gid, g.scalar));
    }

    // Declare all functions first (forward references, recursion).
    for f in &prog.funcs {
        if lw.funcs.contains_key(&f.name) {
            return err(f.line, format!("duplicate function '{}'", f.name));
        }
        if is_builtin(&f.name) {
            return err(f.line, format!("'{}' is a builtin", f.name));
        }
        let ir_params = f.params.iter().map(|p| param_ir(p.ty)).collect();
        let ret_ty = match f.ret {
            TypeName::Void => None,
            TypeName::Scalar(s) => Some(match s {
                Scalar::Float => Type::F64,
                _ => Type::I64,
            }),
            TypeName::Ptr(_) => unreachable!(),
        };
        let id = lw.mb.declare_func(&f.name, ir_params, ret_ty);
        lw.funcs.insert(
            f.name.clone(),
            FuncSig {
                id,
                params: f.params.iter().map(|p| p.ty).collect(),
                ret: f.ret,
            },
        );
    }

    for f in &prog.funcs {
        lw.lower_func(f)?;
    }

    let module = mb.finish();
    if module.main_func().is_none() {
        return err(0, "program has no main function");
    }
    flowery_ir::verify::verify_module(&module)
        .map_err(|e| LangError { line: 0, msg: format!("internal lowering bug: {e}") })?;
    Ok(module)
}

fn is_builtin(name: &str) -> bool {
    matches!(
        name,
        "output" | "outputb" | "sqrt" | "sin" | "cos" | "exp" | "log" | "fabs" | "floor" | "pow"
    )
}

/// Per-function lowering state.
struct FnCtx {
    fb: FuncBuilder,
    scopes: Vec<HashMap<String, Binding>>,
    /// (break target, continue target) stack.
    loops: Vec<(flowery_ir::BlockId, flowery_ir::BlockId)>,
    ret: TypeName,
    next_label: u32,
}

impl FnCtx {
    fn lookup(&self, name: &str) -> Option<Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, name: &str, b: Binding, line: u32) -> Result<(), LangError> {
        let top = self.scopes.last_mut().expect("scope stack nonempty");
        if top.insert(name.to_string(), b).is_some() {
            return err(line, format!("duplicate declaration of '{name}' in this scope"));
        }
        Ok(())
    }

    fn fresh(&mut self, base: &str) -> String {
        self.next_label += 1;
        format!("{base}{}", self.next_label)
    }
}

impl Lowerer<'_> {
    fn lower_func(&mut self, f: &FuncDecl) -> Result<(), LangError> {
        let sig_id = self.funcs[&f.name].id;
        let ir_params: Vec<Type> = f.params.iter().map(|p| param_ir(p.ty)).collect();
        let ret_ty = match f.ret {
            TypeName::Void => None,
            TypeName::Scalar(Scalar::Float) => Some(Type::F64),
            _ => Some(Type::I64),
        };
        let fb = FuncBuilder::new(&f.name, ir_params, ret_ty);
        let mut cx = FnCtx {
            fb,
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            ret: f.ret,
            next_label: 0,
        };

        // Spill each parameter to an entry alloca (-O0 behaviour).
        for (i, p) in f.params.iter().enumerate() {
            match p.ty {
                TypeName::Scalar(s) => {
                    let store_ty = match s {
                        Scalar::Float => Type::F64,
                        _ => Type::I64, // byte params held widened in locals
                    };
                    let slot = cx.fb.alloca_entry(store_ty, 1);
                    cx.fb.store(store_ty, Op::param(i as u32), Op::inst(slot));
                    let as_scalar = if s == Scalar::Byte { Scalar::Int } else { s };
                    cx.declare(&p.name, Binding::Local(slot, as_scalar), f.line)?;
                }
                TypeName::Ptr(s) => {
                    let slot = cx.fb.alloca_entry(Type::Ptr, 1);
                    cx.fb.store(Type::Ptr, Op::param(i as u32), Op::inst(slot));
                    cx.declare(&p.name, Binding::PtrParam(slot, s), f.line)?;
                }
                TypeName::Void => unreachable!(),
            }
        }

        self.lower_stmts(&mut cx, &f.body)?;

        // Implicit return.
        if !cx.fb.is_terminated() {
            match f.ret {
                TypeName::Void => cx.fb.ret(None),
                TypeName::Scalar(Scalar::Float) => cx.fb.ret(Some(Op::cf64(0.0))),
                _ => cx.fb.ret(Some(Op::ci64(0))),
            }
        }

        self.mb.define_func(sig_id, cx.fb.finish());
        Ok(())
    }

    fn lower_stmts(&mut self, cx: &mut FnCtx, stmts: &[Stmt]) -> Result<(), LangError> {
        for s in stmts {
            if cx.fb.is_terminated() {
                // Dead code after return/break: park it in an unreachable block
                // so lowering stays simple (Clang emits it too).
                let dead_l = cx.fresh("dead");
                let dead = cx.fb.new_block(dead_l);
                cx.fb.switch_to(dead);
            }
            self.lower_stmt(cx, s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, cx: &mut FnCtx, s: &Stmt) -> Result<(), LangError> {
        match &s.kind {
            StmtKind::Decl { name, scalar, array, init } => {
                if let Some(n) = array {
                    let id = cx.fb.alloca_entry(scalar_ir(*scalar), *n);
                    cx.declare(name, Binding::LocalArray(id, *scalar), s.line)?;
                } else {
                    let id = cx.fb.alloca_entry(scalar_ir(*scalar), 1);
                    cx.declare(name, Binding::Local(id, *scalar), s.line)?;
                    if let Some(e) = init {
                        let v = self.lower_expr(cx, e)?;
                        self.store_scalar(cx, Op::inst(id), *scalar, v, s.line)?;
                    }
                }
                Ok(())
            }
            StmtKind::Assign { target, value } => {
                let v = self.lower_expr(cx, value)?;
                match target {
                    LValue::Var(name) => match cx.lookup(name) {
                        Some(Binding::Local(slot, sc)) => self.store_scalar(cx, Op::inst(slot), sc, v, s.line),
                        Some(_) => err(s.line, format!("cannot assign to array '{name}'")),
                        None => err(s.line, format!("unknown variable '{name}'")),
                    },
                    LValue::Index(name, idx) => {
                        let (base, sc) = self.array_base(cx, name, s.line)?;
                        let i = self.lower_expr(cx, idx)?;
                        let i = self.coerce_int(cx, i, s.line)?;
                        let p = cx.fb.gep(base, i.op, scalar_ir(sc));
                        self.store_scalar(cx, Op::inst(p), sc, v, s.line)
                    }
                }
            }
            StmtKind::If { cond, then_body, else_body } => {
                let c = self.lower_expr(cx, cond)?;
                let c = self.coerce_bool(cx, c, s.line)?;
                let then_bb_l = cx.fresh("if.then");
                let then_bb = cx.fb.new_block(then_bb_l);
                let else_bb_l = cx.fresh("if.else");
                let else_bb = cx.fb.new_block(else_bb_l);
                let merge_l = cx.fresh("if.end");
                let merge = cx.fb.new_block(merge_l);
                cx.fb.br(c.op, then_bb, if else_body.is_empty() { merge } else { else_bb });

                cx.fb.switch_to(then_bb);
                cx.scopes.push(HashMap::new());
                self.lower_stmts(cx, then_body)?;
                cx.scopes.pop();
                if !cx.fb.is_terminated() {
                    cx.fb.jmp(merge);
                }

                if !else_body.is_empty() {
                    cx.fb.switch_to(else_bb);
                    cx.scopes.push(HashMap::new());
                    self.lower_stmts(cx, else_body)?;
                    cx.scopes.pop();
                    if !cx.fb.is_terminated() {
                        cx.fb.jmp(merge);
                    }
                }
                cx.fb.switch_to(merge);
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let header_l = cx.fresh("while.cond");
                let header = cx.fb.new_block(header_l);
                let body_bb_l = cx.fresh("while.body");
                let body_bb = cx.fb.new_block(body_bb_l);
                let exit_l = cx.fresh("while.end");
                let exit = cx.fb.new_block(exit_l);
                cx.fb.jmp(header);
                cx.fb.switch_to(header);
                let c = self.lower_expr(cx, cond)?;
                let c = self.coerce_bool(cx, c, s.line)?;
                cx.fb.br(c.op, body_bb, exit);
                cx.fb.switch_to(body_bb);
                cx.scopes.push(HashMap::new());
                cx.loops.push((exit, header));
                self.lower_stmts(cx, body)?;
                cx.loops.pop();
                cx.scopes.pop();
                if !cx.fb.is_terminated() {
                    cx.fb.jmp(header);
                }
                cx.fb.switch_to(exit);
                Ok(())
            }
            StmtKind::For { init, cond, step, body } => {
                cx.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.lower_stmt(cx, i)?;
                }
                let header_l = cx.fresh("for.cond");
                let header = cx.fb.new_block(header_l);
                let body_bb_l = cx.fresh("for.body");
                let body_bb = cx.fb.new_block(body_bb_l);
                let step_bb_l = cx.fresh("for.step");
                let step_bb = cx.fb.new_block(step_bb_l);
                let exit_l = cx.fresh("for.end");
                let exit = cx.fb.new_block(exit_l);
                cx.fb.jmp(header);
                cx.fb.switch_to(header);
                match cond {
                    Some(c) => {
                        let c = self.lower_expr(cx, c)?;
                        let c = self.coerce_bool(cx, c, s.line)?;
                        cx.fb.br(c.op, body_bb, exit);
                    }
                    None => cx.fb.jmp(body_bb),
                }
                cx.fb.switch_to(body_bb);
                cx.scopes.push(HashMap::new());
                cx.loops.push((exit, step_bb));
                self.lower_stmts(cx, body)?;
                cx.loops.pop();
                cx.scopes.pop();
                if !cx.fb.is_terminated() {
                    cx.fb.jmp(step_bb);
                }
                cx.fb.switch_to(step_bb);
                if let Some(st) = step {
                    self.lower_stmt(cx, st)?;
                }
                cx.fb.jmp(header);
                cx.fb.switch_to(exit);
                cx.scopes.pop();
                Ok(())
            }
            StmtKind::Return(val) => {
                match (val, cx.ret) {
                    (None, TypeName::Void) => cx.fb.ret(None),
                    (Some(e), TypeName::Void) => {
                        let _ = e;
                        return err(s.line, "returning a value from a void function");
                    }
                    (None, _) => return err(s.line, "missing return value"),
                    (Some(e), TypeName::Scalar(sc)) => {
                        let v = self.lower_expr(cx, e)?;
                        let v = match sc {
                            Scalar::Float => self.coerce_float(cx, v, s.line)?,
                            _ => self.coerce_int(cx, v, s.line)?,
                        };
                        cx.fb.ret(Some(v.op));
                    }
                    (Some(_), TypeName::Ptr(_)) => unreachable!(),
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.lower_expr_maybe_void(cx, e)?;
                Ok(())
            }
            StmtKind::Break => match cx.loops.last() {
                Some(&(exit, _)) => {
                    cx.fb.jmp(exit);
                    Ok(())
                }
                None => err(s.line, "break outside loop"),
            },
            StmtKind::Continue => match cx.loops.last() {
                Some(&(_, cont)) => {
                    cx.fb.jmp(cont);
                    Ok(())
                }
                None => err(s.line, "continue outside loop"),
            },
        }
    }

    fn array_base(&mut self, cx: &mut FnCtx, name: &str, line: u32) -> Result<(Op, Scalar), LangError> {
        match cx.lookup(name) {
            Some(Binding::LocalArray(id, sc)) => Ok((Op::inst(id), sc)),
            Some(Binding::PtrParam(slot, sc)) => {
                let p = cx.fb.load(Type::Ptr, Op::inst(slot));
                Ok((Op::inst(p), sc))
            }
            Some(Binding::Local(..)) => err(line, format!("'{name}' is a scalar, not an array")),
            None => match self.globals.get(name) {
                Some(&(gid, sc)) => Ok((Op::Global(gid), sc)),
                None => err(line, format!("unknown array '{name}'")),
            },
        }
    }

    /// Store a value into a scalar slot, applying implicit conversions.
    fn store_scalar(&mut self, cx: &mut FnCtx, ptr: Op, sc: Scalar, v: TV, line: u32) -> Result<(), LangError> {
        match sc {
            Scalar::Float => {
                let v = self.coerce_float(cx, v, line)?;
                cx.fb.store(Type::F64, v.op, ptr);
            }
            Scalar::Int => {
                let v = self.coerce_int(cx, v, line)?;
                cx.fb.store(Type::I64, v.op, ptr);
            }
            Scalar::Byte => {
                let v = self.coerce_int(cx, v, line)?;
                let t = cx.fb.cast(CastKind::Trunc, Type::I64, Type::I8, v.op);
                cx.fb.store(Type::I8, Op::inst(t), ptr);
            }
        }
        Ok(())
    }

    // ---- conversions ----------------------------------------------------

    fn coerce_bool(&mut self, cx: &mut FnCtx, v: TV, line: u32) -> Result<TV, LangError> {
        match v.ty {
            ETy::Bool => Ok(v),
            ETy::Int => {
                let c = cx.fb.icmp(IPred::Ne, Type::I64, v.op, Op::ci64(0));
                Ok(TV { op: Op::inst(c), ty: ETy::Bool })
            }
            ETy::Float => {
                let c = cx.fb.fcmp(FPred::One, Type::F64, v.op, Op::cf64(0.0));
                Ok(TV { op: Op::inst(c), ty: ETy::Bool })
            }
            ETy::Ptr(_) => err(line, "pointer used as condition"),
        }
    }

    fn coerce_int(&mut self, cx: &mut FnCtx, v: TV, line: u32) -> Result<TV, LangError> {
        match v.ty {
            ETy::Int => Ok(v),
            ETy::Bool => {
                let z = cx.fb.cast(CastKind::Zext, Type::I1, Type::I64, v.op);
                Ok(TV { op: Op::inst(z), ty: ETy::Int })
            }
            ETy::Float => err(line, "implicit float -> int conversion; use int(expr)"),
            ETy::Ptr(_) => err(line, "pointer used as integer"),
        }
    }

    fn coerce_float(&mut self, cx: &mut FnCtx, v: TV, line: u32) -> Result<TV, LangError> {
        match v.ty {
            ETy::Float => Ok(v),
            ETy::Int => {
                let c = cx.fb.cast(CastKind::SiToFp, Type::I64, Type::F64, v.op);
                Ok(TV { op: Op::inst(c), ty: ETy::Float })
            }
            ETy::Bool => {
                let i = self.coerce_int(cx, v, line)?;
                self.coerce_float(cx, i, line)
            }
            ETy::Ptr(_) => err(line, "pointer used as float"),
        }
    }

    // ---- expressions -----------------------------------------------------

    fn lower_expr_maybe_void(&mut self, cx: &mut FnCtx, e: &Expr) -> Result<Option<TV>, LangError> {
        if let ExprKind::Call(name, args) = &e.kind {
            return self.lower_call(cx, name, args, e.line);
        }
        self.lower_expr(cx, e).map(Some)
    }

    fn lower_expr(&mut self, cx: &mut FnCtx, e: &Expr) -> Result<TV, LangError> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(TV { op: Op::ci64(*v), ty: ETy::Int }),
            ExprKind::FloatLit(v) => Ok(TV { op: Op::cf64(*v), ty: ETy::Float }),
            ExprKind::Ident(name) => match cx.lookup(name) {
                Some(Binding::Local(slot, sc)) => {
                    let ty = scalar_ir(sc);
                    let l = cx.fb.load(ty, Op::inst(slot));
                    match sc {
                        Scalar::Float => Ok(TV { op: Op::inst(l), ty: ETy::Float }),
                        Scalar::Int => Ok(TV { op: Op::inst(l), ty: ETy::Int }),
                        Scalar::Byte => {
                            let z = cx.fb.cast(CastKind::Zext, Type::I8, Type::I64, Op::inst(l));
                            Ok(TV { op: Op::inst(z), ty: ETy::Int })
                        }
                    }
                }
                Some(Binding::LocalArray(id, sc)) => Ok(TV { op: Op::inst(id), ty: ETy::Ptr(sc) }),
                Some(Binding::PtrParam(slot, sc)) => {
                    let l = cx.fb.load(Type::Ptr, Op::inst(slot));
                    Ok(TV { op: Op::inst(l), ty: ETy::Ptr(sc) })
                }
                None => match self.globals.get(name) {
                    Some(&(gid, sc)) => Ok(TV { op: Op::Global(gid), ty: ETy::Ptr(sc) }),
                    None => err(e.line, format!("unknown identifier '{name}'")),
                },
            },
            ExprKind::Index(name, idx) => {
                let (base, sc) = self.array_base(cx, name, e.line)?;
                let i = self.lower_expr(cx, idx)?;
                let i = self.coerce_int(cx, i, e.line)?;
                let p = cx.fb.gep(base, i.op, scalar_ir(sc));
                let l = cx.fb.load(scalar_ir(sc), Op::inst(p));
                match sc {
                    Scalar::Float => Ok(TV { op: Op::inst(l), ty: ETy::Float }),
                    Scalar::Int => Ok(TV { op: Op::inst(l), ty: ETy::Int }),
                    Scalar::Byte => {
                        let z = cx.fb.cast(CastKind::Zext, Type::I8, Type::I64, Op::inst(l));
                        Ok(TV { op: Op::inst(z), ty: ETy::Int })
                    }
                }
            }
            ExprKind::Unary(UnKind::Neg, inner) => {
                let v = self.lower_expr(cx, inner)?;
                match v.ty {
                    ETy::Float => {
                        let r = cx.fb.bin(BinOp::FSub, Type::F64, Op::cf64(0.0), v.op);
                        Ok(TV { op: Op::inst(r), ty: ETy::Float })
                    }
                    _ => {
                        let v = self.coerce_int(cx, v, e.line)?;
                        let r = cx.fb.bin(BinOp::Sub, Type::I64, Op::ci64(0), v.op);
                        Ok(TV { op: Op::inst(r), ty: ETy::Int })
                    }
                }
            }
            ExprKind::Unary(UnKind::Not, inner) => {
                let v = self.lower_expr(cx, inner)?;
                let b = self.coerce_bool(cx, v, e.line)?;
                let r = cx.fb.bin(BinOp::Xor, Type::I1, b.op, Op::Const(flowery_ir::Const::bool(true)));
                Ok(TV { op: Op::inst(r), ty: ETy::Bool })
            }
            ExprKind::Binary(op @ (BinKind::LogAnd | BinKind::LogOr), l, r) => {
                self.lower_shortcircuit(cx, *op, l, r, e.line)
            }
            ExprKind::Binary(op, l, r) => {
                let lv = self.lower_expr(cx, l)?;
                let rv = self.lower_expr(cx, r)?;
                self.lower_binary(cx, *op, lv, rv, e.line)
            }
            ExprKind::Call(name, args) => match self.lower_call(cx, name, args, e.line)? {
                Some(v) => Ok(v),
                None => err(e.line, format!("void call '{name}' used as a value")),
            },
            ExprKind::Cast(sc, inner) => {
                let v = self.lower_expr(cx, inner)?;
                match sc {
                    Scalar::Float => self.coerce_float(cx, v, e.line),
                    Scalar::Int => match v.ty {
                        ETy::Float => {
                            let c = cx.fb.cast(CastKind::FpToSi, Type::F64, Type::I64, v.op);
                            Ok(TV { op: Op::inst(c), ty: ETy::Int })
                        }
                        _ => self.coerce_int(cx, v, e.line),
                    },
                    Scalar::Byte => {
                        let v = match v.ty {
                            ETy::Float => {
                                let c = cx.fb.cast(CastKind::FpToSi, Type::F64, Type::I64, v.op);
                                TV { op: Op::inst(c), ty: ETy::Int }
                            }
                            _ => self.coerce_int(cx, v, e.line)?,
                        };
                        let t = cx.fb.cast(CastKind::Trunc, Type::I64, Type::I8, v.op);
                        let z = cx.fb.cast(CastKind::Zext, Type::I8, Type::I64, Op::inst(t));
                        Ok(TV { op: Op::inst(z), ty: ETy::Int })
                    }
                }
            }
        }
    }

    fn lower_shortcircuit(
        &mut self,
        cx: &mut FnCtx,
        op: BinKind,
        l: &Expr,
        r: &Expr,
        line: u32,
    ) -> Result<TV, LangError> {
        // -O0-style: a temporary i8 slot holds the result.
        let slot = cx.fb.alloca_entry(Type::I8, 1);
        let lv = self.lower_expr(cx, l)?;
        let lb = self.coerce_bool(cx, lv, line)?;
        let z = cx.fb.cast(CastKind::Zext, Type::I1, Type::I8, lb.op);
        cx.fb.store(Type::I8, Op::inst(z), Op::inst(slot));
        let rhs_bb_l = cx.fresh("sc.rhs");
        let rhs_bb = cx.fb.new_block(rhs_bb_l);
        let end_bb_l = cx.fresh("sc.end");
        let end_bb = cx.fb.new_block(end_bb_l);
        match op {
            BinKind::LogAnd => cx.fb.br(lb.op, rhs_bb, end_bb),
            BinKind::LogOr => cx.fb.br(lb.op, end_bb, rhs_bb),
            _ => unreachable!(),
        }
        cx.fb.switch_to(rhs_bb);
        let rv = self.lower_expr(cx, r)?;
        let rb = self.coerce_bool(cx, rv, line)?;
        let z2 = cx.fb.cast(CastKind::Zext, Type::I1, Type::I8, rb.op);
        cx.fb.store(Type::I8, Op::inst(z2), Op::inst(slot));
        cx.fb.jmp(end_bb);
        cx.fb.switch_to(end_bb);
        let l8 = cx.fb.load(Type::I8, Op::inst(slot));
        let c = cx.fb.icmp(IPred::Ne, Type::I8, Op::inst(l8), Op::cint(Type::I8, 0));
        Ok(TV { op: Op::inst(c), ty: ETy::Bool })
    }

    fn lower_binary(&mut self, cx: &mut FnCtx, op: BinKind, lv: TV, rv: TV, line: u32) -> Result<TV, LangError> {
        let float = lv.ty == ETy::Float || rv.ty == ETy::Float;
        let is_cmp = matches!(op, BinKind::Eq | BinKind::Ne | BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge);
        if float {
            let a = self.coerce_float(cx, lv, line)?;
            let b = self.coerce_float(cx, rv, line)?;
            if is_cmp {
                let pred = match op {
                    BinKind::Eq => FPred::Oeq,
                    BinKind::Ne => FPred::One,
                    BinKind::Lt => FPred::Olt,
                    BinKind::Le => FPred::Ole,
                    BinKind::Gt => FPred::Ogt,
                    BinKind::Ge => FPred::Oge,
                    _ => unreachable!(),
                };
                let c = cx.fb.fcmp(pred, Type::F64, a.op, b.op);
                return Ok(TV { op: Op::inst(c), ty: ETy::Bool });
            }
            let bop = match op {
                BinKind::Add => BinOp::FAdd,
                BinKind::Sub => BinOp::FSub,
                BinKind::Mul => BinOp::FMul,
                BinKind::Div => BinOp::FDiv,
                other => return err(line, format!("{other:?} not defined on float")),
            };
            let r = cx.fb.bin(bop, Type::F64, a.op, b.op);
            return Ok(TV { op: Op::inst(r), ty: ETy::Float });
        }
        let a = self.coerce_int(cx, lv, line)?;
        let b = self.coerce_int(cx, rv, line)?;
        if is_cmp {
            let pred = match op {
                BinKind::Eq => IPred::Eq,
                BinKind::Ne => IPred::Ne,
                BinKind::Lt => IPred::Slt,
                BinKind::Le => IPred::Sle,
                BinKind::Gt => IPred::Sgt,
                BinKind::Ge => IPred::Sge,
                _ => unreachable!(),
            };
            let c = cx.fb.icmp(pred, Type::I64, a.op, b.op);
            return Ok(TV { op: Op::inst(c), ty: ETy::Bool });
        }
        let bop = match op {
            BinKind::Add => BinOp::Add,
            BinKind::Sub => BinOp::Sub,
            BinKind::Mul => BinOp::Mul,
            BinKind::Div => BinOp::SDiv,
            BinKind::Rem => BinOp::SRem,
            BinKind::BitAnd => BinOp::And,
            BinKind::BitOr => BinOp::Or,
            BinKind::BitXor => BinOp::Xor,
            BinKind::Shl => BinOp::Shl,
            BinKind::Shr => BinOp::AShr,
            BinKind::LogAnd | BinKind::LogOr => unreachable!("handled earlier"),
            _ => unreachable!(),
        };
        let r = cx.fb.bin(bop, Type::I64, a.op, b.op);
        Ok(TV { op: Op::inst(r), ty: ETy::Int })
    }

    fn lower_call(&mut self, cx: &mut FnCtx, name: &str, args: &[Expr], line: u32) -> Result<Option<TV>, LangError> {
        // Builtins.
        match name {
            "output" => {
                if args.len() != 1 {
                    return err(line, "output() takes one argument");
                }
                let v = self.lower_expr(cx, &args[0])?;
                match v.ty {
                    ETy::Float => {
                        cx.fb.output_f64(v.op);
                    }
                    _ => {
                        let v = self.coerce_int(cx, v, line)?;
                        cx.fb.output_i64(v.op);
                    }
                }
                return Ok(None);
            }
            "outputb" => {
                if args.len() != 1 {
                    return err(line, "outputb() takes one argument");
                }
                let v = self.lower_expr(cx, &args[0])?;
                let v = self.coerce_int(cx, v, line)?;
                cx.fb.intrinsic(Intrinsic::OutputByte, vec![v.op]);
                return Ok(None);
            }
            "sqrt" | "sin" | "cos" | "exp" | "log" | "fabs" | "floor" | "pow" => {
                let which = match name {
                    "sqrt" => Intrinsic::Sqrt,
                    "sin" => Intrinsic::Sin,
                    "cos" => Intrinsic::Cos,
                    "exp" => Intrinsic::Exp,
                    "log" => Intrinsic::Log,
                    "fabs" => Intrinsic::Fabs,
                    "floor" => Intrinsic::Floor,
                    _ => Intrinsic::Pow,
                };
                if args.len() != which.arity() {
                    return err(line, format!("{name}() takes {} argument(s)", which.arity()));
                }
                let mut ir_args = Vec::with_capacity(args.len());
                for a in args {
                    let v = self.lower_expr(cx, a)?;
                    let v = self.coerce_float(cx, v, line)?;
                    ir_args.push(v.op);
                }
                let r = cx.fb.intrinsic(which, ir_args);
                return Ok(Some(TV { op: Op::inst(r), ty: ETy::Float }));
            }
            _ => {}
        }

        // User functions. A two-phase borrow: clone the signature facts.
        let (fid, param_tys, ret) = match self.funcs.get(name) {
            Some(sig) => (sig.id, sig.params.clone(), sig.ret),
            None => return err(line, format!("unknown function '{name}'")),
        };
        if args.len() != param_tys.len() {
            return err(line, format!("'{name}' expects {} arguments, got {}", param_tys.len(), args.len()));
        }
        let mut ir_args = Vec::with_capacity(args.len());
        for (a, want) in args.iter().zip(&param_tys) {
            let v = self.lower_expr(cx, a)?;
            let converted = match want {
                TypeName::Scalar(Scalar::Float) => self.coerce_float(cx, v, line)?,
                TypeName::Scalar(_) => self.coerce_int(cx, v, line)?,
                TypeName::Ptr(want_sc) => match v.ty {
                    ETy::Ptr(have) if have == *want_sc => v,
                    ETy::Ptr(_) => return err(line, "pointer element type mismatch"),
                    _ => return err(line, "expected an array argument"),
                },
                TypeName::Void => unreachable!(),
            };
            ir_args.push(converted.op);
        }
        let call = cx.fb.call(fid, ir_args);
        match ret {
            TypeName::Void => Ok(None),
            TypeName::Scalar(Scalar::Float) => Ok(Some(TV { op: Op::inst(call), ty: ETy::Float })),
            TypeName::Scalar(_) => Ok(Some(TV { op: Op::inst(call), ty: ETy::Int })),
            TypeName::Ptr(_) => unreachable!(),
        }
    }
}
