//! MiniC lexer.

use std::fmt;

/// Lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals / identifiers
    Int(i64),
    Float(f64),
    Ident(String),
    // keywords
    KwInt,
    KwFloat,
    KwByte,
    KwVoid,
    KwGlobal,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AndAnd,
    OrOr,
    Not,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source line (1-based), for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: u32,
}

/// Lexing / parsing / lowering error.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LangError {}

pub(crate) fn err<T>(line: u32, msg: impl Into<String>) -> Result<T, LangError> {
    Err(LangError { line, msg: msg.into() })
}

/// Tokenize MiniC source. `//` line comments and `/* */` block comments are
/// skipped.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LangError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return err(line, "unterminated block comment");
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let tok = if is_float {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| LangError { line, msg: format!("bad float literal {text}") })?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| LangError { line, msg: format!("bad int literal {text}") })?,
                    )
                };
                out.push(Spanned { tok, line });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "int" => Tok::KwInt,
                    "float" => Tok::KwFloat,
                    "byte" => Tok::KwByte,
                    "void" => Tok::KwVoid,
                    "global" => Tok::KwGlobal,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, line });
            }
            _ => {
                let two = |a: u8, b: u8| i + 1 < bytes.len() && bytes[i] == a && bytes[i + 1] == b;
                let (tok, len) = if two(b'<', b'<') {
                    (Tok::Shl, 2)
                } else if two(b'>', b'>') {
                    (Tok::Shr, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else if two(b'=', b'=') {
                    (Tok::Eq, 2)
                } else if two(b'!', b'=') {
                    (Tok::Ne, 2)
                } else if two(b'&', b'&') {
                    (Tok::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (Tok::OrOr, 2)
                } else if two(b'+', b'=') {
                    (Tok::PlusEq, 2)
                } else if two(b'-', b'=') {
                    (Tok::MinusEq, 2)
                } else if two(b'*', b'=') {
                    (Tok::StarEq, 2)
                } else if two(b'/', b'=') {
                    (Tok::SlashEq, 2)
                } else if two(b'%', b'=') {
                    (Tok::PercentEq, 2)
                } else {
                    let t = match c {
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        '[' => Tok::LBracket,
                        ']' => Tok::RBracket,
                        ',' => Tok::Comma,
                        ';' => Tok::Semi,
                        '=' => Tok::Assign,
                        '+' => Tok::Plus,
                        '-' => Tok::Minus,
                        '*' => Tok::Star,
                        '/' => Tok::Slash,
                        '%' => Tok::Percent,
                        '&' => Tok::Amp,
                        '|' => Tok::Pipe,
                        '^' => Tok::Caret,
                        '!' => Tok::Not,
                        '<' => Tok::Lt,
                        '>' => Tok::Gt,
                        other => return err(line, format!("unexpected character '{other}'")),
                    };
                    (t, 1)
                };
                out.push(Spanned { tok, line });
                i += len;
            }
        }
    }
    out.push(Spanned { tok: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("42 3.5 1e3 2.5e-2"),
            vec![Tok::Int(42), Tok::Float(3.5), Tok::Float(1000.0), Tok::Float(0.025), Tok::Eof]
        );
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("int foo while_x"),
            vec![Tok::KwInt, Tok::Ident("foo".into()), Tok::Ident("while_x".into()), Tok::Eof]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("<= >= == != << >> && || ! < >"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::Eq,
                Tok::Ne,
                Tok::Shl,
                Tok::Shr,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Not,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let ts = lex("a // hi\nb /* multi\nline */ c").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn rejects_bad_char() {
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn division_not_comment() {
        assert_eq!(toks("a / b"), vec![Tok::Ident("a".into()), Tok::Slash, Tok::Ident("b".into()), Tok::Eof]);
    }
}
