//! # flowery-lang
//!
//! MiniC: a small C-like language that lowers to `flowery-ir` with `-O0`
//! Clang shape (alloca-based locals, parameter spills, no midend cleanup).
//! The 16 paper benchmarks in `flowery-workloads` are written in MiniC.
//!
//! ```
//! let module = flowery_lang::compile("demo", r#"
//!     int main() {
//!         int i;
//!         int s = 0;
//!         for (i = 1; i <= 10; i = i + 1) { s = s + i; }
//!         output(s);
//!         return s;
//!     }
//! "#).unwrap();
//! use flowery_ir::interp::{Interpreter, ExecConfig, ExecStatus};
//! let r = Interpreter::new(&module).run(&ExecConfig::default(), None);
//! assert_eq!(r.status, ExecStatus::Completed(55));
//! ```

pub mod ast;
pub mod lower;
pub mod parser;
pub mod token;

pub use lower::compile;
pub use token::LangError;
