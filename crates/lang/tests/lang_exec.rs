//! End-to-end MiniC tests: compile then execute on the IR interpreter.

use flowery_ir::interp::{decode_output, ExecConfig, ExecStatus, Interpreter};

fn run(src: &str) -> (ExecStatus, Vec<String>) {
    let m = flowery_lang::compile("t", src).expect("compile");
    let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
    (r.status, decode_output(&r.output))
}

fn run_ret(src: &str) -> i64 {
    match run(src).0 {
        ExecStatus::Completed(v) => v as i64,
        other => panic!("did not complete: {other:?}"),
    }
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run_ret("int main() { return 2 + 3 * 4 - 6 / 2; }"), 11);
    assert_eq!(run_ret("int main() { return (2 + 3) * 4 % 7; }"), 6);
    assert_eq!(run_ret("int main() { return 1 << 4 | 3; }"), 19);
    assert_eq!(run_ret("int main() { return -7 / 2; }"), -3);
    assert_eq!(run_ret("int main() { return -7 % 3; }"), -1);
    assert_eq!(run_ret("int main() { return 5 & 3 ^ 1; }"), 0);
    assert_eq!(run_ret("int main() { return -16 >> 2; }"), -4);
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(run_ret("int main() { return (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5); }"), 3);
    assert_eq!(run_ret("int main() { return (1 == 1) && (2 != 3); }"), 1);
    assert_eq!(run_ret("int main() { return 0 || 7; }"), 1);
    assert_eq!(run_ret("int main() { return !0 + !5; }"), 1);
}

#[test]
fn short_circuit_skips_rhs() {
    // If RHS evaluated, it would divide by zero and trap.
    assert_eq!(run_ret("int main() { int z = 0; if (0 && (1 / z)) { return 1; } return 2; }"), 2);
    assert_eq!(run_ret("int main() { int z = 0; if (1 || (1 / z)) { return 3; } return 4; }"), 3);
}

#[test]
fn while_and_for_loops() {
    assert_eq!(
        run_ret("int main() { int s = 0; int i = 0; while (i < 10) { s = s + i; i = i + 1; } return s; }"),
        45
    );
    assert_eq!(
        run_ret("int main() { int s = 0; int i; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }"),
        45
    );
}

#[test]
fn break_and_continue() {
    assert_eq!(
        run_ret(
            "int main() { int s = 0; int i; for (i = 0; i < 100; i = i + 1) {\n\
               if (i % 2 == 0) { continue; }\n\
               if (i > 10) { break; }\n\
               s = s + i;\n\
             } return s; }"
        ),
        1 + 3 + 5 + 7 + 9
    );
}

#[test]
fn local_arrays_and_globals() {
    assert_eq!(
        run_ret(
            "global int tbl[5] = {10, 20, 30, 40, 50};\n\
             int main() { int a[3]; a[0] = tbl[4]; a[1] = a[0] + tbl[0]; return a[1]; }"
        ),
        60
    );
}

#[test]
fn global_float_init_and_arith() {
    let (_, out) = run("global float w[3] = {0.5, -1.5, 2.0};\n\
         int main() { float s = 0.0; int i; for (i = 0; i < 3; i = i + 1) { s = s + w[i]; } output(s); return 0; }");
    assert_eq!(out, vec!["f64:1"]);
}

#[test]
fn functions_and_recursion() {
    assert_eq!(
        run_ret(
            "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
             int main() { return fib(12); }"
        ),
        144
    );
}

#[test]
fn pointer_params_mutate_caller_arrays() {
    assert_eq!(
        run_ret(
            "void fill(int* a, int n) { int i; for (i = 0; i < n; i = i + 1) { a[i] = i * i; } }\n\
             int sum(int* a, int n) { int s = 0; int i; for (i = 0; i < n; i = i + 1) { s = s + a[i]; } return s; }\n\
             int main() { int buf[6]; fill(buf, 6); return sum(buf, 6); }"
        ),
        1 + 4 + 9 + 16 + 25
    );
}

#[test]
fn global_array_as_argument() {
    assert_eq!(
        run_ret(
            "global int data[4] = {1, 2, 3, 4};\n\
             int first(int* p) { return p[0]; }\n\
             int main() { return first(data) + data[3]; }"
        ),
        5
    );
}

#[test]
fn float_int_mixing_and_casts() {
    assert_eq!(run_ret("int main() { return int(3.9) + int(-1.9); }"), 2);
    let (_, out) = run("int main() { output(float(3) / 2.0); return 0; }");
    assert_eq!(out, vec!["f64:1.5"]);
    // int op float promotes to float
    let (_, out) = run("int main() { output(1 + 0.5); return 0; }");
    assert_eq!(out, vec!["f64:1.5"]);
}

#[test]
fn byte_semantics_wrap() {
    assert_eq!(run_ret("int main() { byte b = 250; b = b + 10; return b; }"), 4);
    assert_eq!(run_ret("int main() { return byte(256 + 7); }"), 7);
    assert_eq!(run_ret("int main() { byte a[2]; a[0] = 255; a[1] = a[0] + 1; return a[1]; }"), 0);
}

#[test]
fn math_builtins() {
    let (_, out) = run(
        "int main() { output(sqrt(16.0)); output(pow(2.0, 8.0)); output(fabs(-2.5)); output(floor(3.7)); return 0; }",
    );
    assert_eq!(out, vec!["f64:4", "f64:256", "f64:2.5", "f64:3"]);
}

#[test]
fn output_stream_kinds() {
    let (_, out) = run("int main() { output(7); output(2.5); outputb(65); return 0; }");
    assert_eq!(out, vec!["i64:7", "f64:2.5", "byte:65"]);
}

#[test]
fn else_if_chain_runs() {
    let src = "int classify(int x) {\n\
                 if (x < 0) { return 0 - 1; } else if (x == 0) { return 0; } else if (x < 10) { return 1; } else { return 2; }\n\
               }\n\
               int main() { return classify(-5) + classify(0) + classify(5) + classify(50); }";
    assert_eq!(run_ret(src), 2);
}

#[test]
fn scoping_shadows() {
    assert_eq!(run_ret("int main() { int x = 1; if (1) { int x = 5; output(x); } return x; }"), 1);
}

#[test]
fn division_by_zero_traps() {
    let m = flowery_lang::compile("t", "int main() { int z = 0; return 5 / z; }").unwrap();
    let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
    assert!(matches!(r.status, ExecStatus::Trapped(flowery_ir::interp::TrapKind::DivFault)));
}

#[test]
fn dead_code_after_return_is_tolerated() {
    assert_eq!(run_ret("int main() { return 1; output(9); }"), 1);
}

#[test]
fn void_function_and_implicit_return() {
    assert_eq!(run_ret("void side() { output(1); }\nint main() { side(); }"), 0);
}

#[test]
fn compile_errors_are_reported() {
    for (src, frag) in [
        ("int main() { return y; }", "unknown identifier"),
        ("int main() { float f = 1.5; int x = f; return x; }", "implicit float"),
        ("int main() { int x = 1; int x = 2; return x; }", "duplicate declaration"),
        ("void f() { }", "no main"),
        ("int main() { break; }", "break outside loop"),
        ("int main() { return g(1); }", "unknown function"),
        ("int f(int a) { return a; } int main() { return f(); }", "expects 1 arguments"),
        ("int main() { int a[3]; a = 1; return 0; }", "cannot assign to array"),
        ("int main() { int x = 0; return x[0]; }", "is a scalar"),
    ] {
        let e = flowery_lang::compile("t", src).unwrap_err();
        assert!(e.msg.contains(frag), "source {src:?}: expected {frag:?} in {:?}", e.msg);
    }
}

#[test]
fn nested_loops_matrix_multiply() {
    let src = "global int a[4] = {1, 2, 3, 4};\n\
               global int b[4] = {5, 6, 7, 8};\n\
               global int c[4];\n\
               int main() {\n\
                 int i; int j; int k;\n\
                 for (i = 0; i < 2; i = i + 1) {\n\
                   for (j = 0; j < 2; j = j + 1) {\n\
                     int s = 0;\n\
                     for (k = 0; k < 2; k = k + 1) { s = s + a[i * 2 + k] * b[k * 2 + j]; }\n\
                     c[i * 2 + j] = s;\n\
                   }\n\
                 }\n\
                 return c[0] * 1000 + c[1] * 100 + c[2] * 10 + c[3];\n\
               }";
    // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
    assert_eq!(run_ret(src), 19 * 1000 + 22 * 100 + 43 * 10 + 50);
}

#[test]
fn deep_loop_does_not_overflow_stack() {
    // Locals declared inside loops must be hoisted to the entry block.
    assert_eq!(
        run_ret("int main() { int i; int s = 0; for (i = 0; i < 100000; i = i + 1) { int t = i % 3; s = s + t; } return s % 1000; }"),
        {
            let mut s = 0i64;
            for i in 0..100000 {
                s += i % 3;
            }
            s % 1000
        }
    );
}

#[test]
fn compound_assignment_operators() {
    assert_eq!(
        run_ret("int main() { int x = 10; x += 5; x -= 3; x *= 2; x /= 4; x %= 4; return x; }"),
        ((10 + 5 - 3) * 2 / 4) % 4
    );
    assert_eq!(run_ret("int main() { int a[3]; a[0] = 4; a[0] += 6; a[0] *= 2; return a[0]; }"), 20);
    assert_eq!(
        run_ret(
            "global int g[2];\n\
             int main() { int i; for (i = 0; i < 5; i += 1) { g[i % 2] += i; } return g[0] * 100 + g[1]; }"
        ),
        (2 + 4) * 100 + (1 + 3)
    );
    let (_, out) = run("int main() { float f = 2.0; f *= 1.5; f += 0.5; output(f); return 0; }");
    assert_eq!(out, vec!["f64:3.5"]);
}

#[test]
fn compound_assignment_in_for_step_and_while() {
    assert_eq!(
        run_ret("int main() { int s = 0; int i; for (i = 1; i <= 10; i += 2) { s += i; } return s; }"),
        1 + 3 + 5 + 7 + 9
    );
    assert_eq!(
        run_ret("int main() { int x = 64; int n = 0; while (x > 1) { x /= 2; n += 1; } return n; }"),
        6
    );
}
