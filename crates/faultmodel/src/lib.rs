//! # flowery-faultmodel
//!
//! Pluggable fault models and modeled hardware detectors.
//!
//! A [`FaultModel`] turns `(seed, trial_index, site count)` into a concrete
//! fault spec for either injection layer, drawing deterministically from
//! the per-trial RNG stream. The default [`SingleBitReg`] model reproduces
//! the original hard-wired injector draw-for-draw, so campaigns under it
//! are bit-identical to the pre-refactor harness (pinned by the
//! differential tests in `flowery-inject`).
//!
//! A [`DetectorSpec`] is a cheap *modeled* hardware detector (register
//! parity, control-flow signatures) that runs conceptually alongside the
//! software protection: it converts would-be SDCs whose fault class it
//! covers into detections, at a fixed modeled runtime overhead. Detectors
//! compose — a campaign carries a set of them.
//!
//! The registry of known models and detectors is hashed into
//! [`registry_hash`], which the `flowery-dist` handshake compares so
//! coordinator/worker builds with divergent model sets refuse to pair.

use flowery_backend::{AsmFaultSpec, FaultDest};
use flowery_ir::interp::{FaultEffect, FaultSpec};
use rand::rngs::SmallRng;
use rand::{splitmix64, Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Layer-domain separators folded into per-trial seeds so the IR and
/// assembly campaigns over the same module explore independent streams.
pub const IR_STREAM: u64 = 0x49_52;
pub const ASM_STREAM: u64 = 0x41_53_4D;

/// Per-trial RNG: mixes the base seed, a stream tag, and the trial index
/// through SplitMix64 so each trial's randomness is independent of how
/// trials are sharded across threads or batches.
pub fn trial_rng(seed: u64, stream: u64, trial_index: u64) -> SmallRng {
    let mixed = splitmix64(seed ^ splitmix64(stream) ^ splitmix64(trial_index.wrapping_add(1)));
    SmallRng::seed_from_u64(mixed)
}

/// The architectural state a fault perturbs — the granularity at which
/// modeled hardware detectors decide coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A register/datapath value (the classic model).
    Reg,
    /// Condition flags / branch predicate state.
    Flags,
    /// A memory cell.
    Mem,
    /// A control-flow edge (wrong-direction or wild jump).
    Control,
}

/// A deterministic fault sampler. The site and bit draws are common to
/// every model (and come first, preserving the legacy stream layout);
/// [`FaultModel::payload`] then draws whatever else the model needs.
pub trait FaultModel {
    /// The state class this model's faults primarily perturb.
    fn class(&self) -> FaultClass;

    /// Draw the model-specific payload: the optional second bit and the
    /// effect. Any extra randomness must be drawn from `rng` *after* the
    /// common site/bit draws, which the caller has already made.
    fn payload(&self, rng: &mut SmallRng) -> (Option<u32>, FaultEffect);

    /// The fault injected by IR-level trial `trial_index` — a pure
    /// function of `(seed, trial_index, sites)`.
    fn sample_ir(&self, seed: u64, trial_index: u64, sites: u64) -> FaultSpec {
        let mut rng = trial_rng(seed, IR_STREAM, trial_index);
        let site_index = rng.gen_range(0..sites);
        let bit: u32 = rng.gen_range(0..64);
        let (second_bit, effect) = self.payload(&mut rng);
        FaultSpec { site_index, bit, second_bit, effect, scope: None }
    }

    /// The fault injected by assembly-level trial `trial_index`.
    fn sample_asm(&self, seed: u64, trial_index: u64, sites: u64) -> AsmFaultSpec {
        let mut rng = trial_rng(seed, ASM_STREAM, trial_index);
        let site_index = rng.gen_range(0..sites);
        let bit: u32 = rng.gen_range(0..64);
        let (second_bit, effect) = self.payload(&mut rng);
        AsmFaultSpec { site_index, bit, second_bit, effect, scope: None }
    }
}

/// The classic LLFI/PIN-style single-bit destination flip — the default,
/// bit-identical to the pre-`FaultModel` injector.
pub struct SingleBitReg;

impl FaultModel for SingleBitReg {
    fn class(&self) -> FaultClass {
        FaultClass::Reg
    }
    fn payload(&self, _rng: &mut SmallRng) -> (Option<u32>, FaultEffect) {
        (None, FaultEffect::Bits)
    }
}

/// Two independent bit flips in the same destination (the emerging
/// multi-bit model the paper cites in §2.2) — bit-identical to the legacy
/// `double_bit` switch.
pub struct DoubleBitReg;

impl FaultModel for DoubleBitReg {
    fn class(&self) -> FaultClass {
        FaultClass::Reg
    }
    fn payload(&self, rng: &mut SmallRng) -> (Option<u32>, FaultEffect) {
        (Some(rng.gen_range(0..64)), FaultEffect::Bits)
    }
}

/// A contiguous burst of `width` adjacent flipped bits (multi-bit upset).
pub struct MultiBitUpset {
    pub width: u8,
}

impl FaultModel for MultiBitUpset {
    fn class(&self) -> FaultClass {
        FaultClass::Reg
    }
    fn payload(&self, _rng: &mut SmallRng) -> (Option<u32>, FaultEffect) {
        (None, FaultEffect::Burst { width: self.width })
    }
}

/// Condition-state corruption: the branch-feeding low bit at the IR
/// level, the condition flags at the assembly level.
pub struct FlagsPc;

impl FaultModel for FlagsPc {
    fn class(&self) -> FaultClass {
        FaultClass::Flags
    }
    fn payload(&self, _rng: &mut SmallRng) -> (Option<u32>, FaultEffect) {
        (None, FaultEffect::Flags)
    }
}

/// A single-bit flip in a memory cell at a deterministic address derived
/// from an extra draw; the site instruction's own result stays intact.
pub struct MemCell;

impl FaultModel for MemCell {
    fn class(&self) -> FaultClass {
        FaultClass::Mem
    }
    fn payload(&self, rng: &mut SmallRng) -> (Option<u32>, FaultEffect) {
        (None, FaultEffect::Mem { offset: rng.next_u64() })
    }
}

/// Control-flow edge corruption: after the site executes, control is
/// redirected to a deterministic wrong target (SET-on-branch-logic model).
pub struct ControlFlowEdge;

impl FaultModel for ControlFlowEdge {
    fn class(&self) -> FaultClass {
        FaultClass::Control
    }
    fn payload(&self, rng: &mut SmallRng) -> (Option<u32>, FaultEffect) {
        (None, FaultEffect::Jump { target: rng.next_u64() })
    }
}

/// A value-typed handle on a registered fault model: `Copy`, comparable,
/// string-serializable — the form configs, checkpoints, and wire formats
/// carry. Dispatches statically to the trait implementations above.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ModelSpec {
    /// `single-bit-reg` — the default, bit-identical to the legacy injector.
    #[default]
    SingleBitReg,
    /// `double-bit-reg` — two independent flips in one destination.
    DoubleBitReg,
    /// `multi-bit-N` — a burst of N adjacent flips (2 ≤ N ≤ 64).
    MultiBit(u8),
    /// `flags-pc` — condition-state corruption.
    FlagsPc,
    /// `mem-cell` — a memory-cell flip.
    MemCell,
    /// `control-flow` — branch-target redirect.
    ControlFlow,
}

impl ModelSpec {
    fn with_model<R>(self, f: impl FnOnce(&dyn FaultModel) -> R) -> R {
        match self {
            ModelSpec::SingleBitReg => f(&SingleBitReg),
            ModelSpec::DoubleBitReg => f(&DoubleBitReg),
            ModelSpec::MultiBit(w) => f(&MultiBitUpset { width: w }),
            ModelSpec::FlagsPc => f(&FlagsPc),
            ModelSpec::MemCell => f(&MemCell),
            ModelSpec::ControlFlow => f(&ControlFlowEdge),
        }
    }

    /// The state class this model's faults primarily perturb.
    pub fn class(self) -> FaultClass {
        self.with_model(|m| m.class())
    }

    /// See [`FaultModel::sample_ir`].
    pub fn sample_ir(self, seed: u64, trial_index: u64, sites: u64) -> FaultSpec {
        self.with_model(|m| m.sample_ir(seed, trial_index, sites))
    }

    /// See [`FaultModel::sample_asm`].
    pub fn sample_asm(self, seed: u64, trial_index: u64, sites: u64) -> AsmFaultSpec {
        self.with_model(|m| m.sample_asm(seed, trial_index, sites))
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelSpec::SingleBitReg => f.write_str("single-bit-reg"),
            ModelSpec::DoubleBitReg => f.write_str("double-bit-reg"),
            ModelSpec::MultiBit(w) => write!(f, "multi-bit-{w}"),
            ModelSpec::FlagsPc => f.write_str("flags-pc"),
            ModelSpec::MemCell => f.write_str("mem-cell"),
            ModelSpec::ControlFlow => f.write_str("control-flow"),
        }
    }
}

impl FromStr for ModelSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<ModelSpec, String> {
        match s {
            "single-bit-reg" => Ok(ModelSpec::SingleBitReg),
            "double-bit-reg" => Ok(ModelSpec::DoubleBitReg),
            "flags-pc" => Ok(ModelSpec::FlagsPc),
            "mem-cell" => Ok(ModelSpec::MemCell),
            "control-flow" => Ok(ModelSpec::ControlFlow),
            other => {
                if let Some(w) = other.strip_prefix("multi-bit-") {
                    let w: u8 = w.parse().map_err(|_| format!("bad burst width in `{other}`"))?;
                    if (2..=64).contains(&w) {
                        return Ok(ModelSpec::MultiBit(w));
                    }
                    return Err(format!("burst width must be 2..=64, got {w}"));
                }
                Err(format!("unknown fault model `{other}` (known: {})", known_model_names()))
            }
        }
    }
}

impl Serialize for ModelSpec {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for ModelSpec {
    fn deserialize_value(v: &serde::Value) -> Result<ModelSpec, serde::Error> {
        let s = v.as_str().ok_or_else(|| serde::Error::expected("fault-model string", v))?;
        s.parse().map_err(serde::Error)
    }
}

/// A cheap modeled hardware detector. Detectors never change a trial's
/// execution; they post-classify it: a would-be SDC whose injected fault
/// falls in a class the detector covers becomes a detection instead, and
/// each detector charges a fixed modeled runtime overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorSpec {
    /// `parity` — per-register parity bit: catches register-class faults
    /// with an odd number of flipped bits.
    Parity,
    /// `cf-sig` — control-flow signature checking: catches control-class
    /// faults (illegal edges).
    CfSig,
}

impl DetectorSpec {
    /// Would this detector have fired on a fault of `class` flipping
    /// `flips` bits?
    pub fn catches(self, class: FaultClass, flips: u32) -> bool {
        match self {
            DetectorSpec::Parity => class == FaultClass::Reg && flips % 2 == 1,
            DetectorSpec::CfSig => class == FaultClass::Control,
        }
    }

    /// Modeled runtime overhead, in permille of baseline cycles.
    pub fn overhead_permille(self) -> u64 {
        match self {
            DetectorSpec::Parity => 40,
            DetectorSpec::CfSig => 70,
        }
    }
}

impl fmt::Display for DetectorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorSpec::Parity => f.write_str("parity"),
            DetectorSpec::CfSig => f.write_str("cf-sig"),
        }
    }
}

impl FromStr for DetectorSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<DetectorSpec, String> {
        match s {
            "parity" => Ok(DetectorSpec::Parity),
            "cf-sig" => Ok(DetectorSpec::CfSig),
            other => Err(format!("unknown detector `{other}` (known: parity, cf-sig)")),
        }
    }
}

impl Serialize for DetectorSpec {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for DetectorSpec {
    fn deserialize_value(v: &serde::Value) -> Result<DetectorSpec, serde::Error> {
        let s = v.as_str().ok_or_else(|| serde::Error::expected("detector string", v))?;
        s.parse().map_err(serde::Error)
    }
}

/// True if any detector in the set fires on a `(class, flips)` fault.
pub fn any_catches(detectors: &[DetectorSpec], class: FaultClass, flips: u32) -> bool {
    detectors.iter().any(|d| d.catches(class, flips))
}

/// Summed modeled overhead of a detector set, in permille.
pub fn detector_overhead_permille(detectors: &[DetectorSpec]) -> u64 {
    detectors.iter().map(|d| d.overhead_permille()).sum()
}

/// Number of state bits an injected fault flips, for parity-style
/// coverage decisions.
pub fn flip_count(second_bit: Option<u32>, effect: FaultEffect) -> u32 {
    match effect {
        FaultEffect::Bits | FaultEffect::Flags => 1 + second_bit.is_some() as u32,
        FaultEffect::Burst { width } => width as u32,
        FaultEffect::Mem { .. } | FaultEffect::Jump { .. } => 1,
    }
}

/// The state class an IR-level injection actually perturbed. IR results
/// are virtual registers, so value effects are register-class.
pub fn classify_ir_fault(effect: FaultEffect) -> FaultClass {
    match effect {
        FaultEffect::Bits | FaultEffect::Burst { .. } => FaultClass::Reg,
        FaultEffect::Flags => FaultClass::Flags,
        FaultEffect::Mem { .. } => FaultClass::Mem,
        FaultEffect::Jump { .. } => FaultClass::Control,
    }
}

/// The state class an assembly-level injection actually perturbed, given
/// the injected instruction's architected destination — a bit flip whose
/// destination is the flags register or a store's memory cell is covered
/// by flags/memory protection, not register parity.
pub fn classify_asm_fault(effect: FaultEffect, dest: FaultDest) -> FaultClass {
    match effect {
        FaultEffect::Bits | FaultEffect::Burst { .. } => match dest {
            FaultDest::Gpr(..) | FaultDest::None => FaultClass::Reg,
            FaultDest::Flags => FaultClass::Flags,
            FaultDest::MemVal(_) => FaultClass::Mem,
        },
        FaultEffect::Flags => FaultClass::Flags,
        FaultEffect::Mem { .. } => FaultClass::Mem,
        FaultEffect::Jump { .. } => FaultClass::Control,
    }
}

/// Every model shipped with this build (one representative burst width
/// for the parameterized family), in registry order.
pub const REGISTERED_MODELS: &[ModelSpec] = &[
    ModelSpec::SingleBitReg,
    ModelSpec::DoubleBitReg,
    ModelSpec::MultiBit(4),
    ModelSpec::FlagsPc,
    ModelSpec::MemCell,
    ModelSpec::ControlFlow,
];

/// Every detector shipped with this build, in registry order.
pub const REGISTERED_DETECTORS: &[DetectorSpec] = &[DetectorSpec::Parity, DetectorSpec::CfSig];

fn known_model_names() -> String {
    let names: Vec<String> = REGISTERED_MODELS.iter().map(|m| m.to_string()).collect();
    names.join(", ")
}

/// FNV-1a over the registry's model and detector names. Two builds whose
/// hashes differ sample or classify faults differently; the dist
/// handshake refuses to pair them.
pub fn registry_hash() -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let eat = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h = (*h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    };
    for m in REGISTERED_MODELS {
        eat(&mut h, m.to_string().as_bytes());
        eat(&mut h, b"\n");
    }
    eat(&mut h, b"--\n");
    for d in REGISTERED_DETECTORS {
        eat(&mut h, d.to_string().as_bytes());
        eat(&mut h, b"\n");
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names_round_trip() {
        for &m in REGISTERED_MODELS {
            let s = m.to_string();
            assert_eq!(s.parse::<ModelSpec>().unwrap(), m, "{s}");
        }
        assert_eq!("multi-bit-8".parse::<ModelSpec>().unwrap(), ModelSpec::MultiBit(8));
        assert!("multi-bit-1".parse::<ModelSpec>().is_err());
        assert!("multi-bit-65".parse::<ModelSpec>().is_err());
        assert!("no-such-model".parse::<ModelSpec>().is_err());
        for &d in REGISTERED_DETECTORS {
            assert_eq!(d.to_string().parse::<DetectorSpec>().unwrap(), d);
        }
        assert!("no-such-detector".parse::<DetectorSpec>().is_err());
    }

    #[test]
    fn serde_round_trip_is_string_typed() {
        for &m in REGISTERED_MODELS {
            let v = m.serialize_value();
            assert!(v.as_str().is_some());
            assert_eq!(ModelSpec::deserialize_value(&v).unwrap(), m);
        }
        for &d in REGISTERED_DETECTORS {
            let v = d.serialize_value();
            assert_eq!(DetectorSpec::deserialize_value(&v).unwrap(), d);
        }
    }

    #[test]
    fn samples_are_pure_and_stream_separated() {
        for &m in REGISTERED_MODELS {
            for trial in [0u64, 1, 7, 2999] {
                let a = m.sample_ir(42, trial, 100);
                let b = m.sample_ir(42, trial, 100);
                assert_eq!(a, b);
                assert!(a.site_index < 100 && a.bit < 64);
                let aa = m.sample_asm(42, trial, 100);
                let ab = m.sample_asm(42, trial, 100);
                assert_eq!(aa, ab);
            }
            // Layers draw from distinct streams.
            let ir = m.sample_ir(42, 0, 1000);
            let asm = m.sample_asm(42, 0, 1000);
            assert!(ir.site_index != asm.site_index || ir.bit != asm.bit);
        }
    }

    #[test]
    fn default_model_matches_legacy_draw_order() {
        // Reproduce the pre-refactor injector inline and compare.
        for trial in [0u64, 3, 11, 999] {
            let mut rng = trial_rng(42, IR_STREAM, trial);
            let legacy = FaultSpec {
                site_index: rng.gen_range(0..500),
                bit: rng.gen_range(0..64),
                second_bit: None,
                effect: FaultEffect::Bits,
                scope: None,
            };
            assert_eq!(ModelSpec::SingleBitReg.sample_ir(42, trial, 500), legacy);

            let mut rng = trial_rng(42, IR_STREAM, trial);
            let legacy_double = FaultSpec {
                site_index: rng.gen_range(0..500),
                bit: rng.gen_range(0..64),
                second_bit: Some(rng.gen_range(0..64)),
                effect: FaultEffect::Bits,
                scope: None,
            };
            assert_eq!(ModelSpec::DoubleBitReg.sample_ir(42, trial, 500), legacy_double);
        }
    }

    #[test]
    fn models_produce_their_effects() {
        let s = ModelSpec::MultiBit(4).sample_ir(1, 0, 10);
        assert_eq!(s.effect, FaultEffect::Burst { width: 4 });
        let s = ModelSpec::FlagsPc.sample_asm(1, 0, 10);
        assert_eq!(s.effect, FaultEffect::Flags);
        assert!(matches!(ModelSpec::MemCell.sample_ir(1, 0, 10).effect, FaultEffect::Mem { .. }));
        assert!(matches!(ModelSpec::ControlFlow.sample_asm(1, 0, 10).effect, FaultEffect::Jump { .. }));
    }

    #[test]
    fn detectors_cover_their_classes() {
        assert!(DetectorSpec::Parity.catches(FaultClass::Reg, 1));
        assert!(!DetectorSpec::Parity.catches(FaultClass::Reg, 2), "even flips evade parity");
        assert!(!DetectorSpec::Parity.catches(FaultClass::Control, 1));
        assert!(DetectorSpec::CfSig.catches(FaultClass::Control, 1));
        assert!(!DetectorSpec::CfSig.catches(FaultClass::Mem, 1));
        assert!(any_catches(REGISTERED_DETECTORS, FaultClass::Control, 2));
        assert!(!any_catches(&[], FaultClass::Reg, 1));
        assert_eq!(
            detector_overhead_permille(REGISTERED_DETECTORS),
            DetectorSpec::Parity.overhead_permille() + DetectorSpec::CfSig.overhead_permille()
        );
    }

    #[test]
    fn classification_tracks_destination() {
        use flowery_backend::Reg;
        assert_eq!(classify_ir_fault(FaultEffect::Bits), FaultClass::Reg);
        assert_eq!(classify_ir_fault(FaultEffect::Jump { target: 3 }), FaultClass::Control);
        assert_eq!(classify_asm_fault(FaultEffect::Bits, FaultDest::Gpr(Reg::Rax, 8)), FaultClass::Reg);
        assert_eq!(classify_asm_fault(FaultEffect::Bits, FaultDest::Flags), FaultClass::Flags);
        assert_eq!(classify_asm_fault(FaultEffect::Bits, FaultDest::MemVal(8)), FaultClass::Mem);
        assert_eq!(classify_asm_fault(FaultEffect::Flags, FaultDest::Gpr(Reg::Rax, 8)), FaultClass::Flags);
        assert_eq!(flip_count(None, FaultEffect::Bits), 1);
        assert_eq!(flip_count(Some(3), FaultEffect::Bits), 2);
        assert_eq!(flip_count(None, FaultEffect::Burst { width: 4 }), 4);
    }

    #[test]
    fn registry_hash_is_stable_within_a_build() {
        assert_eq!(registry_hash(), registry_hash());
        assert_ne!(registry_hash(), 0);
    }
}
