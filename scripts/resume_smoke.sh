#!/usr/bin/env bash
# Resume smoke test: a campaign interrupted with SIGINT and resumed with
# `--resume` must (a) re-execute no golden run and re-capture no snapshot
# set — the persisted `<checkpoint>.snaps/` store serves them all — and
# (b) leave a compacted checkpoint byte-identical to an uninterrupted
# run. Also checks that `--no-snapshots` leaves no `.snaps` directory.
set -euo pipefail

BIN=${FLOWERY_BIN:-target/release/flowery}
DIR=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

# Enough batches that the SIGINT below lands mid-run (the run still
# passes if a fast machine finishes first — that's just a pure replay).
ARGS=(crc32 quicksort --tiny --trials 20000 --batch 50 --seed 99)

echo "resume-smoke: uninterrupted reference"
"$BIN" campaign "${ARGS[@]}" --checkpoint "$DIR/ref.jsonl" \
    --metrics-json "$DIR/ref-metrics.json" >/dev/null 2>"$DIR/ref.log"
grep -q '"goldens_run": 0' "$DIR/ref-metrics.json" \
    || { echo "reference run executed plain goldens"; cat "$DIR/ref-metrics.json"; exit 1; }

echo "resume-smoke: interrupted run"
"$BIN" campaign "${ARGS[@]}" --checkpoint "$DIR/ckpt.jsonl" \
    >/dev/null 2>"$DIR/int.log" &
RUN=$!

# Every unit must have captured (and persisted) its snapshot set before
# the interrupt, or the resume legitimately captures the stragglers. A
# unit's first checkpointed batch implies its set was captured, so poll
# until every unit appears in the log, then SIGINT (graceful drain).
UNITS=""
for _ in $(seq 300); do
    UNITS=$(grep -oE '\[harness\] [0-9]+ units' "$DIR/int.log" | head -1 | grep -oE '[0-9]+' || true)
    [ -n "$UNITS" ] && break
    sleep 0.1
done
[ -n "$UNITS" ] || { echo "never saw the unit count"; cat "$DIR/int.log"; exit 1; }
for _ in $(seq 600); do
    kill -0 "$RUN" 2>/dev/null || break
    SEEN=$(grep -oE '"unit":\{[^}]*\}' "$DIR/ckpt.jsonl" 2>/dev/null | sort -u | wc -l || true)
    [ "$SEEN" -ge "$UNITS" ] && break
    sleep 0.05
done
if kill -0 "$RUN" 2>/dev/null; then
    echo "resume-smoke: SIGINT after all $UNITS units checkpointed a batch"
    kill -INT "$RUN"
fi
wait "$RUN" || true
test -d "$DIR/ckpt.jsonl.snaps" || { echo "no snapshot store was persisted"; exit 1; }

echo "resume-smoke: resume"
"$BIN" campaign "${ARGS[@]}" --checkpoint "$DIR/ckpt.jsonl" --resume \
    --metrics-json "$DIR/resume-metrics.json" >/dev/null 2>"$DIR/resume.log"

# The whole point: the resumed run loads every snapshot set from disk.
grep -q '"snap_captures": 0' "$DIR/resume-metrics.json" \
    || { echo "resume re-captured snapshot sets"; cat "$DIR/resume-metrics.json"; exit 1; }
grep -q '"goldens_run": 0' "$DIR/resume-metrics.json" \
    || { echo "resume re-executed golden runs"; cat "$DIR/resume-metrics.json"; exit 1; }

cmp "$DIR/ref.jsonl" "$DIR/ckpt.jsonl"
echo "resume-smoke: resumed checkpoint is byte-identical to the reference"

echo "resume-smoke: --no-snapshots leaves no store behind"
"$BIN" campaign "${ARGS[@]}" --no-snapshots --checkpoint "$DIR/nosnap.jsonl" >/dev/null 2>&1
if [ -e "$DIR/nosnap.jsonl.snaps" ]; then
    echo "--no-snapshots left an orphan .snaps directory"
    exit 1
fi
echo "resume-smoke: ok"
