#!/usr/bin/env bash
# Explore smoke gate: a trimmed design-space sweep — 2 workloads x 3 fault
# models x {Raw, Id, Flowery} x parity on/off — asserting that every
# per-workload Pareto frontier is non-empty, sorted by ascending cost with
# strictly increasing coverage, dominates every off-frontier point, and
# that the whole report is byte-deterministic across two runs (the second
# with a different thread count and snapshots disabled, which must not
# change results either).
set -euo pipefail

BIN=${FLOWERY_BIN:-target/release/flowery}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

ARGS=(crc32 quicksort --tiny --trials 200
      --models single-bit-reg,multi-bit-4,control-flow
      --detectors none,parity
      --levels 1.0)

"$BIN" explore "${ARGS[@]}" --threads 2 --out "$DIR/a" > "$DIR/a.table"
"$BIN" explore "${ARGS[@]}" --threads 3 --no-snapshots --out "$DIR/b" > "$DIR/b.table"

diff -u "$DIR/a/explore.json" "$DIR/b/explore.json" \
    || { echo "explore-smoke FAIL: report not deterministic" >&2; exit 1; }
diff -u "$DIR/a.table" "$DIR/b.table" \
    || { echo "explore-smoke FAIL: rendered table not deterministic" >&2; exit 1; }

python3 - "$DIR/a" <<'EOF'
import json, pathlib, sys

root = pathlib.Path(sys.argv[1])
errors = []
files = sorted(root.glob("explore_*.json"))
if len(files) != 2:
    errors.append(f"expected 2 per-workload files, found {len(files)}")

for path in files:
    w = json.loads(path.read_text())
    bench = w["bench"]
    if len(w["models"]) != 3:
        errors.append(f"{bench}: expected 3 models, got {len(w['models'])}")
    for m in w["models"]:
        model, frontier, points = m["fault_model"], m["frontier"], m["points"]
        if not frontier:
            errors.append(f"{bench}/{model}: empty frontier")
            continue
        costs = [p["cost_permille"] for p in frontier]
        covs = [p["coverage"] for p in frontier]
        if costs != sorted(costs):
            errors.append(f"{bench}/{model}: frontier not monotone in cost: {costs}")
        if any(b <= a for a, b in zip(covs, covs[1:])):
            errors.append(f"{bench}/{model}: frontier coverage not strictly increasing: {covs}")
        # Raw at zero detectors is the origin: cost 0 must open the frontier.
        if costs[0] != 0:
            errors.append(f"{bench}/{model}: frontier does not start at cost 0: {costs}")
        # Every off-frontier point must be dominated by some frontier point.
        for p in points:
            if p["on_frontier"]:
                continue
            if not any(f["cost_permille"] <= p["cost_permille"] and f["coverage"] >= p["coverage"]
                       for f in frontier):
                errors.append(f"{bench}/{model}: non-dominated point off frontier")
        # parity on/off over 3 variants = 6 points per model.
        if len(points) != 6:
            errors.append(f"{bench}/{model}: expected 6 points, got {len(points)}")

for e in errors:
    print(f"explore-smoke FAIL: {e}", file=sys.stderr)
sys.exit(1 if errors else 0)
EOF

echo "explore-smoke: all gates passed"
