#!/usr/bin/env bash
# Incremental-campaign smoke test: a baseline campaign over an
# out-of-tree program, then a one-function edit, then `flowery diff`.
# Asserts (a) exactly the changed region re-runs — one region per unit,
# 5 across the matrix — while everything else is reused, (b) a second
# diff against the composed checkpoint with the source unchanged re-runs
# nothing, and (c) the composed whole-program SDC estimate agrees with a
# from-scratch campaign of the edited program within the combined 95%
# Wilson intervals.
set -euo pipefail

BIN=${FLOWERY_BIN:-target/release/flowery}
DIR=$(mktemp -d)
cleanup() { rm -rf "$DIR"; }
trap cleanup EXIT

cat > "$DIR/probe.mc" <<'EOF'
int helper(int x) { return x * 3 + 1; }
int main() {
    int s = 0;
    int i;
    for (i = 0; i < 10; i = i + 1) { s = s + helper(i); }
    output(s);
    return 0;
}
EOF

ARGS=(--src "$DIR/probe.mc" --tiny --trials 2000 --batch 100 --seed 7 --threads 2)

echo "diff-smoke: baseline campaign"
"$BIN" campaign "${ARGS[@]}" --checkpoint "$DIR/base.jsonl" >/dev/null 2>&1

echo "diff-smoke: edit one function, diff against the baseline"
sed -i.bak 's/x \* 3 + 1/x * 3 + 2/' "$DIR/probe.mc"
"$BIN" diff "${ARGS[@]}" --baseline "$DIR/base.jsonl" --out "$DIR/composed.jsonl" \
    --metrics-json "$DIR/diff-metrics.json" > "$DIR/diff.out" 2>/dev/null

# One edited function, 5 units: exactly 5 of the 10 regions re-run.
grep -q '"regions_total": 10' "$DIR/diff-metrics.json" \
    || { echo "unexpected region count"; cat "$DIR/diff-metrics.json"; exit 1; }
grep -q '"regions_rerun": 5' "$DIR/diff-metrics.json" \
    || { echo "diff did not re-run exactly the changed region per unit"; cat "$DIR/diff-metrics.json"; exit 1; }
grep -q '"regions_reused": 5' "$DIR/diff-metrics.json" \
    || { echo "diff did not reuse the unchanged regions"; cat "$DIR/diff-metrics.json"; exit 1; }
grep -qE '"region_trials_saved": [1-9]' "$DIR/diff-metrics.json" \
    || { echo "diff saved no trials"; cat "$DIR/diff-metrics.json"; exit 1; }
echo "diff-smoke: 5/10 regions re-ran (the edited function, once per unit)"

echo "diff-smoke: second diff against the composed checkpoint is a no-op"
"$BIN" diff "${ARGS[@]}" --baseline "$DIR/composed.jsonl" \
    --metrics-json "$DIR/noop-metrics.json" >/dev/null 2>/dev/null
grep -q '"regions_rerun": 0' "$DIR/noop-metrics.json" \
    || { echo "no-op diff re-ran regions"; cat "$DIR/noop-metrics.json"; exit 1; }
grep -q '"trials": 0' "$DIR/noop-metrics.json" \
    || { echo "no-op diff executed trials"; cat "$DIR/noop-metrics.json"; exit 1; }

echo "diff-smoke: composed estimate vs from-scratch campaign (Wilson CI)"
"$BIN" campaign "${ARGS[@]}" --checkpoint "$DIR/scratch.jsonl" > "$DIR/scratch.out" 2>/dev/null
awk '/^probe\// { gsub(/%|pp/, ""); print $1, $3, $4 }' "$DIR/scratch.out" | sort > "$DIR/scratch.tsv"
awk '/^probe\/.* sdc / { gsub(/%|±|pp/, ""); print $1, $3, $4 }' "$DIR/diff.out" | sort > "$DIR/diff.tsv"
UNITS=$(wc -l < "$DIR/diff.tsv")
[ "$UNITS" -eq 5 ] || { echo "expected 5 composed units, saw $UNITS"; cat "$DIR/diff.out"; exit 1; }
join "$DIR/scratch.tsv" "$DIR/diff.tsv" | awk '
    { gap = $2 - $4; if (gap < 0) gap = -gap; tol = $3 + $5;
      printf "  %-28s scratch %6.2f%% ±%.2f  composed %6.2f%% ±%.2f\n", $1, $2, $3, $4, $5;
      if (gap > tol) { printf "  CI MISMATCH for %s: gap %.2f > combined ci %.2f\n", $1, gap, tol; bad = 1 } }
    END { exit bad }' \
    || { echo "composed estimate disagrees with the from-scratch campaign"; exit 1; }

echo "diff-smoke: ok"
