#!/usr/bin/env bash
# Execution-engine smoke test: the same campaign run under the
# decode-and-dispatch interpreter (`--executor interp`) and the
# threaded-code executor (`--executor compiled`, the default) must
# produce byte-identical trial results. Only the checkpoint header may
# differ — it records which engine produced the log as provenance.
set -euo pipefail

BIN=${FLOWERY_BIN:-target/release/flowery}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

ARGS=(crc32 quicksort --tiny --trials 120 --batch 30 --seed 4242)

echo "exec-smoke: campaign under --executor interp"
"$BIN" campaign "${ARGS[@]}" --executor interp \
    --checkpoint "$DIR/interp.jsonl" --metrics-json "$DIR/interp-metrics.json" >/dev/null

echo "exec-smoke: campaign under --executor compiled"
"$BIN" campaign "${ARGS[@]}" --executor compiled \
    --checkpoint "$DIR/compiled.jsonl" --metrics-json "$DIR/compiled-metrics.json" >/dev/null

# The metrics must attribute each run to the engine that produced it.
grep -q '"exec_mode": *"interp"' "$DIR/interp-metrics.json"
grep -q '"exec_mode": *"compiled"' "$DIR/compiled-metrics.json"
echo "exec-smoke: metrics attribute the engines correctly"

# Headers differ only in the recorded engine; every batch record — the
# actual trial outcomes — must match byte for byte.
cmp <(tail -n +2 "$DIR/interp.jsonl") <(tail -n +2 "$DIR/compiled.jsonl")
echo "exec-smoke: batch records are byte-identical across engines"

# A campaign begun under one engine must resume under the other: the
# header treats exec_mode as provenance, not schedule.
cp "$DIR/interp.jsonl" "$DIR/resume.jsonl"
"$BIN" campaign "${ARGS[@]}" --executor compiled --resume \
    --checkpoint "$DIR/resume.jsonl" >/dev/null
cmp <(tail -n +2 "$DIR/interp.jsonl") <(tail -n +2 "$DIR/resume.jsonl")
echo "exec-smoke: cross-engine resume leaves the records unchanged"
