#!/usr/bin/env bash
# Static-prune smoke test: `--static-prune` must (a) prove a nonzero
# number of (site, bit) pairs and actually skip trials on every
# benchmark, (b) leave per-unit results *identical* to the unpruned
# campaign — the virtual-benign design makes the Wilson CIs not merely
# overlapping but bit-equal — and (c) checkpoint with prune provenance:
# a `--resume` of a finished pruned run is a byte-identical pure replay,
# and a resume that drops (or adds) `--static-prune` is refused.
set -euo pipefail

BIN=${FLOWERY_BIN:-target/release/flowery}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

ARGS=(crc32 quicksort stringsearch --tiny --trials 2000 --batch 100 --seed 41)

echo "prune-smoke: unpruned reference"
"$BIN" campaign "${ARGS[@]}" --json \
    --metrics-json "$DIR/full-metrics.json" >"$DIR/full.json" 2>/dev/null
grep -q '"bits_pruned_trials_saved": 0' "$DIR/full-metrics.json" \
    || { echo "unpruned run claims pruned trials"; cat "$DIR/full-metrics.json"; exit 1; }

echo "prune-smoke: pruned run"
"$BIN" campaign "${ARGS[@]}" --static-prune --json --checkpoint "$DIR/ckpt.jsonl" \
    --metrics-json "$DIR/pruned-metrics.json" >"$DIR/pruned.json" 2>/dev/null

python3 - "$DIR" <<'EOF'
import json, sys
d = sys.argv[1]
metrics = json.load(open(f"{d}/pruned-metrics.json"))
assert metrics["bits_proven_masked"] > 0, "no (site, bit) pairs proven masked"
assert metrics["bits_pruned_trials_saved"] > 0, "no trials pruned"
full = json.load(open(f"{d}/full.json"))
pruned = json.load(open(f"{d}/pruned.json"))
assert len(full) == len(pruned) and full, f"unit count mismatch: {len(full)} vs {len(pruned)}"
asm_pruned = 0
for f, p in zip(full, pruned):
    assert f["key"] == p["key"], (f["key"], p["key"])
    if f["key"]["layer"] == "Asm":
        assert p["pruned"] > 0, f'{f["key"]}: asm unit pruned nothing'
        asm_pruned += p["pruned"]
    else:
        assert p["pruned"] == 0, f'{f["key"]}: non-asm unit claims pruned trials'
    fx = {k: v for k, v in f.items() if k != "pruned"}
    px = {k: v for k, v in p.items() if k != "pruned"}
    assert fx == px, f'{f["key"]}: pruned unit result diverged from the unpruned reference'
print(f"prune-smoke: {len(full)} units identical, "
      f'{metrics["bits_proven_masked"]} pairs proven, {asm_pruned} trials pruned')
EOF

echo "prune-smoke: resume of the finished pruned run is a pure replay"
cp "$DIR/ckpt.jsonl" "$DIR/ckpt.before"
"$BIN" campaign "${ARGS[@]}" --static-prune --resume --checkpoint "$DIR/ckpt.jsonl" \
    --metrics-json "$DIR/resume-metrics.json" >/dev/null 2>&1
cmp "$DIR/ckpt.before" "$DIR/ckpt.jsonl" \
    || { echo "resume rewrote the pruned checkpoint"; exit 1; }
# Replayed trials still count in `trials`; pure replay means nothing
# executed (every batch — IR and pruned Asm alike — came from the log).
grep -q '"exec_insts": 0' "$DIR/resume-metrics.json" \
    || { echo "resume of a finished run executed instructions"; cat "$DIR/resume-metrics.json"; exit 1; }
grep -q '"goldens_run": 0' "$DIR/resume-metrics.json" \
    || { echo "resume re-executed golden runs"; cat "$DIR/resume-metrics.json"; exit 1; }

echo "prune-smoke: mixed-prune resume is refused"
if "$BIN" campaign "${ARGS[@]}" --resume --checkpoint "$DIR/ckpt.jsonl" \
    >/dev/null 2>"$DIR/mixed.log"; then
    echo "resume without --static-prune accepted a pruned checkpoint"
    exit 1
fi
grep -q "static_prune" "$DIR/mixed.log" \
    || { echo "refusal does not name static_prune"; cat "$DIR/mixed.log"; exit 1; }

echo "prune-smoke: ok"
