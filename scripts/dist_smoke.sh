#!/usr/bin/env bash
# Distributed-execution smoke test: a coordinator plus two worker
# processes on localhost must finish the campaign and leave a checkpoint
# byte-identical to a single-process `flowery campaign` of the same plan.
set -euo pipefail

BIN=${FLOWERY_BIN:-target/release/flowery}
DIR=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

ARGS=(crc32 quicksort --tiny --trials 120 --batch 30 --seed 4242)

echo "dist-smoke: single-process reference"
"$BIN" campaign "${ARGS[@]}" --checkpoint "$DIR/local.jsonl" >/dev/null

PORT=$((20000 + RANDOM % 20000))
echo "dist-smoke: coordinator + 2 workers on 127.0.0.1:$PORT"
"$BIN" serve "${ARGS[@]}" --addr "127.0.0.1:$PORT" --heartbeat-ms 300 \
    --checkpoint "$DIR/dist.jsonl" >/dev/null &
SERVE=$!
"$BIN" work --connect "127.0.0.1:$PORT" &
W1=$!
"$BIN" work --connect "127.0.0.1:$PORT" &
W2=$!
wait "$W1"
wait "$W2"
wait "$SERVE"

cmp "$DIR/local.jsonl" "$DIR/dist.jsonl"
echo "dist-smoke: checkpoints are byte-identical"
