#!/usr/bin/env bash
# Static-lint smoke gate: run `flowery lint` across all 16 workloads at
# each pass config and fail on any unexpected finding class at
# Flowery-100.
#
# Gates:
#   raw         — no IR invariant findings (no checkers, nothing to lint);
#   id-100      — must run; findings are expected (foldable checkers are
#                 exactly the comparison penetration being demonstrated);
#   flowery-100 — zero branch predictions anywhere; zero comparison
#                 predictions and zero findings everywhere EXCEPT
#                 stringsearch, whose anti_cmp residual (FoldableChecker
#                 findings + matching comparison predictions) is a known,
#                 cross-validated gap — no other finding kind is allowed
#                 even there.
set -euo pipefail

BIN=${FLOWERY_BIN:-target/release/flowery}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

WORKLOADS=(backprop bfs pathfinder lud needle knn ep cg is fft2
           quicksort basicmath susan crc32 stringsearch patricia)

for w in "${WORKLOADS[@]}"; do
    for pass in raw id flowery; do
        "$BIN" lint "$w" --pass-config "$pass" --level 1.0 --format json \
            > "$DIR/$w.$pass.json"
    done
    echo "lint-smoke: $w ok"
done

python3 - "$DIR" <<'EOF'
import json, pathlib, sys

root = pathlib.Path(sys.argv[1])
errors = []

for path in sorted(root.glob("*.json")):
    out = json.loads(path.read_text())
    bench, pcfg = out["bench"], out["pass_config"]
    findings = out["findings"]
    bd = out["report"]["breakdown"]

    if pcfg == "Raw" and findings:
        errors.append(f"{bench}/raw: {len(findings)} findings in unprotected code")

    if pcfg == "Flowery":
        if bd["branch"] != 0:
            errors.append(f"{bench}/flowery: {bd['branch']} branch predictions")
        kinds = {f["kind"] for f in findings}
        if bench == "stringsearch":
            if extra := kinds - {"FoldableChecker"}:
                errors.append(f"{bench}/flowery: unexpected finding kinds {sorted(extra)}")
        else:
            if findings:
                errors.append(f"{bench}/flowery: {len(findings)} findings {sorted(kinds)}")
            if bd["comparison"] != 0:
                errors.append(f"{bench}/flowery: {bd['comparison']} comparison predictions")

for e in errors:
    print(f"lint-smoke FAIL: {e}", file=sys.stderr)
sys.exit(1 if errors else 0)
EOF

echo "lint-smoke: all gates passed"
