//! `flowery` — command-line driver for the cross-layer soft-error study.
//!
//! ```text
//! flowery compile <file.mc>                 print the -O0 IR
//! flowery asm <file.mc> [--id] [--flowery]  print the machine listing
//! flowery run <file.mc>                     execute at both layers
//! flowery inject <file.mc> [options]        fault-injection campaign
//! flowery study [--trials N] [bench ...]    the paper's full study
//! flowery campaign [options] [bench ...]    resumable harness campaign
//! flowery diff --baseline CKPT [bench ...]  incremental campaign: re-run changed regions only
//! flowery explore [options] [bench ...]     fault-model × protection × detector Pareto sweep
//! flowery serve [options] [bench ...]       coordinate a distributed campaign
//! flowery work --connect HOST:PORT          join one as a worker
//! flowery lint <file.mc> [options]          static penetration analysis
//! flowery workloads                         list the 16 benchmarks
//! flowery source <bench>                    print a benchmark's MiniC
//! ```
//!
//! `<file.mc>` may also name a built-in workload (e.g. `quicksort`).

use flowery::analysis::render_breakdown;
use flowery::backend::{compile_module, harden_program, BackendConfig, HardenConfig, Machine};
use flowery::core::{run_lint, ExperimentConfig, PassConfig};
use flowery::inject::{run_asm_campaign, run_ir_campaign, CampaignConfig, Coverage};
use flowery::ir::interp::{decode_output, ExecConfig, Interpreter};
use flowery::ir::Module;
use flowery::passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use flowery::workloads::{workload, Scale, NAMES};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", USAGE);
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "compile" => cmd_compile(rest),
        "asm" => cmd_asm(rest),
        "run" => cmd_run(rest),
        "inject" => cmd_inject(rest),
        "study" => cmd_study(rest),
        "campaign" => cmd_campaign(rest),
        "diff" => cmd_diff(rest),
        "explore" => cmd_explore(rest),
        "serve" => cmd_serve(rest),
        "work" => cmd_work(rest),
        "workloads" => cmd_workloads(),
        "vuln" => cmd_vuln(rest),
        "lint" => cmd_lint(rest),
        "source" => cmd_source(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: flowery <compile|asm|run|inject|study|workloads|source> ...

  compile <file.mc | bench>           print the -O0 IR
  asm <file.mc | bench> [--id] [--flowery] [--harden]
                                      print the machine listing
  run <file.mc | bench>               execute at both layers
  inject <file.mc | bench> [--trials N] [--id] [--flowery] [--harden]
                                      fault-injection campaign at both layers
  study [--trials N] [bench ...]      the paper's full cross-layer study
  campaign [bench ...] [--trials N] [--ci-target H] [--threads N]
           [--batch N] [--levels a,b] [--tiny] [--json]
           [--checkpoint FILE] [--resume] [--no-snapshots]
           [--snapshot-budget BYTES] [--metrics-json FILE]
           [--fault-model NAME] [--executor interp|compiled]
           [--static-prune]
                                      run the experiment matrix on the
                                      work-stealing harness; --ci-target
                                      stops each unit once the 95% CI
                                      half-width on its SDC rate is <= H;
                                      --checkpoint/--resume survive kills
                                      (Ctrl-C drains in-flight batches and
                                      flushes a resumable checkpoint);
                                      snapshot sets persist to
                                      <checkpoint>.snaps/ so --resume
                                      re-executes and re-captures nothing;
                                      --no-snapshots disables golden-run
                                      fast-forward (bit-identical, slower)
                                      and writes no .snaps dir;
                                      --snapshot-budget caps each snapshot
                                      set's page-overlay bytes (suffixes
                                      k/m/g), widening cadence when over;
                                      --metrics-json dumps the final
                                      engine metrics (incl. snapshot
                                      capture/load counters) as JSON;
                                      --fault-model picks the injected
                                      fault physics (see `explore` for
                                      the registered model names;
                                      default single-bit-reg) — recorded
                                      in the checkpoint header, so
                                      --resume refuses a mixed-model mix;
                                      --executor picks the machine-layer
                                      engine (default compiled, the
                                      threaded-code executor; interp is
                                      the reference interpreter) — results
                                      are bit-identical either way, and
                                      resumes may mix executors freely;
                                      --static-prune skips trials whose
                                      (site, bit) pair the bit-lattice
                                      lint proves masked (they resolve as
                                      Benign without executing — counts
                                      and CIs are bit-identical to a full
                                      run) and seeds units flagged-first;
                                      recorded in the checkpoint header,
                                      so --resume refuses a mixed-prune
                                      mix
  diff --baseline FILE [bench ...] [--src FILE] [--out FILE] [--static-prior]
       [+ campaign options above]   incremental campaign: partition every
                                      unit into per-function regions, hash
                                      them, and compare against the
                                      baseline checkpoint's region records;
                                      unchanged regions reuse their
                                      baseline profiles verbatim, changed
                                      or new regions re-run with trials
                                      scoped to the region, and the
                                      whole-program answer is composed
                                      from the mix under current site
                                      masses; --out writes the composed
                                      region records as a checkpoint (the
                                      next diff's baseline);
                                      --static-prior runs the lint first
                                      and executes the most-suspect
                                      changed regions first, weighting
                                      each flagged site by its vulnerable-
                                      bit fraction from the bit lattice
                                      (scheduling only — results are
                                      unchanged);
                                      --json prints the composed region
                                      records; --metrics-json includes
                                      regions reused/re-run and trials
                                      saved; --src adds an out-of-tree
                                      MiniC program to the matrix (name =
                                      file stem; repeatable) — edit the
                                      file between runs and only the
                                      changed functions re-execute
  explore [bench ...] [--models a,b,..] [--detectors none,parity,..]
          [--levels a,b] [--trials N] [--seed S] [--threads N]
          [--tiny] [--no-snapshots] [--out DIR] [--json]
          [--executor interp|compiled]
                                      sweep fault model x protection
                                      (variant, level) x hardware-detector
                                      set at the assembly layer and emit
                                      per-workload cost/coverage Pareto
                                      frontiers; models: single-bit-reg,
                                      double-bit-reg, multi-bit-W,
                                      flags-pc, mem-cell, control-flow;
                                      --detectors takes comma-separated
                                      sets of '+'-joined detectors
                                      (parity, cf-sig; 'none' = bare);
                                      --out writes explore.json plus one
                                      explore_<bench>.json per workload;
                                      --json prints the full report
  serve [bench ...] [--addr HOST:PORT] [--heartbeat-ms N] [--lease N]
        [--baseline FILE] [--src FILE]
        [+ campaign options above]    coordinate the same campaign over
                                      TCP: workers lease trial batches and
                                      stream results back; the checkpoint
                                      is byte-identical to a local run;
                                      --baseline switches to incremental
                                      mode — workers lease region-scoped
                                      batches for changed regions only and
                                      --checkpoint receives the composed
                                      region records, bit-identical to a
                                      local `flowery diff` of the same
                                      plan and baseline
  work --connect HOST:PORT [--threads N] [--max-reconnects N]
       [--backoff-ms N] [--executor interp|compiled]
                                      join a served campaign as a worker;
                                      --executor overrides the served
                                      engine for this worker only (safe:
                                      engines are bit-identical)
  vuln <file.mc | bench> [--trials N] [--top K] [--static-prior]
       [--by-region]                  rank the most SDC-vulnerable
                                      instructions; --static-prior folds the
                                      lint's per-site flags in as a
                                      sampling-tie breaker; --by-region
                                      adds a per-function region table
                                      (SDC share vs dynamic site mass)
  lint <file.mc | bench> [--pass-config raw|id|flowery] [--level L]
       [--validate] [--trials N] [--format json] [--bits]
                                      static penetration analysis: flag
                                      injectable sites whose corruption can
                                      reach a store/branch/call/ret sink
                                      unchecked, plus IR-level invariant
                                      findings; --validate cross-checks the
                                      predictions against an N-trial
                                      injection campaign; --bits prints the
                                      bit-lattice verdict table (per-site
                                      proven-masked bit masks — the prune
                                      table campaign --static-prune uses;
                                      --format json always includes it)
  workloads                           list the 16 Table-1 benchmarks
  source <bench>                      print a benchmark's MiniC source";

/// Load a module from a MiniC file path or a built-in workload name.
fn load(spec: &str) -> Result<Module, String> {
    if NAMES.contains(&spec) {
        return Ok(workload(spec, Scale::Standard).compile());
    }
    let src = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
    flowery::lang::compile(spec, &src).map_err(|e| format!("{spec}: {e}"))
}

fn protect(m: &mut Module, id: bool, flowery: bool) {
    if id || flowery {
        let plan = ProtectionPlan::full(m);
        duplicate_module(m, &plan, &DupConfig::default());
    }
    if flowery {
        apply_flowery(m, &FloweryConfig::default());
    }
}

fn flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn opt_u64(rest: &[String], name: &str, default: u64) -> u64 {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_compile(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("missing input")?;
    let mut m = load(spec)?;
    protect(&mut m, flag(rest, "--id"), flag(rest, "--flowery"));
    print!("{}", flowery::ir::printer::print_module(&m));
    Ok(())
}

fn cmd_asm(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("missing input")?;
    let mut m = load(spec)?;
    protect(&mut m, flag(rest, "--id"), flag(rest, "--flowery"));
    let mut prog = compile_module(&m, &BackendConfig::default());
    if flag(rest, "--harden") {
        let (h, stats) = harden_program(&prog, &HardenConfig::default());
        eprintln!("; hardening inserted {} read-back checks", stats.total());
        prog = h;
    }
    print!("{}", flowery::backend::print_program(&prog));
    Ok(())
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("missing input")?;
    let mut m = load(spec)?;
    protect(&mut m, flag(rest, "--id"), flag(rest, "--flowery"));
    let exec = ExecConfig::default();
    let ir = Interpreter::new(&m).run(&exec, None);
    println!("IR level:  {:?}", ir.status);
    println!("  output:  {:?}", decode_output(&ir.output));
    println!("  dyn insts: {}  fault sites: {}", ir.dyn_insts, ir.fault_sites);
    let prog = compile_module(&m, &BackendConfig::default());
    let asm = Machine::new(&m, &prog).run(&exec, None);
    println!("assembly:  {:?}", asm.status);
    println!("  output:  {:?}", decode_output(&asm.output));
    println!("  dyn insts: {}  fault sites: {}  cycles: {}", asm.dyn_insts, asm.fault_sites, asm.cycles);
    if ir.output != asm.output {
        return Err("cross-layer output mismatch (this is a bug)".into());
    }
    Ok(())
}

fn cmd_inject(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("missing input")?;
    let trials = opt_u64(rest, "--trials", 1000);
    let raw = load(spec)?;
    let mut m = raw.clone();
    protect(&mut m, flag(rest, "--id"), flag(rest, "--flowery"));

    let camp = CampaignConfig::with_trials(trials);
    let raw_ir = run_ir_campaign(&raw, &camp);
    let ir = run_ir_campaign(&m, &camp);
    println!("IR level   ({trials} campaigns):");
    println!("  raw:       {:?}", raw_ir.counts);
    println!("  protected: {:?}", ir.counts);
    println!("  coverage:  {:.2}%", Coverage::compute(&raw_ir.counts, &ir.counts).percent());

    let raw_prog = compile_module(&raw, &BackendConfig::default());
    let mut prog = compile_module(&m, &BackendConfig::default());
    if flag(rest, "--harden") {
        prog = harden_program(&prog, &HardenConfig::default()).0;
    }
    let raw_asm = run_asm_campaign(&raw, &raw_prog, &camp);
    let asm = run_asm_campaign(&m, &prog, &camp);
    println!("assembly   ({trials} campaigns):");
    println!("  raw:       {:?}", raw_asm.counts);
    println!("  protected: {:?}", asm.counts);
    println!("  coverage:  {:.2}%", Coverage::compute(&raw_asm.counts, &asm.counts).percent());
    if flag(rest, "--id") || flag(rest, "--flowery") {
        let breakdown = flowery::analysis::classify_campaign(&m, &prog, &asm.sdc_insts);
        println!("root causes of assembly-level SDCs:");
        print!("{}", render_breakdown(&breakdown));
    }
    Ok(())
}

fn cmd_study(rest: &[String]) -> Result<(), String> {
    use flowery::core::figures as fig;
    let trials = opt_u64(rest, "--trials", 1000);
    let names: Vec<&str> = rest
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<u64>().is_err())
        .map(|s| s.as_str())
        .collect();
    let cfg = flowery::core::ExperimentConfig {
        trials,
        profile_trials: (trials / 3).max(100),
        verbose: true,
        ..Default::default()
    };
    let study = flowery::core::run_study(&names, &cfg);
    println!("{}", fig::render_fig2(&fig::fig2(&study)));
    println!("{}", fig::render_fig3(&fig::fig3(&study)));
    println!("{}", fig::render_fig17(&fig::fig17(&study)));
    println!("{}", fig::render_overhead(&fig::overhead(&study)));
    Ok(())
}

fn opt_str<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

/// Benchmark names from a campaign-style argument list. Flags not in the
/// boolean set are assumed to take a value, which is skipped.
fn parse_benches(rest: &[String]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut skip = false;
    for a in rest {
        if skip {
            skip = false;
            continue;
        }
        if let Some(flag) = a.strip_prefix("--") {
            skip = !matches!(
                flag,
                "resume" | "tiny" | "json" | "no-snapshots" | "static-prior" | "static-prune" | "by-region" | "bits"
            );
            continue;
        }
        if !NAMES.contains(&a.as_str()) {
            return Err(format!("unknown benchmark '{a}'; see `flowery workloads`"));
        }
        names.push(a.clone());
    }
    Ok(names)
}

/// A byte count with an optional k/m/g suffix (powers of 1024).
fn parse_bytes(v: &str) -> Option<u64> {
    let s = v.to_ascii_lowercase();
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'k') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'm') => (&s[..s.len() - 1], 1 << 20),
        Some(b'g') => (&s[..s.len() - 1], 1 << 30),
        _ => (s.as_str(), 1),
    };
    digits.parse::<u64>().ok().map(|n| n.saturating_mul(mult))
}

/// The trial schedule shared by `campaign` and `serve`.
fn parse_harness(rest: &[String]) -> Result<flowery::harness::HarnessConfig, String> {
    let trials = opt_u64(rest, "--trials", 3000);
    let mut cfg = flowery::harness::HarnessConfig {
        max_trials: trials,
        batch_size: opt_u64(rest, "--batch", 250).clamp(1, trials.max(1)),
        min_trials: opt_u64(rest, "--min-trials", 500).min(trials),
        threads: opt_u64(rest, "--threads", 0) as usize,
        seed: opt_u64(rest, "--seed", 0x51C2_3001),
        snapshots: !flag(rest, "--no-snapshots"),
        static_prune: flag(rest, "--static-prune"),
        ..Default::default()
    };
    cfg.ci_target = opt_str(rest, "--ci-target")
        .map(|v| v.parse::<f64>().map_err(|_| format!("bad --ci-target '{v}'")))
        .transpose()?;
    cfg.exec.snapshot_budget = opt_str(rest, "--snapshot-budget")
        .map(|v| parse_bytes(v).ok_or(format!("bad --snapshot-budget '{v}' (want BYTES[k|m|g])")))
        .transpose()?;
    if let Some(m) = opt_str(rest, "--fault-model") {
        cfg.fault_model = m.trim().parse::<flowery::faultmodel::ModelSpec>()?;
    }
    if let Some(e) = opt_str(rest, "--executor") {
        cfg.exec.executor = e.trim().parse::<flowery::backend::ExecMode>()?;
    }
    Ok(cfg)
}

fn parse_levels(rest: &[String]) -> Result<Vec<f64>, String> {
    match opt_str(rest, "--levels") {
        None => Ok(vec![1.0]),
        Some(csv) => csv
            .split(',')
            .map(|s| s.trim().parse::<f64>().map_err(|_| format!("bad level '{s}'")))
            .collect(),
    }
}

/// Out-of-tree programs from `--src FILE` occurrences: the program name
/// is the file stem, and the source is compiled here so a typo fails
/// with a file-level error instead of a panic deep in `build_matrix`.
fn parse_sources(rest: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut sources: Vec<(String, String)> = Vec::new();
    for (i, a) in rest.iter().enumerate() {
        if a != "--src" {
            continue;
        }
        let path = rest.get(i + 1).ok_or("--src needs a FILE")?;
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .filter(|s| !s.is_empty())
            .ok_or(format!("--src {path}: cannot derive a program name from the file name"))?
            .to_string();
        if NAMES.contains(&name.as_str()) {
            return Err(format!("--src {path}: name '{name}' collides with a built-in workload"));
        }
        if sources.iter().any(|(n, _)| *n == name) {
            return Err(format!("--src {path}: duplicate program name '{name}'"));
        }
        flowery::lang::compile(&name, &src).map_err(|e| format!("--src {path}: does not compile: {e}"))?;
        sources.push((name, src));
    }
    Ok(sources)
}

/// The matrix both `campaign` builds locally and `serve` ships to workers.
fn matrix_spec(rest: &[String], cfg: &flowery::harness::HarnessConfig) -> Result<flowery::harness::MatrixSpec, String> {
    Ok(flowery::harness::MatrixSpec {
        benches: parse_benches(rest)?,
        sources: parse_sources(rest)?,
        scale: if flag(rest, "--tiny") { Scale::Tiny } else { Scale::Standard },
        levels: parse_levels(rest)?,
        profile_trials: (cfg.max_trials / 3).max(100),
        threads: cfg.threads,
        ..Default::default()
    })
}

fn print_campaign_report(rest: &[String], report: &flowery::harness::CampaignReport) -> Result<(), String> {
    if flag(rest, "--json") {
        println!("{}", flowery::serde_json::to_string_pretty(&report.units).map_err(|e| format!("{e:?}"))?);
        return Ok(());
    }
    println!(
        "{:<28} {:>7} {:>9} {:>10} {:>8} {:>8} {:>8}  ",
        "unit", "trials", "sdc", "ci95", "benign", "det", "due"
    );
    for u in &report.units {
        println!(
            "{:<28} {:>7} {:>8.2}% {:>9.2}pp {:>8} {:>8} {:>8}  {}",
            u.key.id(),
            u.trials,
            u.sdc.value * 100.0,
            u.sdc.ci95 * 100.0,
            u.counts.benign,
            u.counts.detected,
            u.counts.due,
            if u.stopped_early { "early-stop" } else { "" }
        );
    }
    let m = &report.metrics;
    println!(
        "\n{} trials in {:.1}s ({:.0}/s) | batches {} ({} from checkpoint) | golden cache {}/{} hits ({:.0}%) | snapshot sets {} captured, {} loaded, {} shared | fast-forward skipped {:.0}% of work",
        m.trials,
        m.elapsed_secs,
        m.trials_per_sec,
        m.batches,
        m.batches_reused,
        m.cache_hits,
        m.cache_hits + m.cache_misses,
        m.cache_hit_rate * 100.0,
        m.snap_captures,
        m.snap_loads,
        m.snap_shared,
        m.ff_ratio * 100.0
    );
    Ok(())
}

fn cmd_campaign(rest: &[String]) -> Result<(), String> {
    use flowery::harness::{
        build_matrix, compact, load_checkpoint, run_units, shutdown, CheckpointLog, Control, GoldenCache,
        MetricsSnapshot, RunOptions, SnapshotStore,
    };
    use std::path::Path;

    let cfg = parse_harness(rest)?;
    let spec = matrix_spec(rest, &cfg)?;

    // Checkpoint / resume plumbing.
    let ckpt_path = opt_str(rest, "--checkpoint").map(Path::new);
    let resume = flag(rest, "--resume");
    let mut preloaded = Vec::new();
    let log = match (ckpt_path, resume) {
        (None, true) => return Err("--resume needs --checkpoint FILE".into()),
        (None, false) => None,
        (Some(p), true) => {
            let (header, batches) = load_checkpoint(p)?;
            // `same_schedule` ignores the executor: engines are
            // bit-identical, so mixed-executor resumes are sound.
            if let Some(why) = header.describe_mismatch(&cfg.header()) {
                return Err(format!(
                    "{}: checkpoint was written with different campaign parameters — {why}",
                    p.display()
                ));
            }
            eprintln!("[harness] resuming: {} batches from {}", batches.len(), p.display());
            preloaded = batches;
            Some(CheckpointLog::append_to(p)?)
        }
        (Some(p), false) => Some(CheckpointLog::create(p, &cfg.header())?),
    };

    eprintln!(
        "[harness] building matrix ({} benches)",
        if spec.benches.is_empty() { NAMES.len() } else { spec.benches.len() }
    );
    let units = build_matrix(&spec);
    eprintln!("[harness] {} units x <= {} trials", units.len(), cfg.max_trials);

    // First Ctrl-C drains: in-flight batches finish and are checkpointed,
    // then the run stops. A second Ctrl-C kills the process outright.
    shutdown::install();
    let last_print = std::sync::Mutex::new(std::time::Instant::now());
    let progress = |snap: &MetricsSnapshot| {
        if shutdown::requested() {
            return Control::Stop;
        }
        let mut last = last_print.lock().unwrap();
        if last.elapsed().as_secs_f64() >= 1.0 {
            eprintln!("[harness] {}", snap.render());
            *last = std::time::Instant::now();
        }
        Control::Continue
    };
    // Persist snapshot sets next to the checkpoint so a resumed campaign
    // re-captures nothing. `--no-snapshots` must leave no orphan `.snap`
    // files behind, so the store is attached only when snapshots are on.
    let cache = match ckpt_path {
        Some(p) if cfg.snapshots => GoldenCache::with_store(SnapshotStore::for_checkpoint(p)),
        _ => GoldenCache::new(),
    };
    let report = run_units(
        &units,
        &cfg,
        &cache,
        RunOptions {
            checkpoint: log.as_ref(),
            preloaded,
            progress: Some(&progress),
            replay_only: false,
        },
    );
    if let Some(e) = report.error {
        return Err(e);
    }

    // A clean finish also records per-region profiles, so this checkpoint
    // can serve as a `flowery diff --baseline` later. Interrupted runs
    // skip this: partial units would compose wrongly.
    if !report.interrupted {
        if let Some(log) = &log {
            for rec in flowery::harness::region_records(&units, &report.units, &cache, &cfg) {
                log.record_regions(&rec)?;
            }
        }
    }

    // Leave the checkpoint in canonical (byte-reproducible) form.
    drop(log);
    if let Some(p) = ckpt_path {
        compact(p)?;
    }
    if let Some(p) = opt_str(rest, "--metrics-json") {
        let json = flowery::serde_json::to_string_pretty(&report.metrics).map_err(|e| format!("{e:?}"))?;
        std::fs::write(p, json + "\n").map_err(|e| format!("cannot write {p}: {e}"))?;
    }
    print_campaign_report(rest, &report)?;
    if report.interrupted {
        eprintln!("[harness] interrupted: {} unit(s) unfinished", report.pending.len());
        match ckpt_path {
            Some(p) => eprintln!("[harness] resume with: flowery campaign ... --checkpoint {} --resume", p.display()),
            None => eprintln!("[harness] progress was NOT saved (no --checkpoint)"),
        }
    }
    Ok(())
}

fn cmd_diff(rest: &[String]) -> Result<(), String> {
    use flowery::harness::{build_matrix, write_canonical_full, Baseline, GoldenCache};
    use std::collections::HashMap;
    use std::path::Path;

    let cfg = parse_harness(rest)?;
    let spec = matrix_spec(rest, &cfg)?;
    let base_path = opt_str(rest, "--baseline")
        .ok_or("diff needs --baseline FILE (a checkpoint from a finished campaign or a prior diff)")?;
    let baseline = Baseline::load(Path::new(base_path), &cfg.header())?;
    if baseline.pre_region {
        eprintln!("[diff] {base_path}: no region records in baseline; every region runs fresh");
    }

    eprintln!(
        "[diff] building matrix ({} program(s))",
        if spec.benches.is_empty() && spec.sources.is_empty() {
            NAMES.len()
        } else {
            spec.benches.len() + spec.sources.len()
        }
    );
    let units = build_matrix(&spec);

    // Optional lint-derived priorities: changed regions with more flagged
    // penetration sites execute first. Pure scheduling — per-region trial
    // streams are seed-determined, so the order never changes results.
    let mut priorities: HashMap<(String, String), f64> = HashMap::new();
    if flag(rest, "--static-prior") {
        for u in &units {
            let bcfg = BackendConfig::default();
            let compiled;
            let prog = match u.program.as_deref() {
                Some(p) => p,
                None => {
                    compiled = compile_module(&u.module, &bcfg);
                    &compiled
                }
            };
            let report = flowery::analysis::predict_program(&u.module, prog, bcfg.fold_compares);
            // Weight each flagged site by its vulnerable-bit fraction from
            // the bit lattice: a site with most bits proven masked is less
            // likely to re-inject as SDC than one fully exposed, so dense
            // regions with wide-open sites queue first.
            let bits = flowery::analysis::analyze_bits(&u.module, prog);
            for site in &report.flagged {
                if let Some(f) = prog.funcs.iter().find(|f| (f.entry..f.end).contains(&site.idx)) {
                    let weight = bits
                        .verdicts
                        .get(site.idx as usize)
                        .map_or(1.0, |v| f64::from(v.vulnerable.count_ones()) / 64.0);
                    *priorities.entry((u.key.id(), f.name.clone())).or_insert(0.0) += weight;
                }
            }
        }
    }

    let cache = GoldenCache::new();
    let report = flowery::harness::run_diff(&units, &cfg, &cache, &baseline, &priorities);

    if let Some(p) = opt_str(rest, "--out") {
        write_canonical_full(Path::new(p), &cfg.header(), &[], &report.records())?;
        eprintln!("[diff] wrote composed checkpoint to {p}");
    }
    print_diff_report(rest, &report)
}

/// The per-unit diff table shared by `flowery diff` and
/// `flowery serve --baseline`.
fn print_diff_report(rest: &[String], report: &flowery::harness::DiffReport) -> Result<(), String> {
    use flowery::regions::Fate;

    if let Some(p) = opt_str(rest, "--metrics-json") {
        let json = flowery::serde_json::to_string_pretty(&report.metrics).map_err(|e| format!("{e:?}"))?;
        std::fs::write(p, json + "\n").map_err(|e| format!("cannot write {p}: {e}"))?;
    }
    if flag(rest, "--json") {
        println!(
            "{}",
            flowery::serde_json::to_string_pretty(&report.records()).map_err(|e| format!("{e:?}"))?
        );
        return Ok(());
    }

    for u in &report.units {
        let (reused, rerun, new) = u.fate_counts();
        println!(
            "{:<28} sdc {:>6.2}% ±{:.2}pp | {} regions: {} reused, {} re-run, {} new{} | {} trials run, {} saved",
            u.key.id(),
            u.composed.value * 100.0,
            u.composed.ci95 * 100.0,
            u.regions.len(),
            reused,
            rerun,
            new,
            if u.dropped.is_empty() {
                String::new()
            } else {
                format!(", {} dropped", u.dropped.len())
            },
            u.trials_run,
            u.trials_saved,
        );
        for r in &u.regions {
            if r.fate == Fate::Reused {
                continue;
            }
            println!(
                "  {:<7} {:<20} {:>6} trials  sdc {:>6.2}%  mass {}",
                r.fate.to_string(),
                r.name,
                r.profile.trials,
                r.profile.sdc().value * 100.0,
                r.profile.site_mass,
            );
        }
    }
    let m = &report.metrics;
    println!("\n{}", m.render());
    Ok(())
}

fn cmd_explore(rest: &[String]) -> Result<(), String> {
    use flowery::faultmodel::{DetectorSpec, ModelSpec};
    use flowery::harness::{explore, render_table, ExploreSpec, GoldenCache};

    let mut spec = ExploreSpec {
        benches: parse_benches(rest)?,
        scale: if flag(rest, "--tiny") { Scale::Tiny } else { Scale::Standard },
        trials: opt_u64(rest, "--trials", 400),
        seed: opt_u64(rest, "--seed", 0x0F10_EE41),
        threads: opt_u64(rest, "--threads", 0) as usize,
        snapshots: !flag(rest, "--no-snapshots"),
        ..Default::default()
    };
    spec.profile_trials = (spec.trials * 2).clamp(100, 2000);
    if let Some(csv) = opt_str(rest, "--models") {
        spec.models = csv
            .split(',')
            .map(|s| s.trim().parse::<ModelSpec>())
            .collect::<Result<_, _>>()?;
    }
    if let Some(csv) = opt_str(rest, "--detectors") {
        spec.detector_sets = csv
            .split(',')
            .map(|set| {
                let set = set.trim();
                if set == "none" {
                    return Ok(Vec::new());
                }
                set.split('+').map(|d| d.trim().parse::<DetectorSpec>()).collect()
            })
            .collect::<Result<_, String>>()?;
    }
    if opt_str(rest, "--levels").is_some() {
        spec.levels = parse_levels(rest)?;
    }
    if let Some(e) = opt_str(rest, "--executor") {
        spec.exec.executor = e.trim().parse::<flowery::backend::ExecMode>()?;
    }

    eprintln!(
        "[explore] {} bench(es) x {} model(s) x {} detector set(s), {} trials each",
        if spec.benches.is_empty() { NAMES.len() } else { spec.benches.len() },
        spec.models.len(),
        spec.detector_sets.len(),
        spec.trials
    );
    let report = explore(&spec, &GoldenCache::new());

    if let Some(dir) = opt_str(rest, "--out") {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let write = |path: &std::path::Path, json: String| -> Result<(), String> {
            std::fs::write(path, json + "\n").map_err(|e| format!("cannot write {}: {e}", path.display()))
        };
        write(
            &dir.join("explore.json"),
            flowery::serde_json::to_string_pretty(&report).map_err(|e| format!("{e:?}"))?,
        )?;
        for w in &report.workloads {
            write(
                &dir.join(format!("explore_{}.json", w.bench)),
                flowery::serde_json::to_string_pretty(w).map_err(|e| format!("{e:?}"))?,
            )?;
        }
        eprintln!("[explore] wrote {} file(s) to {}", report.workloads.len() + 1, dir.display());
    }
    if flag(rest, "--json") {
        println!("{}", flowery::serde_json::to_string_pretty(&report).map_err(|e| format!("{e:?}"))?);
    } else {
        print!("{}", render_table(&report));
    }
    Ok(())
}

fn cmd_serve(rest: &[String]) -> Result<(), String> {
    use flowery::dist::{serve, serve_diff, CoordinatorConfig, PlanSpec};
    use flowery::harness::shutdown;
    use std::path::PathBuf;

    let cfg = parse_harness(rest)?;
    let plan = PlanSpec::from_spec(&matrix_spec(rest, &cfg)?);
    let checkpoint = opt_str(rest, "--checkpoint")
        .map(PathBuf::from)
        .ok_or("serve needs --checkpoint FILE (workers' results land there)")?;
    let ccfg = CoordinatorConfig {
        addr: opt_str(rest, "--addr").unwrap_or("127.0.0.1:7070").into(),
        checkpoint: checkpoint.clone(),
        resume: flag(rest, "--resume"),
        heartbeat_ms: opt_u64(rest, "--heartbeat-ms", 2000).max(50),
        lease_batches: opt_u64(rest, "--lease", 4).max(1) as usize,
        drain_grace_ms: 30_000,
        threads: cfg.threads,
        verbose: !flag(rest, "--json"),
        baseline: opt_str(rest, "--baseline").map(PathBuf::from),
    };

    // First Ctrl-C drains workers and flushes the checkpoint; a second
    // kills the coordinator outright.
    shutdown::install();

    // Incremental mode: workers lease region-scoped batches for changed
    // regions only; the composed region checkpoint lands at --checkpoint.
    if ccfg.baseline.is_some() {
        let dist = serve_diff(plan, cfg, ccfg)?;
        eprintln!("[serve] {}", dist.stats.render());
        print_diff_report(rest, &dist.report)?;
        if dist.interrupted {
            eprintln!("[serve] interrupted: no composed checkpoint written; re-run the diff serve");
        } else {
            eprintln!("[serve] wrote composed checkpoint to {}", checkpoint.display());
        }
        return Ok(());
    }

    let dist = serve(plan, cfg, ccfg)?;
    eprintln!("[serve] {}", dist.stats.render());
    print_campaign_report(rest, &dist.report)?;
    if dist.interrupted {
        eprintln!("[serve] interrupted: {} unit(s) unfinished", dist.report.pending.len());
        eprintln!("[serve] resume with: flowery serve ... --checkpoint {} --resume", checkpoint.display());
    }
    Ok(())
}

fn cmd_work(rest: &[String]) -> Result<(), String> {
    use flowery::dist::{work, WorkerConfig};

    let connect = opt_str(rest, "--connect").ok_or("work needs --connect HOST:PORT")?;
    let executor = opt_str(rest, "--executor")
        .map(|e| e.trim().parse::<flowery::backend::ExecMode>())
        .transpose()?;
    let summary = work(WorkerConfig {
        connect: connect.into(),
        threads: opt_u64(rest, "--threads", 0) as usize,
        max_reconnects: opt_u64(rest, "--max-reconnects", 5) as u32,
        backoff_ms: opt_u64(rest, "--backoff-ms", 500),
        verbose: true,
        executor,
        die_after_batches: None,
    })?;
    eprintln!("[work] done: {} batches, {} reconnects", summary.batches, summary.reconnects);
    Ok(())
}

fn cmd_vuln(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("missing input")?;
    let trials = opt_u64(rest, "--trials", 2000);
    let top = opt_u64(rest, "--top", 15) as usize;
    let m = load(spec)?;
    let camp = run_ir_campaign(&m, &CampaignConfig::with_trials(trials));
    let prof = Interpreter::new(&m)
        .profile_run(&ExecConfig::default())
        .profile
        .expect("profiling run returns counts");
    let ranking = if flag(rest, "--static-prior") {
        let bcfg = BackendConfig::default();
        let prog = compile_module(&m, &bcfg);
        let report = flowery::analysis::predict_program(&m, &prog, bcfg.fold_compares);
        let prior = flowery::analysis::static_prior(&prog, &report);
        flowery::analysis::vulnerability_ranking_with_prior(&m, &camp, &prof, &prior, top)
    } else {
        flowery::analysis::vulnerability_ranking(&m, &camp, &prof, top)
    };
    println!(
        "{} SDCs across {} trials; top {} instructions by SDC contribution:",
        camp.counts.sdc,
        trials,
        ranking.len()
    );
    print!("{}", flowery::analysis::render_vulnerability(&ranking));
    if flag(rest, "--by-region") {
        // Fold the per-instruction SDC map into the same per-function
        // regions `flowery diff` uses, with dynamic site mass from the
        // golden profile — SDC share far above mass share marks a region
        // worth selective protection (and a good diff re-run priority).
        let set = flowery::regions::ir_region_set(&m, &prof, 0);
        let total_sdc: u64 = camp.sdc_by_inst.values().sum();
        let total_mass = set.total_mass();
        let mut regions: Vec<flowery::regions::RegionProfile> = set
            .regions
            .iter()
            .map(|r| flowery::regions::RegionProfile {
                name: r.name.clone(),
                hash: r.hash,
                site_mass: r.site_mass,
                sdc_by_inst: camp
                    .sdc_by_inst
                    .iter()
                    .filter(|((f, _), _)| m.func(*f).name == r.name)
                    .map(|(loc, n)| (*loc, *n))
                    .collect(),
                ..Default::default()
            })
            .collect();
        regions.sort_by(|a, b| {
            let (ha, hb): (u64, u64) = (a.sdc_by_inst.values().sum(), b.sdc_by_inst.values().sum());
            hb.cmp(&ha).then_with(|| a.name.cmp(&b.name))
        });
        println!("\nper-region SDC contribution ({} regions):", regions.len());
        println!(
            "{:<20} {:>9} {:>8} {:>11} {:>10}",
            "region", "sdc hits", "share", "site mass", "mass share"
        );
        for r in &regions {
            let hits: u64 = r.sdc_by_inst.values().sum();
            println!(
                "{:<20} {:>9} {:>7.1}% {:>11} {:>9.1}%",
                r.name,
                hits,
                if total_sdc == 0 {
                    0.0
                } else {
                    hits as f64 / total_sdc as f64 * 100.0
                },
                r.site_mass,
                if total_mass == 0 {
                    0.0
                } else {
                    r.site_mass as f64 / total_mass as f64 * 100.0
                },
            );
        }
    }
    Ok(())
}

fn cmd_lint(rest: &[String]) -> Result<(), String> {
    let spec = rest.first().ok_or("missing input")?;
    let pass = match opt_str(rest, "--pass-config") {
        None => PassConfig::Id,
        Some(s) => {
            PassConfig::parse(s).ok_or_else(|| format!("bad --pass-config '{s}' (expected raw, id, or flowery)"))?
        }
    };
    let level: f64 = match opt_str(rest, "--level") {
        None => 1.0,
        Some(s) => s.parse().map_err(|_| format!("bad --level '{s}'"))?,
    };
    if !(0.0..=1.0).contains(&level) {
        return Err(format!("--level {level} out of range (0..=1)"));
    }
    let validate = flag(rest, "--validate").then(|| opt_u64(rest, "--trials", 2000));
    let m = load(spec)?;
    let outcome = run_lint(spec, &m, pass, level, &ExperimentConfig::default(), validate);
    if opt_str(rest, "--format") == Some("json") {
        println!("{}", flowery::serde_json::to_string_pretty(&outcome).map_err(|e| format!("{e:?}"))?);
        return Ok(());
    }
    let r = &outcome.report;
    println!(
        "{spec} [{} @ {:.0}%]: {} injectable sites, {} proven protected, {} flagged",
        pass.name(),
        level * 100.0,
        r.sites,
        r.protected,
        r.flagged.len(),
    );
    if !r.flagged.is_empty() {
        println!("predicted penetration breakdown:");
        print!("{}", render_breakdown(&r.breakdown));
    }
    if outcome.findings.is_empty() {
        println!("IR invariants: clean");
    } else {
        println!("IR invariant findings ({}):", outcome.findings.len());
        for f in &outcome.findings {
            println!("  [{}] fn{}: {}", f.kind.name(), f.func.index(), f.detail);
        }
    }
    if let Some(v) = &outcome.validation {
        println!("cross-validation against {} injection trials:", validate.unwrap());
        print!("{}", flowery::analysis::render_validation(v));
    }
    if flag(rest, "--bits") {
        let b = outcome.bits.as_ref().expect("run_lint always computes the bit table");
        println!(
            "bit lattice: {} sites, {} (site, bit) pairs proven masked, mean vulnerable fraction {:.1}%",
            b.sites,
            b.proven_pairs,
            b.mean_vulnerable * 100.0
        );
        println!("{:>6} {:>7} {:>18}  mask (v = vulnerable, . = proven)", "site", "proven", "vulnerable");
        for s in &b.masks {
            if s.proven_masked == 0 {
                continue; // fully vulnerable sites carry no information
            }
            let mask: String = (0..64)
                .rev()
                .map(|bit| if (s.vulnerable >> bit) & 1 == 1 { 'v' } else { '.' })
                .collect();
            println!(
                "{:>6} {:>7} {:>18}  {}",
                s.idx,
                s.proven_masked.count_ones(),
                format!("{:#x}", s.vulnerable),
                mask
            );
        }
    }
    Ok(())
}

fn cmd_workloads() -> Result<(), String> {
    for name in NAMES {
        let w = workload(name, Scale::Standard);
        println!("{:<14} {:<8} {}", w.name, w.suite.name(), w.domain);
    }
    Ok(())
}

fn cmd_source(rest: &[String]) -> Result<(), String> {
    let name = rest.first().ok_or("missing benchmark name")?;
    if !NAMES.contains(&name.as_str()) {
        return Err(format!("unknown benchmark '{name}'; see `flowery workloads`"));
    }
    print!("{}", workload(name, Scale::Standard).source);
    Ok(())
}
