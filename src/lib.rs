//! # flowery
//!
//! A full reproduction of *"Demystifying and Mitigating Cross-Layer
//! Deficiencies of Soft Error Protection in Instruction Duplication"*
//! (SC'23) — instruction duplication, the five penetration root-causes,
//! and the Flowery mitigation — built on a from-scratch compiler and
//! machine-simulation substrate:
//!
//! - [`ir`] — an LLVM-flavoured IR with a tracing, fault-injecting
//!   interpreter (the "LLVM level"),
//! - [`lang`] — MiniC, the C-like frontend the 16 benchmarks are written in,
//! - [`backend`] — an x86-64-style backend with a `-O0` fast register
//!   allocator and a machine simulator (the "assembly level"),
//! - [`passes`] — instruction duplication, selective protection, and the
//!   three Flowery patches,
//! - [`faultmodel`] — pluggable fault models (single/multi-bit, flags,
//!   memory, control-flow) and modeled hardware detectors,
//! - [`inject`] — parallel fault-injection campaigns and coverage stats,
//! - [`harness`] — the resumable work-stealing campaign engine: batched
//!   trials, golden-run caching, adaptive trial counts (Wilson CI early
//!   stop), JSONL checkpoints, and live metrics,
//! - [`dist`] — coordinator/worker distributed campaigns over TCP
//!   (`flowery serve` / `flowery work`), byte-identical to local runs,
//! - [`workloads`] — the Table 1 benchmarks,
//! - [`analysis`] — penetration root-cause classification,
//! - [`core`] — the experiment pipelines for every table and figure.
//!
//! See `examples/quickstart.rs` for a five-minute tour and
//! `examples/paper_study.rs` for the full reproduction run.

pub use flowery_analysis as analysis;
pub use flowery_backend as backend;
pub use flowery_core as core;
pub use flowery_dist as dist;
pub use flowery_faultmodel as faultmodel;
pub use flowery_harness as harness;
pub use flowery_inject as inject;
pub use flowery_ir as ir;
pub use flowery_lang as lang;
pub use flowery_passes as passes;
pub use flowery_regions as regions;
pub use flowery_workloads as workloads;
pub use serde_json;
