//! Cross-variant snapshot sharing, end to end: the Raw, ID, and Flowery
//! variants of one benchmark diverge only where protection rewrites code,
//! so a variant built with a late-only protection plan can reuse the raw
//! capture's golden-prefix snapshots below the divergence point and
//! capture just the suffix. Every trial fast-forwarded off such a shared
//! set must be **bit-identical** to the same trial run from scratch, at
//! both layers.

use flowery_ir::interp::{ExecConfig, FaultSpec, Interpreter, IrScratch};
use flowery_ir::Module;
use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use proptest::prelude::*;
use std::sync::Arc;

/// `main` comes first so the protected tail function lands *after* it in
/// the assembly stream: positional divergence between raw and variant
/// programs then happens only inside `finish`, which executes late.
fn program(prologue: u32, inner: u32, modulus: u32) -> String {
    format!(
        "global int arr[8] = {{7, 2, 9, 4, 1, 8, 3, 6}};\n\
         int main() {{\n\
           int i; int s = 0;\n\
           for (i = 0; i < {prologue}; i = i + 1) {{\n\
             s = s + arr[((s + i) % 8 + 8) % 8] * (i % 13 + 1);\n\
           }}\n\
           output(s);\n\
           s = finish(s);\n\
           output(s);\n\
           return s & 65535;\n\
         }}\n\
         int finish(int x) {{\n\
           int j; int t = x;\n\
           for (j = 0; j < {inner}; j = j + 1) {{\n\
             t = t + arr[(t % 8 + 8) % 8] * (j + 1);\n\
             arr[((t + j) % 8 + 8) % 8] = t % {modulus};\n\
           }}\n\
           return t;\n\
         }}\n"
    )
}

/// Protect only `finish` — the paper's selective protection puts the
/// budget on the most vulnerable code, which here runs after a long
/// unprotected prologue.
fn late_plan(m: &Module) -> ProtectionPlan {
    let mut plan = ProtectionPlan::full(m);
    for (f, set) in m.functions.iter().zip(plan.per_func.iter_mut()) {
        if f.name != "finish" {
            set.clear();
        }
    }
    plan
}

fn id_variant(raw: &Module) -> Module {
    let mut m = raw.clone();
    duplicate_module(&mut m, &late_plan(raw), &DupConfig::default());
    m
}

fn flowery_variant(raw: &Module) -> Module {
    let mut m = id_variant(raw);
    apply_flowery(&mut m, &FloweryConfig::default());
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, max_shrink_iters: 50, ..ProptestConfig::default() })]

    #[test]
    fn variants_share_the_golden_prefix_bit_identically(
        (prologue, inner, modulus, faults) in (
            40u32..160,
            5u32..25,
            97u32..2048,
            prop::collection::vec((0.0f64..1.0, 0u8..64), 5..9),
        )
    ) {
        let src = program(prologue, inner, modulus);
        let raw = flowery_lang::compile("share", &src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{src}"));
        let exec = ExecConfig::default();
        let bcfg = flowery_backend::BackendConfig::default();

        let raw_interp = Interpreter::new(&raw);
        let raw_set = raw_interp.capture_snapshots_auto(&exec);
        prop_assert!(raw_set.len() >= 2, "prologue must be long enough to snapshot");
        let raw_prog = flowery_backend::compile_module(&raw, &bcfg);
        let raw_aset = flowery_backend::Machine::new(&raw, &raw_prog).capture_snapshots_auto(&exec);

        for variant in [id_variant(&raw), flowery_variant(&raw)] {
            // IR layer.
            let vi = Interpreter::new(&variant);
            let shared = vi.capture_snapshots_from(&exec, &raw, &raw_set);
            prop_assert!(shared.is_some(), "late-only protection must allow prefix sharing\n{}", &src);
            let shared = shared.unwrap();
            prop_assert!(shared.shared_snaps() >= 1, "no snapshot below the divergence point");
            let fresh = vi.run(&exec, None);
            prop_assert_eq!(&shared.golden().status, &fresh.status);
            prop_assert_eq!(&shared.golden().output, &fresh.output, "continuation golden != fresh golden");
            prop_assert_eq!(shared.golden().dyn_insts, fresh.dyn_insts);
            prop_assert_eq!(shared.golden().fault_sites, fresh.fault_sites);
            // A real variant, not a byte-identical clone: duplication adds
            // instructions (the output itself is semantics-preserved).
            prop_assert_ne!(fresh.dyn_insts, raw_set.golden().dyn_insts);
            let mut scratch = IrScratch::new();
            for &(frac, bit) in &faults {
                let site = ((frac * fresh.fault_sites as f64) as u64).min(fresh.fault_sites - 1);
                let spec = FaultSpec::single(site, u32::from(bit));
                let plain = vi.run(&exec, Some(spec));
                let (ff, _) = vi.run_fast_forward(&exec, spec, &shared, &mut scratch);
                prop_assert_eq!(&ff, &plain, "IR trial @ site {} bit {}\n{}", site, bit, &src);
                scratch.recycle_output(ff.output);
            }

            // Assembly layer.
            let vprog = flowery_backend::compile_module(&variant, &bcfg);
            let vmach = flowery_backend::Machine::new(&variant, &vprog);
            let ashared = vmach.capture_snapshots_from(&exec, (&raw, &raw_prog), &raw_aset);
            prop_assert!(ashared.is_some(), "asm prefix sharing must hold\n{}", &src);
            let ashared = ashared.unwrap();
            prop_assert!(ashared.shared_snaps() >= 1);
            let fresh = vmach.run(&exec, None);
            prop_assert_eq!(&ashared.golden().output, &fresh.output);
            prop_assert_eq!(ashared.golden().fault_sites, fresh.fault_sites);
            let mut scratch = flowery_backend::AsmScratch::new();
            for &(frac, bit) in &faults {
                let site = ((frac * fresh.fault_sites as f64) as u64).min(fresh.fault_sites - 1);
                let spec = flowery_backend::AsmFaultSpec::single(site, u32::from(bit));
                let plain = vmach.run(&exec, Some(spec));
                let (ff, _) = vmach.run_fast_forward(&exec, spec, &ashared, &mut scratch);
                prop_assert_eq!(&ff, &plain, "asm trial @ site {} bit {}\n{}", site, bit, &src);
                scratch.recycle_output(ff.output);
            }
        }
    }
}

/// The harness cache drives the same machinery through its raw-twin
/// lookups: the variant's set is a shared-suffix capture (counted in both
/// `snap_shared` and `snap_captures`), never a second full capture.
#[test]
fn golden_cache_shares_the_raw_prefix_across_variants() {
    let src = program(120, 12, 251);
    let raw = Arc::new(flowery_lang::compile("share", &src).unwrap());
    let var = Arc::new(id_variant(&raw));
    let exec = ExecConfig::default();

    let cache = flowery_harness::GoldenCache::new();
    let vset = cache.ir_snapshots_for(&var, Some(&raw), &exec);
    let st = cache.stats();
    assert_eq!(st.snap_shared, 1, "{st:?}");
    assert_eq!(st.snap_captures, 2, "raw full capture + variant suffix capture: {st:?}");
    assert_eq!(st.goldens_run, 0, "capture runs double as goldens: {st:?}");
    assert!(vset.shared_snaps() >= 1);

    // The seeded goldens match fresh executions of both modules.
    let fresh = Interpreter::new(&var).run(&exec, None);
    assert_eq!(cache.ir_golden(&var, &exec).output, fresh.output);
    assert_eq!(cache.stats().goldens_run, 0);

    // A variant with no raw twin (or an incompatible one) falls back to a
    // full capture and still serves trials — sharing is an optimization,
    // never a requirement.
    let solo = flowery_harness::GoldenCache::new();
    let s = solo.ir_snapshots_for(&var, None, &exec);
    assert_eq!(solo.stats().snap_shared, 0);
    assert_eq!(s.golden().output, fresh.output);
}
