//! Shared random-MiniC program generator for the property suites: nested
//! control flow, int/float arithmetic, bounded loops, in-bounds array
//! traffic, division guarded against zero — programs whose golden runs
//! always complete. Extracted from `prop_equivalence.rs` so the static
//! penetration suite can draw from the same distribution.

use proptest::prelude::*;

/// Size of the two scratch global arrays.
const N: usize = 8;

#[derive(Debug, Clone)]
enum IExpr {
    Const(i64),
    Var(u8),
    ArrA(Box<IExpr>),
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Mul(Box<IExpr>, Box<IExpr>),
    /// Division with a never-zero divisor.
    DivSafe(Box<IExpr>, Box<IExpr>),
    And(Box<IExpr>, Box<IExpr>),
    Xor(Box<IExpr>, Box<IExpr>),
    Shl(Box<IExpr>, u8),
    FromFloat(Box<FExpr>),
}

#[derive(Debug, Clone)]
enum FExpr {
    Const(f64),
    Var(u8),
    Add(Box<FExpr>, Box<FExpr>),
    Mul(Box<FExpr>, Box<FExpr>),
    FromInt(Box<IExpr>),
}

#[derive(Debug, Clone)]
enum Stmt {
    AssignI(u8, IExpr),
    AssignF(u8, FExpr),
    StoreA(IExpr, IExpr),
    If(IExpr, Vec<Stmt>, Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
}

fn render_iexpr(e: &IExpr) -> String {
    match e {
        IExpr::Const(v) => format!("({v})"),
        IExpr::Var(i) => format!("v{}", i % 4),
        IExpr::ArrA(idx) => format!("arr[(({}) % {N} + {N}) % {N}]", render_iexpr(idx)),
        IExpr::Add(a, b) => format!("({} + {})", render_iexpr(a), render_iexpr(b)),
        IExpr::Sub(a, b) => format!("({} - {})", render_iexpr(a), render_iexpr(b)),
        IExpr::Mul(a, b) => format!("(({}) % 1000 * (({}) % 1000))", render_iexpr(a), render_iexpr(b)),
        IExpr::DivSafe(a, b) => {
            format!("({} / (1 + (({}) & 7) * (({}) & 7)))", render_iexpr(a), render_iexpr(b), render_iexpr(b))
        }
        IExpr::And(a, b) => format!("({} & {})", render_iexpr(a), render_iexpr(b)),
        IExpr::Xor(a, b) => format!("({} ^ {})", render_iexpr(a), render_iexpr(b)),
        IExpr::Shl(a, s) => format!("((({}) & 65535) << {})", render_iexpr(a), s % 8),
        IExpr::FromFloat(f) => {
            // Clamp to a safe range before converting.
            format!("int((({})) - floor({}) + 3.0)", render_fexpr(f), render_fexpr(f))
        }
    }
}

fn render_fexpr(e: &FExpr) -> String {
    match e {
        FExpr::Const(v) => format!("({v:?})"),
        FExpr::Var(i) => format!("f{}", i % 2),
        FExpr::Add(a, b) => format!("({} + {})", render_fexpr(a), render_fexpr(b)),
        FExpr::Mul(a, b) => format!("({} * 0.5 * ({}))", render_fexpr(a), render_fexpr(b)),
        FExpr::FromInt(i) => format!("float(({}) % 97)", render_iexpr(i)),
    }
}

fn render_stmts(stmts: &[Stmt], depth: usize, loop_id: &mut u32) -> String {
    let pad = "  ".repeat(depth + 1);
    let mut s = String::new();
    for st in stmts {
        match st {
            Stmt::AssignI(v, e) => s.push_str(&format!("{pad}v{} = {};\n", v % 4, render_iexpr(e))),
            Stmt::AssignF(v, e) => s.push_str(&format!("{pad}f{} = {};\n", v % 2, render_fexpr(e))),
            Stmt::StoreA(idx, e) => s.push_str(&format!(
                "{pad}arr[(({}) % {N} + {N}) % {N}] = ({}) % 100000;\n",
                render_iexpr(idx),
                render_iexpr(e)
            )),
            Stmt::If(c, t, e) => {
                s.push_str(&format!("{pad}if (({}) % 3 != 0) {{\n", render_iexpr(c)));
                s.push_str(&render_stmts(t, depth + 1, loop_id));
                if e.is_empty() {
                    s.push_str(&format!("{pad}}}\n"));
                } else {
                    s.push_str(&format!("{pad}}} else {{\n"));
                    s.push_str(&render_stmts(e, depth + 1, loop_id));
                    s.push_str(&format!("{pad}}}\n"));
                }
            }
            Stmt::Loop(n, body) => {
                *loop_id += 1;
                let it = format!("it{loop_id}");
                s.push_str(&format!(
                    "{pad}int {it};\n{pad}for ({it} = 0; {it} < {}; {it} = {it} + 1) {{\n",
                    n % 6 + 1
                ));
                s.push_str(&render_stmts(body, depth + 1, loop_id));
                s.push_str(&format!("{pad}}}\n"));
            }
        }
    }
    s
}

fn render_program(stmts: &[Stmt]) -> String {
    let mut loop_id = 0;
    let body = render_stmts(stmts, 0, &mut loop_id);
    format!(
        "global int arr[{N}] = {{3, 1, 4, 1, 5, 9, 2, 6}};\n\
         int main() {{\n\
           int v0 = 7; int v1 = -2; int v2 = 11; int v3 = 0;\n\
           float f0 = 1.5; float f1 = -0.25;\n\
         {body}\
           output(v0); output(v1); output(v2); output(v3);\n\
           output(f0); output(f1);\n\
           int i;\n\
           int chk = 0;\n\
           for (i = 0; i < {N}; i = i + 1) {{ chk = chk + arr[i] * (i + 1); }}\n\
           output(chk);\n\
           return (v0 ^ v1 ^ v2 ^ v3 ^ chk) & 65535;\n\
         }}\n"
    )
}

fn iexpr_strategy(depth: u32) -> impl Strategy<Value = IExpr> {
    let leaf = prop_oneof![(-50i64..50).prop_map(IExpr::Const), (0u8..4).prop_map(IExpr::Var),];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| IExpr::ArrA(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::DivSafe(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..8).prop_map(|(a, s)| IExpr::Shl(Box::new(a), s)),
            fexpr_leaf().prop_map(|f| IExpr::FromFloat(Box::new(f))),
        ]
    })
}

fn fexpr_leaf() -> impl Strategy<Value = FExpr> {
    prop_oneof![(-4.0f64..4.0).prop_map(FExpr::Const), (0u8..2).prop_map(FExpr::Var)]
}

fn fexpr_strategy() -> impl Strategy<Value = FExpr> {
    let leaf = prop_oneof![(-4.0f64..4.0).prop_map(FExpr::Const), (0u8..2).prop_map(FExpr::Var),];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FExpr::Mul(Box::new(a), Box::new(b))),
            iexpr_strategy(1).prop_map(|i| FExpr::FromInt(Box::new(i))),
        ]
    })
}

fn stmt_strategy(depth: u32) -> BoxedStrategy<Stmt> {
    let leaf = prop_oneof![
        (0u8..4, iexpr_strategy(2)).prop_map(|(v, e)| Stmt::AssignI(v, e)),
        (0u8..2, fexpr_strategy()).prop_map(|(v, e)| Stmt::AssignF(v, e)),
        (iexpr_strategy(1), iexpr_strategy(2)).prop_map(|(i, e)| Stmt::StoreA(i, e)),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let nested = stmt_strategy(depth - 1);
    prop_oneof![
        4 => leaf,
        1 => (iexpr_strategy(1), prop::collection::vec(nested.clone(), 1..4), prop::collection::vec(nested.clone(), 0..3))
            .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
        1 => (0u8..6, prop::collection::vec(nested, 1..4)).prop_map(|(n, b)| Stmt::Loop(n, b)),
    ]
    .boxed()
}

pub fn program_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(stmt_strategy(2), 1..10).prop_map(|s| render_program(&s))
}
