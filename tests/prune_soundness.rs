//! Soundness gate for the static bit-lattice prune (`--static-prune`).
//!
//! The prune's contract: a (site, bit) pair the analyzer proves masked
//! may be resolved as Benign *without executing the trial*. That claim is
//! falsifiable by direct experiment — inject exactly the proven-masked
//! pairs and check nothing deviates — and this suite does so three ways:
//!
//! 1. **Differential proptest** — on random MiniC programs (generator
//!    shared with the other property suites), every sampled proven-masked
//!    pair must execute to a Benign outcome. A single SDC/Detected/DUE
//!    from a proven pair is a hard counterexample to the bit engine.
//! 2. **Workload sweep** — the same differential check on all 16 Table-1
//!    benchmarks × raw/id/flowery at Tiny scale (the CI soundness gate).
//! 3. **Pruned-vs-full agreement** — `run_units` with `static_prune` on
//!    must reproduce the unpruned campaign's per-unit counts, Wilson CI,
//!    SDC attributions, and region tallies bit-for-bit, while actually
//!    pruning a nonzero number of trials (so the equality is not vacuous).

mod common;

use common::program_strategy;
use flowery_analysis::statline::analyze_bits;
use flowery_backend::{compile_module, AsmFaultSpec, BackendConfig, Machine};
use flowery_harness::{build_matrix, run_units, GoldenCache, HarnessConfig, MatrixSpec, RunOptions};
use flowery_inject::{classify, Outcome};
use flowery_ir::interp::ExecConfig;
use flowery_ir::Module;
use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use flowery_workloads::{workload, Scale, NAMES};
use proptest::prelude::*;

fn protect(mut m: Module, pass: &str) -> Module {
    if pass != "raw" {
        let plan = ProtectionPlan::full(&m);
        duplicate_module(&mut m, &plan, &DupConfig::default());
        if pass == "flowery" {
            apply_flowery(&mut m, &FloweryConfig::default());
        }
    }
    m
}

/// Inject up to `budget` proven-masked (site, bit) pairs of `m` and return
/// `(pairs tested, deviations)` — any non-Benign outcome from a proven
/// pair is a deviation. Pairs are spread deterministically across the
/// dynamic site trace so early and late program phases are both covered.
fn inject_proven_masked(m: &Module, budget: usize) -> (usize, Vec<String>) {
    let bcfg = BackendConfig::default();
    let prog = compile_module(m, &bcfg);
    let table = analyze_bits(m, &prog);
    let exec = ExecConfig::default();
    let mach = Machine::new(m, &prog);
    let golden = mach.run(&exec, None);
    let sites = mach.site_trace(&exec, 100_000);

    // Every dynamic (site, masked bit-family) pair, site-major. Sampled
    // at a stride that fits the budget: family `bit` at dynamic site `i`.
    let candidates: Vec<(u64, u32)> = sites
        .iter()
        .enumerate()
        .flat_map(|(i, &inst)| {
            let v = table.verdicts[inst as usize];
            (0..64)
                .filter(move |&b| (v.proven_masked >> b) & 1 == 1)
                .map(move |b| (i as u64, b))
        })
        .collect();
    let stride = (candidates.len() / budget.max(1)).max(1);
    let mut tested = 0;
    let mut deviations = Vec::new();
    for &(site, bit) in candidates.iter().step_by(stride) {
        tested += 1;
        let r = mach.run(&exec, Some(AsmFaultSpec::single(site, bit)));
        let outcome = classify(r.status, &r.output, golden.status, &golden.output);
        if outcome != Outcome::Benign {
            deviations.push(format!(
                "site {site} (inst {} = {:?}) bit {bit}: {outcome:?}",
                sites[site as usize], prog.insts[sites[site as usize] as usize].kind
            ));
        }
    }
    (tested, deviations)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, max_shrink_iters: 0, ..ProptestConfig::default() })]

    #[test]
    fn proven_masked_pairs_are_benign_on_random_programs(src in program_strategy()) {
        let raw = flowery_lang::compile("prop", &src).unwrap();
        for pass in ["raw", "id"] {
            let m = protect(raw.clone(), pass);
            let (tested, deviations) = inject_proven_masked(&m, 160);
            prop_assert!(
                deviations.is_empty(),
                "[{pass}] {} of {tested} proven-masked pairs deviated:\n{}\n{src}",
                deviations.len(),
                deviations.join("\n")
            );
        }
    }
}

#[test]
fn proven_masked_pairs_are_benign_on_all_workloads() {
    let mut total_tested = 0usize;
    let mut failures = Vec::new();
    for name in NAMES {
        let raw = workload(name, Scale::Tiny).compile();
        for pass in ["raw", "id", "flowery"] {
            let m = protect(raw.clone(), pass);
            let (tested, deviations) = inject_proven_masked(&m, 60);
            total_tested += tested;
            if !deviations.is_empty() {
                failures.push(format!("{name}/{pass}: {}", deviations.join("; ")));
            }
        }
    }
    assert!(total_tested > 500, "the sweep must exercise a real sample, got {total_tested}");
    assert!(
        failures.is_empty(),
        "proven-masked pairs deviated on {} workload variants:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn pruned_campaign_agrees_with_full_campaign() {
    let spec = MatrixSpec {
        benches: vec!["crc32".into(), "quicksort".into()],
        scale: Scale::Tiny,
        levels: vec![1.0],
        profile_trials: 100,
        ..Default::default()
    };
    let units = build_matrix(&spec);
    let cfg = HarnessConfig {
        max_trials: 400,
        batch_size: 100,
        min_trials: 100,
        ci_target: Some(0.05),
        threads: 2,
        ..Default::default()
    };
    let full = run_units(&units, &cfg, &GoldenCache::new(), RunOptions::default());
    let pruned_cfg = HarnessConfig { static_prune: true, ..cfg };
    let pruned = run_units(&units, &pruned_cfg, &GoldenCache::new(), RunOptions::default());

    assert_eq!(full.units.len(), pruned.units.len());
    let mut pruned_total = 0;
    for (f, p) in full.units.iter().zip(&pruned.units) {
        assert_eq!(f.key, p.key);
        assert_eq!(f.trials, p.trials, "{}: Wilson early-stop point must not move", f.key.id());
        assert_eq!(f.counts, p.counts, "{}: outcome counts must be bit-identical", f.key.id());
        assert_eq!(f.sdc, p.sdc, "{}: Wilson estimate must be unbiased under pruning", f.key.id());
        assert_eq!(f.sdc_insts, p.sdc_insts, "{}: SDC attributions must match", f.key.id());
        assert_eq!(f.region_counts, p.region_counts, "{}: region tallies must match", f.key.id());
        assert_eq!(f.pruned, 0, "unpruned campaigns record no pruned trials");
        pruned_total += p.pruned;
    }
    assert!(pruned_total > 0, "the agreement must not be vacuous — some trials must actually prune");
    assert!(pruned.metrics.bits_proven_masked > 0, "proven-pair metric records the table mass");
    // Metrics count every executed batch, including in-flight batches past
    // the Wilson early-stop prefix that the unit tally drops — so >=.
    assert!(pruned.metrics.bits_pruned_trials_saved >= pruned_total, "metrics cover the unit tallies");
    assert_eq!(full.metrics.bits_pruned_trials_saved, 0);
}
