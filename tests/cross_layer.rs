//! Integration tests for the paper's central claims (Observations 1-3 in
//! §5.1 and the Flowery results in §7.1), at smoke scale.

use flowery_core::{run_bench, ExperimentConfig};
use flowery_workloads::{workload, Scale};

fn smoke(name: &str) -> flowery_core::BenchResults {
    let mut cfg = ExperimentConfig::smoke();
    cfg.trials = 400;
    cfg.scale = Scale::Tiny;
    let w = workload(name, cfg.scale);
    run_bench(&w, &cfg)
}

#[test]
fn observation3_full_protection_is_complete_at_ir_level() {
    // "at LLVM level fault injection ... instruction duplication with full
    //  protection can effectively detect all the SDCs"
    for name in ["is", "pathfinder", "crc32"] {
        let r = smoke(name);
        let full = r.full_level();
        assert_eq!(
            full.id_ir_counts.sdc, 0,
            "{name}: full protection must leave zero IR-level SDCs: {:?}",
            full.id_ir_counts
        );
        assert!(full.id_ir.coverage > 0.999, "{name}: {:?}", full.id_ir);
    }
}

#[test]
fn observation2_assembly_coverage_falls_short() {
    for name in ["quicksort", "needle"] {
        let r = smoke(name);
        let full = r.full_level();
        assert!(
            full.id_asm.coverage < full.id_ir.coverage - 0.05,
            "{name}: expected a clear cross-layer gap, got IR {:.3} vs asm {:.3}",
            full.id_ir.coverage,
            full.id_asm.coverage
        );
        assert!(full.id_asm_counts.sdc > 0, "{name}: assembly-level SDCs must exist under full protection");
    }
}

#[test]
fn flowery_closes_most_of_the_gap() {
    for name in ["is", "quicksort"] {
        let r = smoke(name);
        let full = r.full_level();
        let gap_id = full.id_ir.coverage - full.id_asm.coverage;
        let gap_fl = full.id_ir.coverage - full.flowery_asm.coverage;
        assert!(
            gap_fl < gap_id * 0.6,
            "{name}: Flowery should close more than 40% of the gap: ID gap {gap_id:.3}, Flowery gap {gap_fl:.3}"
        );
    }
}

#[test]
fn protection_levels_trade_off_coverage_for_overhead() {
    let mut cfg = ExperimentConfig::smoke();
    cfg.trials = 400;
    cfg.levels = vec![0.3, 1.0];
    let w = workload("pathfinder", cfg.scale);
    let r = run_bench(&w, &cfg);
    let l30 = r.at_level(0.3).unwrap();
    let l100 = r.at_level(1.0).unwrap();
    assert!(l30.selected < l100.selected);
    assert!(l30.id_dyn < l100.id_dyn, "higher level costs more dynamic instructions");
    assert!(
        l30.id_ir.coverage <= l100.id_ir.coverage + 0.05,
        "IR coverage grows with level: {:.3} vs {:.3}",
        l30.id_ir.coverage,
        l100.id_ir.coverage
    );
}

#[test]
fn rootcause_distribution_shape_matches_paper() {
    // Aggregated over a few benchmarks, store+branch+comparison must
    // dominate the deficiency cases (paper: 94.5%).
    let mut agg = flowery_analysis::PenetrationBreakdown::default();
    for name in ["is", "quicksort", "needle"] {
        let r = smoke(name);
        agg.merge(&r.full_level().rootcause);
    }
    let defic = agg.deficiency_total();
    assert!(defic > 0);
    let big3 = agg.store + agg.branch + agg.comparison;
    assert!(big3 as f64 >= 0.7 * defic as f64, "store/branch/comparison must dominate: {agg:?}");
    // Store penetration is the single largest category in the paper (39.1%).
    assert!(agg.store > 0);
}

#[test]
fn detected_rate_rises_with_protection() {
    let r = smoke("crc32");
    let full = r.full_level();
    assert!(
        full.id_ir_counts.detected_rate() > 0.1,
        "checkers must catch a sizable share at IR level: {:?}",
        full.id_ir_counts
    );
    assert!(
        full.flowery_asm_counts.detected_rate() >= full.id_asm_counts.detected_rate(),
        "Flowery adds detection at assembly level"
    );
}
