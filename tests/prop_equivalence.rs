//! Property-based tests: randomly generated MiniC programs must behave
//! bit-identically on the IR interpreter and the machine simulator, and
//! instruction duplication + Flowery must preserve fault-free semantics.
//!
//! The program generator lives in `tests/common/mod.rs` (shared with the
//! static-penetration property suite).

mod common;

use common::program_strategy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, max_shrink_iters: 200, ..ProptestConfig::default() })]

    #[test]
    fn interpreter_and_machine_agree(src in program_strategy()) {
        use flowery_ir::interp::{ExecConfig, Interpreter};
        let m = flowery_lang::compile("prop", &src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{src}"));
        let ir = Interpreter::new(&m).run(&ExecConfig::default(), None);
        prop_assert!(ir.status.is_completed(), "golden run must complete: {:?}\n{}", ir.status, src);
        let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let asm = flowery_backend::Machine::new(&m, &prog).run(&ExecConfig::default(), None);
        prop_assert_eq!(ir.status, asm.status, "status diverged\n{}", &src);
        prop_assert_eq!(ir.output, asm.output, "output diverged\n{}", &src);
    }

    #[test]
    fn protection_preserves_semantics(src in program_strategy()) {
        use flowery_ir::interp::{ExecConfig, Interpreter};
        use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
        let raw = flowery_lang::compile("prop", &src).unwrap();
        let golden = Interpreter::new(&raw).run(&ExecConfig::default(), None);
        prop_assert!(golden.status.is_completed());

        let mut id = raw.clone();
        let plan = ProtectionPlan::full(&id);
        duplicate_module(&mut id, &plan, &DupConfig::default());
        flowery_ir::verify::verify_module(&id).expect("ID verifies");
        let mut fl = id.clone();
        apply_flowery(&mut fl, &FloweryConfig::default());
        flowery_ir::verify::verify_module(&fl).expect("Flowery verifies");

        for m in [&id, &fl] {
            let r = Interpreter::new(m).run(&ExecConfig::default(), None);
            prop_assert_eq!(r.status, golden.status, "IR\n{}", &src);
            prop_assert_eq!(&r.output, &golden.output, "IR\n{}", &src);
            let prog = flowery_backend::compile_module(m, &flowery_backend::BackendConfig::default());
            let a = flowery_backend::Machine::new(m, &prog).run(&ExecConfig::default(), None);
            prop_assert_eq!(a.status, golden.status, "asm\n{}", &src);
            prop_assert_eq!(&a.output, &golden.output, "asm\n{}", &src);
        }
    }

    #[test]
    fn faults_never_panic_the_simulators(src in program_strategy()) {
        use flowery_ir::interp::{ExecConfig, FaultSpec, Interpreter};
        let m = flowery_lang::compile("prop", &src).unwrap();
        let interp = Interpreter::new(&m);
        let golden = interp.run(&ExecConfig::default(), None);
        let exec = ExecConfig::with_budget_for(golden.dyn_insts);
        // IR faults: totality — any site/bit must produce a classified
        // outcome, never a crash of the host.
        for site in (0..golden.fault_sites).step_by((golden.fault_sites as usize / 5).max(1)) {
            let _ = interp.run(&exec, Some(FaultSpec::single(site, 63)));
        }
        let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let mach = flowery_backend::Machine::new(&m, &prog);
        let g = mach.run(&ExecConfig::default(), None);
        for site in (0..g.fault_sites).step_by((g.fault_sites as usize / 5).max(1)) {
            let _ = mach.run(&exec, Some(flowery_backend::AsmFaultSpec::single(site, 62)));
        }
    }
}
