//! Property tests for the static penetration analyzer (`flowery lint`).
//!
//! Two properties over randomly generated MiniC programs (generator shared
//! with `prop_equivalence.rs` via `tests/common/mod.rs`):
//!
//! 1. **Soundness** — at full instruction duplication, every assembly-level
//!    SDC site an injection campaign finds must be statically flagged. The
//!    campaign is a sampled lower bound of the true vulnerable set, so any
//!    site it proves vulnerable that the lint calls `Protected` is a hard
//!    counterexample to the taint engine's over-approximation.
//! 2. **Flowery convergence** — after the three Flowery patches the lint
//!    must predict zero *branch* penetrations (the postponed branch check
//!    guards every at-risk branch), and zero *comparison* penetrations
//!    whenever the Layer-2 lint confirms no shadow survives compare folding
//!    (`anti_cmp` can miss exotic compare shapes — stringsearch — in which
//!    case the Layer-1 predictions and Layer-2 `foldable-checker` findings
//!    must agree that a residual exists). Store penetration legitimately
//!    persists under Flowery (a corrupted store *address* re-reads the same
//!    wrong cell it wrote, so the load-back check passes) and is not gated.

mod common;

use common::program_strategy;
use flowery_analysis::statline::{lint_module, predict_program, InvariantKind};
use flowery_backend::{compile_module, BackendConfig};
use flowery_inject::{run_asm_campaign, CampaignConfig};
use flowery_ir::Module;
use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use proptest::prelude::*;

fn protect(src: &str, flowery: bool) -> Module {
    let mut m = flowery_lang::compile("prop", src).unwrap();
    let plan = ProtectionPlan::full(&m);
    duplicate_module(&mut m, &plan, &DupConfig::default());
    if flowery {
        apply_flowery(&mut m, &FloweryConfig::default());
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, max_shrink_iters: 0, ..ProptestConfig::default() })]

    #[test]
    fn campaign_sdc_sites_are_statically_flagged(src in program_strategy()) {
        let m = protect(&src, false);
        let bcfg = BackendConfig::default();
        let prog = compile_module(&m, &bcfg);
        let report = predict_program(&m, &prog, bcfg.fold_compares);
        let camp = run_asm_campaign(&m, &prog, &CampaignConfig::with_trials(250));
        for &idx in &camp.sdc_insts {
            prop_assert!(
                report.is_flagged(idx),
                "measured SDC site {idx} ({:?}) escaped the static pass\n{src}",
                prog.insts[idx as usize].kind
            );
        }
    }

    #[test]
    fn flowery_predicts_no_branch_and_fold_free_comparison(src in program_strategy()) {
        let m = protect(&src, true);
        let bcfg = BackendConfig::default();
        let prog = compile_module(&m, &bcfg);
        let report = predict_program(&m, &prog, bcfg.fold_compares);
        prop_assert_eq!(
            report.breakdown.branch, 0,
            "Flowery's postponed branch check must close every branch shape\n{}", &src
        );
        let foldable = lint_module(&m)
            .iter()
            .filter(|f| f.kind == InvariantKind::FoldableChecker)
            .count();
        if foldable == 0 {
            prop_assert_eq!(
                report.breakdown.comparison, 0,
                "no foldable checker survives, yet comparison predicted\n{}", &src
            );
        }
    }
}
