//! Differential guarantees for region-level composition (`flowery diff`).
//!
//! Three claims, checked on randomly generated MiniC programs and on all
//! 16 Table-1 workloads:
//!
//! 1. **Exact attribution** — the monolithic engine attributes every
//!    trial to exactly one region: per unit, the per-region tallies sum
//!    bit-for-bit to the unit's outcome counts, for any snapshot setting
//!    and either machine-layer executor.
//! 2. **Deterministic re-sampling** — an incremental run's region
//!    profiles are bit-identical across executors and snapshot settings
//!    (scoped trials never fast-forward, and engines are bit-identical).
//! 3. **Statistical composition** — a fresh incremental run (empty
//!    baseline, region-scoped trial streams) composes a whole-program SDC
//!    estimate that agrees with the monolithic campaign's ground truth
//!    within the combined 95% Wilson intervals. The two runs sample
//!    *different* trial streams, so this is the claim the paper-level
//!    composition rule actually needs.

mod common;

use common::program_strategy;
use flowery_harness::{
    build_matrix, run_diff, run_units, Baseline, GoldenCache, HarnessConfig, MatrixSpec, RunOptions, TrialUnit,
};
use flowery_inject::OutcomeCounts;
use flowery_workloads::{Scale, NAMES};
use proptest::prelude::*;
use std::collections::HashMap;

fn cfg(snapshots: bool, executor: flowery_backend::ExecMode) -> HarnessConfig {
    let mut c = HarnessConfig {
        batch_size: 25,
        max_trials: 50,
        min_trials: 50,
        ci_target: None,
        seed: 0x9E61_0221,
        threads: 2,
        snapshots,
        ..HarnessConfig::default()
    };
    c.exec.executor = executor;
    c
}

fn source_matrix(src: &str) -> Vec<TrialUnit> {
    build_matrix(&MatrixSpec {
        sources: vec![("prop".into(), src.into())],
        scale: Scale::Tiny,
        levels: vec![1.0],
        threads: 2,
        ..Default::default()
    })
}

fn bench_matrix(bench: &str) -> Vec<TrialUnit> {
    build_matrix(&MatrixSpec {
        benches: vec![bench.into()],
        scale: Scale::Tiny,
        levels: vec![1.0],
        threads: 2,
        ..Default::default()
    })
}

/// Claim 1: per-region tallies are an exact partition of the unit tallies.
fn assert_exact_attribution(
    units: &[TrialUnit],
    cfg: &HarnessConfig,
    cache: &GoldenCache,
) -> flowery_harness::CampaignReport {
    let mono = run_units(units, cfg, cache, RunOptions::default());
    assert!(!mono.interrupted && mono.error.is_none());
    for u in &mono.units {
        let mut sum = OutcomeCounts::default();
        for (_, c) in &u.region_counts {
            sum.merge(c);
        }
        assert_eq!(sum.total(), u.trials, "{}: unattributed trials", u.key);
        assert_eq!(sum, u.counts, "{}: region tallies are not a partition of the unit tallies", u.key);
    }
    mono
}

/// Claim 3: the composed estimate agrees with the monolithic ground truth
/// within the combined 95% Wilson intervals (different trial streams).
fn assert_composition_within_ci(
    units: &[TrialUnit],
    cfg: &HarnessConfig,
    cache: &GoldenCache,
    mono: &flowery_harness::CampaignReport,
) {
    let empty = Baseline {
        header: cfg.header(),
        regions: HashMap::new(),
        pre_region: true,
    };
    let diff = run_diff(units, cfg, cache, &empty, &HashMap::new());
    assert_eq!(diff.units.len(), mono.units.len());
    for (m, d) in mono.units.iter().zip(&diff.units) {
        assert_eq!(m.key, d.key);
        assert!(d.trials_run > 0 || d.composed.mass == 0, "{}: fresh diff ran nothing", d.key);
        let gap = (d.composed.value - m.sdc.value).abs();
        let tol = d.composed.ci95 + m.sdc.ci95;
        assert!(
            gap <= tol,
            "{}: composed sdc {:.4} vs monolithic {:.4} (gap {:.4} > combined ci {:.4})",
            d.key,
            d.composed.value,
            m.sdc.value,
            gap,
            tol
        );
    }
}

/// Claim 2: incremental region profiles are executor- and snapshot-
/// independent bit for bit.
fn assert_diff_is_config_independent(units: &[TrialUnit], cache: &GoldenCache) {
    let mut runs = Vec::new();
    for snapshots in [true, false] {
        for exec in [flowery_backend::ExecMode::Interp, flowery_backend::ExecMode::Compiled] {
            let cfg = cfg(snapshots, exec);
            let empty = Baseline {
                header: cfg.header(),
                regions: HashMap::new(),
                pre_region: true,
            };
            runs.push(run_diff(units, &cfg, cache, &empty, &HashMap::new()));
        }
    }
    let first = &runs[0];
    for r in &runs[1..] {
        for (a, b) in first.units.iter().zip(&r.units) {
            assert_eq!(
                a.regions, b.regions,
                "{}: diff profiles diverged across executor/snapshot settings",
                a.key
            );
            assert_eq!(a.counts, b.counts);
            assert_eq!(a.composed, b.composed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, max_shrink_iters: 50, ..ProptestConfig::default() })]

    #[test]
    fn random_programs_compose_exactly_and_within_ci(src in program_strategy()) {
        let units = source_matrix(&src);
        let cache = GoldenCache::new();
        // Attribution is exact for every snapshot/executor combination,
        // and the monolithic tallies are identical across all four.
        let mut monos = Vec::new();
        for snapshots in [true, false] {
            for exec in [flowery_backend::ExecMode::Interp, flowery_backend::ExecMode::Compiled] {
                monos.push(assert_exact_attribution(&units, &cfg(snapshots, exec), &cache));
            }
        }
        for m in &monos[1..] {
            for (a, b) in monos[0].units.iter().zip(&m.units) {
                prop_assert_eq!(&a.counts, &b.counts, "monolithic counts diverged: {}\n{}", &a.key, &src);
                prop_assert_eq!(&a.region_counts, &b.region_counts, "region tallies diverged: {}\n{}", &a.key, &src);
            }
        }
        assert_diff_is_config_independent(&units, &cache);
        let c = cfg(true, flowery_backend::ExecMode::Compiled);
        assert_composition_within_ci(&units, &c, &cache, &monos[3]);
    }
}

#[test]
fn all_sixteen_workloads_compose_within_ci() {
    assert_eq!(NAMES.len(), 16);
    let c = cfg(true, flowery_backend::ExecMode::Compiled);
    for bench in NAMES {
        let units = bench_matrix(bench);
        let cache = GoldenCache::new();
        let mono = assert_exact_attribution(&units, &c, &cache);
        assert_composition_within_ci(&units, &c, &cache, &mono);
    }
}
