//! Differential tests for snapshot fast-forward: a trial restored from a
//! golden-run snapshot must be **byte-identical** to the same trial
//! executed from scratch — status, output, counters, and injection
//! attribution — at both the IR and the assembly layer.
//!
//! The generator varies program shape (loop extents, call density, global
//! array traffic) and then samples fault sites across the whole dynamic
//! range, so late injection sites (the fast-forward win) and pre-snapshot
//! sites (the fallback path) are both exercised.

use flowery_ir::interp::{ExecConfig, FaultSpec, Interpreter};
use proptest::prelude::*;

/// A loop/call/store-heavy program whose golden run is long enough for
/// several snapshots at the test cadence.
fn program(outer: u32, inner: u32, modulus: u32) -> String {
    format!(
        "global int arr[16] = {{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}};\n\
         int work(int x) {{\n\
           int j; int t = x;\n\
           for (j = 0; j < {inner}; j = j + 1) {{\n\
             t = t + arr[((t + j) % 16 + 16) % 16] * (j + 1);\n\
             arr[(t % 16 + 16) % 16] = t % {modulus};\n\
           }}\n\
           return t;\n\
         }}\n\
         int main() {{\n\
           int i; int s = 0;\n\
           for (i = 0; i < {outer}; i = i + 1) {{\n\
             s = s + work(i);\n\
             if (s % 7 == 0) {{ output(s); }}\n\
           }}\n\
           output(s);\n\
           return s & 65535;\n\
         }}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, max_shrink_iters: 50, ..ProptestConfig::default() })]

    #[test]
    fn fast_forwarded_trials_are_bit_identical(
        ((outer, inner), modulus, interval, faults) in (
            (15u32..90, 4u32..30),
            97u32..9973,
            64u64..512,
            prop::collection::vec((0.0f64..1.0, 0u8..64), 4..8),
        )
    ) {
        let src = program(outer, inner, modulus);
        let m = flowery_lang::compile("snap", &src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{src}"));

        // IR layer.
        let interp = Interpreter::new(&m);
        let golden = interp.run(&ExecConfig::default(), None);
        prop_assert!(golden.status.is_completed(), "golden must complete: {:?}", golden.status);
        // Tight budget: livelocked fault trials run it out in BOTH paths.
        let exec = ExecConfig {
            max_dyn_insts: golden.dyn_insts * 2 + 10_000,
            ..ExecConfig::default()
        };
        let set = interp.capture_snapshots(&exec, interval);
        prop_assert_eq!(set.golden().output.clone(), golden.output.clone());
        let mut scratch = flowery_ir::interp::IrScratch::new();
        for &(frac, bit) in &faults {
            let site = ((frac * golden.fault_sites as f64) as u64).min(golden.fault_sites - 1);
            let spec = FaultSpec::single(site, bit as u32);
            let plain = interp.run(&exec, Some(spec));
            let (ff, skipped) = interp.run_fast_forward(&exec, spec, &set, &mut scratch);
            prop_assert_eq!(ff.status, plain.status, "IR status @ site {} bit {}\n{}", site, bit, &src);
            prop_assert_eq!(&ff.output, &plain.output, "IR output @ site {}\n{}", site, &src);
            prop_assert_eq!(ff.dyn_insts, plain.dyn_insts, "IR dyn_insts @ site {}\n{}", site, &src);
            prop_assert_eq!(ff.fault_sites, plain.fault_sites, "IR fault_sites @ site {}\n{}", site, &src);
            prop_assert_eq!(ff.injected_at, plain.injected_at, "IR injected_at @ site {}\n{}", site, &src);
            prop_assert!(skipped <= ff.dyn_insts, "cannot skip more than the trial ran");
            scratch.recycle_output(ff.output);
        }

        // Assembly layer.
        let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let mach = flowery_backend::Machine::new(&m, &prog);
        let g = mach.run(&ExecConfig::default(), None);
        prop_assert!(g.status.is_completed());
        let exec = ExecConfig { max_dyn_insts: g.dyn_insts * 2 + 10_000, ..ExecConfig::default() };
        let set = mach.capture_snapshots(&exec, interval);
        prop_assert_eq!(set.golden().output.clone(), g.output.clone());
        let mut scratch = flowery_backend::AsmScratch::new();
        for &(frac, bit) in &faults {
            let site = ((frac * g.fault_sites as f64) as u64).min(g.fault_sites - 1);
            let spec = flowery_backend::AsmFaultSpec::single(site, bit as u32);
            let plain = mach.run(&exec, Some(spec));
            let (ff, _skipped) = mach.run_fast_forward(&exec, spec, &set, &mut scratch);
            prop_assert_eq!(ff.status, plain.status, "asm status @ site {} bit {}\n{}", site, bit, &src);
            prop_assert_eq!(&ff.output, &plain.output, "asm output @ site {}\n{}", site, &src);
            prop_assert_eq!(ff.dyn_insts, plain.dyn_insts, "asm dyn_insts @ site {}\n{}", site, &src);
            prop_assert_eq!(ff.fault_sites, plain.fault_sites, "asm fault_sites @ site {}\n{}", site, &src);
            prop_assert_eq!(ff.cycles, plain.cycles, "asm cycles @ site {}\n{}", site, &src);
            prop_assert_eq!(ff.injected_inst, plain.injected_inst, "asm injected_inst @ site {}\n{}", site, &src);
            scratch.recycle_output(ff.output);
        }
    }
}

/// Whole-campaign differential over trial indices: the runner with
/// snapshots attached must reproduce the scratch runner trial for trial,
/// including the outcome classification.
#[test]
fn trial_runner_indices_match_with_and_without_snapshots() {
    let src = program(60, 12, 1009);
    let m = flowery_lang::compile("snap", &src).unwrap();
    let exec = ExecConfig::default();

    let mut plain = flowery_inject::IrTrialRunner::new(&m, &exec);
    let mut ff = flowery_inject::IrTrialRunner::new(&m, &exec);
    ff.enable_snapshots();
    let mut skipped_any = false;
    for i in 0..150 {
        let a = plain.run_trial(0xFEED, i, false);
        let b = ff.run_trial(0xFEED, i, false);
        assert_eq!(a.outcome, b.outcome, "IR trial {i}");
        assert_eq!(a.injected_at, b.injected_at, "IR trial {i}");
        assert_eq!(a.ff_insts + a.exec_insts, b.ff_insts + b.exec_insts, "IR trial {i}");
        skipped_any |= b.ff_insts > 0;
    }
    assert!(skipped_any, "a long program must fast-forward some trials");

    let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
    let mut plain = flowery_inject::AsmTrialRunner::new(&m, &prog, &exec);
    let mut ff = flowery_inject::AsmTrialRunner::new(&m, &prog, &exec);
    ff.enable_snapshots();
    let mut skipped_any = false;
    for i in 0..150 {
        let a = plain.run_trial(0xFEED, i, false);
        let b = ff.run_trial(0xFEED, i, false);
        assert_eq!(a.outcome, b.outcome, "asm trial {i}");
        assert_eq!(a.injected_inst, b.injected_inst, "asm trial {i}");
        assert_eq!(a.ff_insts + a.exec_insts, b.ff_insts + b.exec_insts, "asm trial {i}");
        skipped_any |= b.ff_insts > 0;
    }
    assert!(skipped_any, "a long program must fast-forward some trials");
}
