//! Reproducibility: identical seeds must give identical campaigns, and the
//! study results must round-trip through JSON.

use flowery_backend::{compile_module, BackendConfig};
use flowery_inject::{run_asm_campaign, run_ir_campaign, CampaignConfig};
use flowery_workloads::{workload, Scale};

#[test]
fn campaigns_reproduce_with_same_seed() {
    let m = workload("is", Scale::Tiny).compile();
    let mut cfg = CampaignConfig::with_trials(300);
    cfg.threads = 2;
    let a = run_ir_campaign(&m, &cfg);
    let b = run_ir_campaign(&m, &cfg);
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.sdc_by_inst, b.sdc_by_inst);

    let prog = compile_module(&m, &BackendConfig::default());
    let c = run_asm_campaign(&m, &prog, &cfg);
    let d = run_asm_campaign(&m, &prog, &cfg);
    assert_eq!(c.counts, d.counts);
    let mut ci = c.sdc_insts.clone();
    let mut di = d.sdc_insts.clone();
    ci.sort();
    di.sort();
    assert_eq!(ci, di);
}

#[test]
fn different_seeds_differ() {
    let m = workload("is", Scale::Tiny).compile();
    let a = run_ir_campaign(&m, &CampaignConfig { seed: 1, ..CampaignConfig::with_trials(400) });
    let b = run_ir_campaign(&m, &CampaignConfig { seed: 2, ..CampaignConfig::with_trials(400) });
    assert_ne!(
        (a.counts.sdc, a.counts.benign, a.counts.due),
        (b.counts.sdc, b.counts.benign, b.counts.due),
        "different seeds should explore different fault sites"
    );
}

#[test]
fn study_results_round_trip_json() {
    let mut cfg = flowery_core::ExperimentConfig::smoke();
    cfg.trials = 150;
    let study = flowery_core::run_study(&["is"], &cfg);
    let json = serde_json::to_string(&study).expect("serialize");
    let back: flowery_core::StudyResults = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.benches.len(), study.benches.len());
    assert_eq!(back.benches[0].name, "is");
    assert_eq!(back.benches[0].levels.len(), study.benches[0].levels.len());
    assert_eq!(back.benches[0].full_level().id_asm_counts, study.benches[0].full_level().id_asm_counts);
}

#[test]
fn asm_program_serializes() {
    let m = workload("crc32", Scale::Tiny).compile();
    let prog = compile_module(&m, &BackendConfig::default());
    let json = serde_json::to_string(&prog).expect("serialize program");
    let back: flowery_backend::AsmProgram = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.insts.len(), prog.insts.len());
    assert_eq!(back.main_entry, prog.main_entry);
}

#[test]
fn module_serializes() {
    let m = workload("bfs", Scale::Tiny).compile();
    let json = serde_json::to_string(&m).expect("serialize module");
    let back: flowery_ir::Module = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, m);
}
