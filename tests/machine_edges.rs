//! Machine-simulator and interpreter edge cases: the simulators must be
//! total — every abnormal situation maps to a classified trap, never a
//! host panic.

use flowery_backend::{compile_module, AsmFaultSpec, BackendConfig, Machine};
use flowery_ir::interp::{ExecConfig, ExecStatus, Interpreter, TrapKind};

fn both(src: &str, cfg: &ExecConfig) -> (ExecStatus, ExecStatus) {
    let m = flowery_lang::compile("e", src).unwrap();
    let ir = Interpreter::new(&m).run(cfg, None);
    let prog = compile_module(&m, &BackendConfig::default());
    let asm = Machine::new(&m, &prog).run(cfg, None);
    (ir.status, asm.status)
}

#[test]
fn runaway_recursion_traps_at_both_layers() {
    let src = "int f(int n) { return f(n + 1); }\nint main() { return f(0); }";
    let (ir, asm) = both(src, &ExecConfig::default());
    assert!(matches!(ir, ExecStatus::Trapped(TrapKind::CallDepth | TrapKind::StackOverflow)), "{ir:?}");
    assert!(
        matches!(asm, ExecStatus::Trapped(TrapKind::StackOverflow | TrapKind::CallDepth)),
        "{asm:?}"
    );
}

#[test]
fn infinite_loop_hits_instruction_budget() {
    let src = "int main() { int x = 1; while (x > 0) { x = 1; } return x; }";
    let cfg = ExecConfig { max_dyn_insts: 10_000, ..Default::default() };
    let (ir, asm) = both(src, &cfg);
    assert_eq!(ir, ExecStatus::Trapped(TrapKind::InstLimit));
    assert_eq!(asm, ExecStatus::Trapped(TrapKind::InstLimit));
}

#[test]
fn output_flood_traps() {
    let src = "int main() { int i; for (i = 0; i < 100000; i = i + 1) { output(i); } return 0; }";
    let cfg = ExecConfig { max_output: 4096, ..Default::default() };
    let (ir, asm) = both(src, &cfg);
    assert_eq!(ir, ExecStatus::Trapped(TrapKind::OutputFlood));
    assert_eq!(asm, ExecStatus::Trapped(TrapKind::OutputFlood));
}

#[test]
fn wild_pointer_access_is_a_due() {
    // Out-of-bounds array index on purpose (the language does not bounds
    // check, exactly like C).
    let src = "global int g[2];\nint main() { return g[1000000]; }";
    let (ir, asm) = both(src, &ExecConfig::default());
    assert!(matches!(ir, ExecStatus::Trapped(TrapKind::OobLoad)), "{ir:?}");
    assert!(matches!(asm, ExecStatus::Trapped(TrapKind::OobLoad)), "{asm:?}");
}

#[test]
fn corrupted_return_address_is_contained() {
    // Inject into the call's pushed return address: every outcome must be
    // a classified status (frequently BadControl / weird-but-contained).
    let src = "int f(int x) { return x * 3; }\nint main() { int r = f(7); output(r); return r; }";
    let m = flowery_lang::compile("e", src).unwrap();
    let prog = compile_module(&m, &BackendConfig::default());
    let mach = Machine::new(&m, &prog);
    let golden = mach.run(&ExecConfig::default(), None);
    let exec = ExecConfig::with_budget_for(golden.dyn_insts);
    // Find the call instruction's dynamic site index by sweeping.
    let mut saw_call_injection = false;
    for site in 0..golden.fault_sites {
        for bit in [0u32, 8, 33, 63] {
            let r = mach.run(&exec, Some(AsmFaultSpec::single(site, bit)));
            if let Some(idx) = r.injected_inst {
                if matches!(prog.insts[idx as usize].kind, flowery_backend::AKind::Call { .. }) {
                    saw_call_injection = true;
                    // No panic happened (we are here); status is classified.
                }
            }
        }
    }
    assert!(saw_call_injection, "the sweep must hit the call's return-address push");
}

#[test]
fn every_bit_position_is_safe_on_every_site() {
    // Exhaustive site x selected-bits sweep on a small program, both layers.
    let src = "global float w[3] = {1.5, -2.5, 3.25};\n\
               int main() { float s = 0.0; int i; for (i = 0; i < 3; i = i + 1) { s = s + w[i] * w[i]; } output(s); return int(s); }";
    let m = flowery_lang::compile("e", src).unwrap();
    let interp = Interpreter::new(&m);
    let golden = interp.run(&ExecConfig::default(), None);
    let exec = ExecConfig::with_budget_for(golden.dyn_insts);
    for site in 0..golden.fault_sites {
        for bit in [0u32, 1, 31, 52, 63] {
            let _ = interp.run(&exec, Some(flowery_ir::interp::FaultSpec::single(site, bit)));
            let _ = interp.run(&exec, Some(flowery_ir::interp::FaultSpec::double(site, bit, 63 - bit)));
        }
    }
    let prog = compile_module(&m, &BackendConfig::default());
    let mach = Machine::new(&m, &prog);
    let g = mach.run(&ExecConfig::default(), None);
    for site in (0..g.fault_sites).step_by(2) {
        for bit in [0u32, 7, 31, 63] {
            let _ = mach.run(&exec, Some(AsmFaultSpec::single(site, bit)));
            let _ = mach.run(&exec, Some(AsmFaultSpec::double(site, bit, (bit + 11) % 64)));
        }
    }
}

#[test]
fn double_bit_faults_change_outcome_population() {
    use flowery_inject::{run_asm_campaign, CampaignConfig};
    let m = flowery_workloads::workload("is", flowery_workloads::Scale::Tiny).compile();
    let prog = compile_module(&m, &BackendConfig::default());
    let single = CampaignConfig::with_trials(500);
    let double = CampaignConfig { double_bit: true, ..CampaignConfig::with_trials(500) };
    let rs = run_asm_campaign(&m, &prog, &single);
    let rd = run_asm_campaign(&m, &prog, &double);
    assert_eq!(rs.counts.total(), rd.counts.total());
    // Two flips strictly reduce the chance of a fully benign outcome
    // relative to one flip in expectation (can't assert strictly, but the
    // populations must differ).
    assert_ne!(
        (rs.counts.benign, rs.counts.sdc, rs.counts.due),
        (rd.counts.benign, rd.counts.sdc, rd.counts.due)
    );
}

#[test]
fn detected_status_is_terminal_and_immediate() {
    // A program that calls detect_error through protection: once Detected,
    // output must reflect only what happened before.
    use flowery_passes::{duplicate_module, DupConfig, ProtectionPlan};
    let mut m =
        flowery_lang::compile("e", "int main() { int a = 1; output(a); int b = a + 1; output(b); return b; }").unwrap();
    let plan = ProtectionPlan::full(&m);
    duplicate_module(&mut m, &plan, &DupConfig::default());
    let interp = Interpreter::new(&m);
    let golden = interp.run(&ExecConfig::default(), None);
    for site in 0..golden.fault_sites {
        let r = interp.run(&ExecConfig::default(), Some(flowery_ir::interp::FaultSpec::single(site, 13)));
        if r.status == ExecStatus::Detected {
            assert!(r.output.len() <= golden.output.len(), "a detected run cannot out-produce the golden run");
        }
    }
}
