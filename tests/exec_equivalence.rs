//! Differential tests for the machine-layer execution engines: the
//! threaded-code executor (`compiled`) must be **bit-identical** to the
//! decode-and-dispatch interpreter (`interp`) on every observable stream —
//! status, output, dynamic-instruction/fault-site/cycle counts, injection
//! attribution, and snapshot capture/fast-forward — for every fault model.
//!
//! Two angles:
//! * a property test over random MiniC programs with faults sampled across
//!   effects (bit flips, bursts, flags, memory cells, control-flow edges);
//! * an exhaustive sweep of all 16 workloads x {raw, ID, Flowery} x all
//!   six registered fault models, with snapshots off and on (including a
//!   snapshot set captured by one engine fast-forwarding the other).

mod common;

use flowery_backend::{compile_module, AsmFaultSpec, BackendConfig, ExecMode, Machine};
use flowery_faultmodel::ModelSpec;
use flowery_inject::AsmTrialRunner;
use flowery_ir::interp::{ExecConfig, FaultEffect};
use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use flowery_workloads::{workload, Scale, NAMES};
use proptest::prelude::*;

fn exec_with(mode: ExecMode) -> ExecConfig {
    ExecConfig { executor: mode, ..ExecConfig::default() }
}

/// Assert two [`flowery_backend::MachResult`]s are bit-identical.
macro_rules! assert_same_result {
    ($a:expr, $b:expr, $($ctx:tt)*) => {{
        let (a, b) = (&$a, &$b);
        assert_eq!(a.status, b.status, $($ctx)*);
        assert_eq!(a.output, b.output, $($ctx)*);
        assert_eq!(a.dyn_insts, b.dyn_insts, $($ctx)*);
        assert_eq!(a.fault_sites, b.fault_sites, $($ctx)*);
        assert_eq!(a.cycles, b.cycles, $($ctx)*);
        assert_eq!(a.injected_inst, b.injected_inst, $($ctx)*);
    }};
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, max_shrink_iters: 50, ..ProptestConfig::default() })]

    /// Random programs, faults sampled across the dynamic range and across
    /// every [`FaultEffect`]: the two engines must agree on golden runs,
    /// faulted runs, snapshot goldens, and fast-forwarded trials.
    #[test]
    fn engines_agree_on_random_programs(
        (src, faults, interval) in (
            common::program_strategy(),
            prop::collection::vec((0.0f64..1.0, 0u8..64, 0u8..6), 6..12),
            64u64..512,
        )
    ) {
        let m = flowery_lang::compile("gen", &src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{src}"));
        let prog = compile_module(&m, &BackendConfig::default());
        let mach = Machine::new(&m, &prog);

        let ei = exec_with(ExecMode::Interp);
        let ec = exec_with(ExecMode::Compiled);
        let gi = mach.run(&ei, None);
        let gc = mach.run(&ec, None);
        prop_assert!(gi.status.is_completed(), "golden must complete: {:?}", gi.status);
        assert_same_result!(gi, gc, "golden run\n{}", &src);
        if gi.fault_sites == 0 {
            return Ok(());
        }

        // Tight budget so livelocked trials run it out under BOTH engines.
        let ei = ExecConfig { max_dyn_insts: gi.dyn_insts * 2 + 10_000, ..ei };
        let ec = ExecConfig { max_dyn_insts: gi.dyn_insts * 2 + 10_000, ..ec };
        for &(frac, bit, kind) in &faults {
            let site = ((frac * gi.fault_sites as f64) as u64).min(gi.fault_sites - 1);
            let effect = match kind {
                0 => FaultEffect::Bits,
                1 => FaultEffect::Burst { width: 2 + bit % 7 },
                2 => FaultEffect::Flags,
                3 => FaultEffect::Mem { offset: bit as u64 * 131 },
                4 => FaultEffect::Jump { target: bit as u64 * 17 },
                _ => FaultEffect::Bits,
            };
            let mut spec = AsmFaultSpec::with_effect(site, bit as u32, effect);
            if kind == 5 {
                spec = AsmFaultSpec::double(site, bit as u32, (bit as u32 + 13) % 64);
            }
            let ri = mach.run(&ei, Some(spec));
            let rc = mach.run(&ec, Some(spec));
            assert_same_result!(ri, rc, "fault {spec:?}\n{}", &src);
        }

        // Snapshot capture under each engine yields interchangeable sets;
        // fast-forward through either set matches scratch execution.
        let si = mach.capture_snapshots(&ei, interval);
        let sc = mach.capture_snapshots(&ec, interval);
        assert_same_result!(si.golden(), sc.golden(), "snapshot golden\n{}", &src);
        let mut scratch = flowery_backend::AsmScratch::new();
        for &(frac, bit, _) in faults.iter().take(3) {
            let site = ((frac * gi.fault_sites as f64) as u64).min(gi.fault_sites - 1);
            let spec = AsmFaultSpec::single(site, bit as u32);
            let plain = mach.run(&ec, Some(spec));
            // Cross pair: interp-captured set driving the compiled engine,
            // and vice versa.
            let (a, _) = mach.run_fast_forward(&ec, spec, &si, &mut scratch);
            assert_same_result!(a, plain, "compiled ff through interp set @ site {site}\n{}", &src);
            scratch.recycle_output(a.output);
            let (b, _) = mach.run_fast_forward(&ei, spec, &sc, &mut scratch);
            assert_same_result!(b, plain, "interp ff through compiled set @ site {site}\n{}", &src);
            scratch.recycle_output(b.output);
        }
    }
}

/// Every fault model the build registers, including one parameterized
/// burst width.
fn all_models() -> [ModelSpec; 6] {
    [
        ModelSpec::SingleBitReg,
        ModelSpec::DoubleBitReg,
        ModelSpec::MultiBit(4),
        ModelSpec::FlagsPc,
        ModelSpec::MemCell,
        ModelSpec::ControlFlow,
    ]
}

/// All 16 workloads x {raw, ID, Flowery} x all six fault models, with
/// snapshots off and on. The snapshot set is captured once under the
/// compiled engine and shared with the interp runner, so a set produced by
/// one engine must fast-forward the other bit-identically.
#[test]
fn engines_agree_on_all_workloads_and_models() {
    const TRIALS: u64 = 4;
    const SEED: u64 = 0x00C0_FFEE;
    for name in NAMES {
        let raw = workload(name, Scale::Tiny).compile();
        for variant in ["raw", "id", "flowery"] {
            let mut m = raw.clone();
            if variant != "raw" {
                let plan = ProtectionPlan::full(&m);
                duplicate_module(&mut m, &plan, &DupConfig::default());
            }
            if variant == "flowery" {
                apply_flowery(&mut m, &FloweryConfig::default());
            }
            let prog = compile_module(&m, &BackendConfig::default());

            let ei = exec_with(ExecMode::Interp);
            let ec = exec_with(ExecMode::Compiled);
            let mut interp_plain = AsmTrialRunner::new(&m, &prog, &ei);
            let mut comp_plain = AsmTrialRunner::new(&m, &prog, &ec);
            let mut comp_snap = AsmTrialRunner::new(&m, &prog, &ec);
            comp_snap.enable_snapshots();
            let mut interp_snap = AsmTrialRunner::new(&m, &prog, &ei);
            interp_snap.attach_snapshots(comp_snap.snapshots().expect("snapshots enabled"));

            for model in all_models() {
                for t in 0..TRIALS {
                    let a = interp_plain.run_trial_model(SEED, t, model, &[]);
                    let b = comp_plain.run_trial_model(SEED, t, model, &[]);
                    let c = comp_snap.run_trial_model(SEED, t, model, &[]);
                    let d = interp_snap.run_trial_model(SEED, t, model, &[]);
                    let ctx = format!("{name}/{variant} {model:?} trial {t}");
                    assert_eq!(a.outcome, b.outcome, "{ctx}");
                    assert_eq!(a.injected_inst, b.injected_inst, "{ctx}");
                    assert_eq!(a.ff_insts + a.exec_insts, b.ff_insts + b.exec_insts, "{ctx}");
                    assert_eq!(a.outcome, c.outcome, "{ctx} (compiled+snapshots)");
                    assert_eq!(a.injected_inst, c.injected_inst, "{ctx} (compiled+snapshots)");
                    assert_eq!(a.ff_insts + a.exec_insts, c.ff_insts + c.exec_insts, "{ctx} (compiled+snapshots)");
                    assert_eq!(a.outcome, d.outcome, "{ctx} (interp through compiled set)");
                    assert_eq!(a.injected_inst, d.injected_inst, "{ctx} (interp through compiled set)");
                    assert_eq!(
                        c.ff_insts, d.ff_insts,
                        "{ctx} (both snapshot runners share one set, so they skip identically)"
                    );
                }
            }
        }
    }
}
