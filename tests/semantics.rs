//! Semantic-preservation integration tests: every protection configuration
//! of every benchmark must behave bit-identically to the raw program on
//! fault-free runs, at both layers.

use flowery_backend::{compile_module, BackendConfig, Machine};
use flowery_ir::interp::{ExecConfig, Interpreter};
use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use flowery_workloads::{all_workloads, Scale};

#[test]
fn all_16_workloads_survive_full_protection_and_flowery() {
    for w in all_workloads(Scale::Tiny) {
        let raw = w.compile();
        let golden = Interpreter::new(&raw).run(&ExecConfig::default(), None);
        assert!(golden.status.is_completed(), "{}: {:?}", w.name, golden.status);

        // ID.
        let mut id = raw.clone();
        let plan = ProtectionPlan::full(&id);
        duplicate_module(&mut id, &plan, &DupConfig::default());
        flowery_ir::verify::verify_module(&id).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let r = Interpreter::new(&id).run(&ExecConfig::default(), None);
        assert_eq!(r.status, golden.status, "{} (ID, IR)", w.name);
        assert_eq!(r.output, golden.output, "{} (ID, IR)", w.name);

        // ID at assembly level.
        let prog = compile_module(&id, &BackendConfig::default());
        let r = Machine::new(&id, &prog).run(&ExecConfig::default(), None);
        assert_eq!(r.status, golden.status, "{} (ID, asm)", w.name);
        assert_eq!(r.output, golden.output, "{} (ID, asm)", w.name);

        // ID + Flowery at both layers.
        let mut fl = id.clone();
        apply_flowery(&mut fl, &FloweryConfig::default());
        flowery_ir::verify::verify_module(&fl).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let r = Interpreter::new(&fl).run(&ExecConfig::default(), None);
        assert_eq!(r.status, golden.status, "{} (Flowery, IR)", w.name);
        assert_eq!(r.output, golden.output, "{} (Flowery, IR)", w.name);
        let prog = compile_module(&fl, &BackendConfig::default());
        let r = Machine::new(&fl, &prog).run(&ExecConfig::default(), None);
        assert_eq!(r.status, golden.status, "{} (Flowery, asm)", w.name);
        assert_eq!(r.output, golden.output, "{} (Flowery, asm)", w.name);
    }
}

#[test]
fn partial_protection_preserves_semantics() {
    for w in all_workloads(Scale::Tiny).into_iter().take(6) {
        let raw = w.compile();
        let golden = Interpreter::new(&raw).run(&ExecConfig::default(), None);
        // A synthetic 50% plan: every other duplicable instruction.
        let full = ProtectionPlan::full(&raw);
        let mut plan = ProtectionPlan {
            per_func: vec![Default::default(); raw.functions.len()],
            level: 0.5,
        };
        for (fi, set) in full.per_func.iter().enumerate() {
            let mut v: Vec<_> = set.iter().copied().collect();
            v.sort();
            plan.per_func[fi] = v.into_iter().step_by(2).collect();
        }
        let mut id = raw.clone();
        duplicate_module(&mut id, &plan, &DupConfig::default());
        let mut fl = id.clone();
        apply_flowery(&mut fl, &FloweryConfig::default());
        for (label, m) in [("ID", &id), ("Flowery", &fl)] {
            flowery_ir::verify::verify_module(m).unwrap();
            let r = Interpreter::new(m).run(&ExecConfig::default(), None);
            assert_eq!(r.output, golden.output, "{} ({label})", w.name);
            let prog = compile_module(m, &BackendConfig::default());
            let r = Machine::new(m, &prog).run(&ExecConfig::default(), None);
            assert_eq!(r.output, golden.output, "{} ({label}, asm)", w.name);
        }
    }
}

#[test]
fn backend_ablations_preserve_semantics_on_protected_code() {
    let w = flowery_workloads::workload("needle", Scale::Tiny);
    let raw = w.compile();
    let golden = Interpreter::new(&raw).run(&ExecConfig::default(), None);
    let mut id = raw.clone();
    let plan = ProtectionPlan::full(&id);
    duplicate_module(&mut id, &plan, &DupConfig::default());
    for reg_cache in [false, true] {
        for fold_compares in [false, true] {
            for fuse_cmp_branch in [false, true] {
                let cfg = BackendConfig {
                    reg_cache,
                    fold_compares,
                    fuse_cmp_branch,
                    ..Default::default()
                };
                let prog = compile_module(&id, &cfg);
                let r = Machine::new(&id, &prog).run(&ExecConfig::default(), None);
                assert_eq!(r.status, golden.status, "{cfg:?}");
                assert_eq!(r.output, golden.output, "{cfg:?}");
            }
        }
    }
}
