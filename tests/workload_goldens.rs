//! Pinned golden outputs for every workload at every scale. These protect
//! the experiments from accidental workload drift: any change to a
//! benchmark's algorithm, inputs or the substrate's arithmetic shows up as
//! a golden mismatch here, at both execution layers. Regenerate with
//! `cargo run --release --example regen_goldens` after intentional changes
//! (the table is pinned against the vendored `shims/rand` stream).

use flowery_backend::{compile_module, BackendConfig, Machine};
use flowery_ir::interp::{decode_output, ExecConfig, Interpreter};
use flowery_workloads::{workload, Scale};

const GOLDENS: &[(&str, &str, &str)] = &[
    ("backprop", "Tiny", "f64:-0.5543987570575795"),
    ("bfs", "Tiny", "i64:224 | i64:12"),
    ("pathfinder", "Tiny", "i64:8 | i64:108"),
    ("lud", "Tiny", "f64:234.39095139918317"),
    ("needle", "Tiny", "i64:-2 | i64:-69"),
    ("knn", "Tiny", "f64:213.81392473005948 | i64:8"),
    ("ep", "Tiny", "f64:-7.969907012117699 | f64:-9.807674480687652 | i64:33 | i64:59"),
    ("cg", "Tiny", "f64:0.4915570805974099 | f64:0.000017635760395142048"),
    ("is", "Tiny", "i64:1 | i64:1373"),
    (
        "fft2",
        "Tiny",
        "f64:21.741991157619392 | f64:-0.872619941213306 | f64:-0.13364399614790679",
    ),
    ("quicksort", "Tiny", "i64:1 | i64:-204 | i64:21820"),
    ("basicmath", "Tiny", "i64:100 | f64:22.142138451739996"),
    ("susan", "Tiny", "i64:20 | i64:154"),
    ("crc32", "Tiny", "i64:3969596994"),
    ("stringsearch", "Tiny", "i64:32 | i64:-1"),
    ("patricia", "Tiny", "i64:10 | i64:7 | i64:131"),
    ("backprop", "Standard", "f64:-2.0506563247531346"),
    ("bfs", "Standard", "i64:5409 | i64:48"),
    ("pathfinder", "Standard", "i64:30 | i64:882"),
    ("lud", "Standard", "f64:932.088094929107"),
    ("needle", "Standard", "i64:-2 | i64:-252"),
    ("knn", "Standard", "f64:172.53265710276816 | i64:120"),
    ("ep", "Standard", "f64:-17.21106611520205 | f64:-30.359001669566382 | i64:173 | i64:284"),
    ("cg", "Standard", "f64:-5.528194087646466 | f64:0.00000000000019025440373348158"),
    ("is", "Standard", "i64:1 | i64:30291"),
    (
        "fft2",
        "Standard",
        "f64:172.4779615859399 | f64:5.64962511536589 | f64:-7.467292061887733",
    ),
    ("quicksort", "Standard", "i64:1 | i64:26 | i64:1011185"),
    ("basicmath", "Standard", "i64:1037 | f64:141.19527028601834"),
    ("susan", "Standard", "i64:70 | i64:1460"),
    ("crc32", "Standard", "i64:2417146312"),
    ("stringsearch", "Standard", "i64:110 | i64:-1"),
    ("patricia", "Standard", "i64:40 | i64:28 | i64:465"),
];

fn scale_of(s: &str) -> Scale {
    if s == "Tiny" {
        Scale::Tiny
    } else {
        Scale::Standard
    }
}

#[test]
fn workload_outputs_match_pinned_goldens_at_ir_level() {
    for &(name, scale, want) in GOLDENS {
        let m = workload(name, scale_of(scale)).compile();
        let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
        let got = decode_output(&r.output).join(" | ");
        assert_eq!(got, want, "{name}/{scale} drifted");
    }
}

#[test]
fn workload_outputs_match_pinned_goldens_at_assembly_level() {
    for &(name, scale, want) in GOLDENS {
        let m = workload(name, scale_of(scale)).compile();
        let prog = compile_module(&m, &BackendConfig::default());
        let r = Machine::new(&m, &prog).run(&ExecConfig::default(), None);
        let got = decode_output(&r.output).join(" | ");
        assert_eq!(got, want, "{name}/{scale} drifted (asm)");
    }
}

#[test]
fn goldens_cover_all_workloads_at_both_scales() {
    assert_eq!(GOLDENS.len(), flowery_workloads::NAMES.len() * 2);
    for name in flowery_workloads::NAMES {
        assert!(GOLDENS.iter().any(|&(n, s, _)| n == name && s == "Tiny"), "{name}");
        assert!(GOLDENS.iter().any(|&(n, s, _)| n == name && s == "Standard"), "{name}");
    }
}
