//! Pinned golden outputs for every workload at every scale. These protect
//! the experiments from accidental workload drift: any change to a
//! benchmark's algorithm, inputs or the substrate's arithmetic shows up as
//! a golden mismatch here, at both execution layers.

use flowery_backend::{compile_module, BackendConfig, Machine};
use flowery_ir::interp::{decode_output, ExecConfig, Interpreter};
use flowery_workloads::{workload, Scale};

const GOLDENS: &[(&str, &str, &str)] = &[
    ("backprop", "Tiny", "f64:0.21108013014209054"),
    ("bfs", "Tiny", "i64:195 | i64:12"),
    ("pathfinder", "Tiny", "i64:13 | i64:128"),
    ("lud", "Tiny", "f64:239.80843220955285"),
    ("needle", "Tiny", "i64:-2 | i64:-51"),
    ("knn", "Tiny", "f64:94.2870695882137 | i64:9"),
    ("ep", "Tiny", "f64:-7.969907012117699 | f64:-9.807674480687652 | i64:33 | i64:59"),
    ("cg", "Tiny", "f64:1.048385200697366 | f64:0.0000006830522869719836"),
    ("is", "Tiny", "i64:1 | i64:933"),
    ("fft2", "Tiny", "f64:21.13812004063062 | f64:-1.5659479903316131 | f64:-0.7387146218147043"),
    ("quicksort", "Tiny", "i64:1 | i64:501 | i64:72058"),
    ("basicmath", "Tiny", "i64:100 | f64:22.142138451739996"),
    ("susan", "Tiny", "i64:13 | i64:186"),
    ("crc32", "Tiny", "i64:1446406974"),
    ("stringsearch", "Tiny", "i64:32 | i64:-1"),
    ("patricia", "Tiny", "i64:10 | i64:7 | i64:140"),
    ("backprop", "Standard", "f64:1.1638074195768187"),
    ("bfs", "Standard", "i64:3928 | i64:48"),
    ("pathfinder", "Standard", "i64:29 | i64:879"),
    ("lud", "Standard", "f64:935.4948114135534"),
    ("needle", "Standard", "i64:1 | i64:-228"),
    ("knn", "Standard", "f64:142.08702166693317 | i64:91"),
    ("ep", "Standard", "f64:-17.21106611520205 | f64:-30.359001669566382 | i64:173 | i64:284"),
    ("cg", "Standard", "f64:-3.1115883419514887 | f64:0.00000000000003785880585399702"),
    ("is", "Standard", "i64:1 | i64:29400"),
    ("fft2", "Standard", "f64:163.78502828653637 | f64:-0.4329635605119595 | f64:1.5137082690362256"),
    ("quicksort", "Standard", "i64:1 | i64:38 | i64:1085989"),
    ("basicmath", "Standard", "i64:1037 | f64:141.19527028601834"),
    ("susan", "Standard", "i64:80 | i64:1376"),
    ("crc32", "Standard", "i64:3132796012"),
    ("stringsearch", "Standard", "i64:110 | i64:-1"),
    ("patricia", "Standard", "i64:40 | i64:28 | i64:463"),
];

fn scale_of(s: &str) -> Scale {
    if s == "Tiny" {
        Scale::Tiny
    } else {
        Scale::Standard
    }
}

#[test]
fn workload_outputs_match_pinned_goldens_at_ir_level() {
    for &(name, scale, want) in GOLDENS {
        let m = workload(name, scale_of(scale)).compile();
        let r = Interpreter::new(&m).run(&ExecConfig::default(), None);
        let got = decode_output(&r.output).join(" | ");
        assert_eq!(got, want, "{name}/{scale} drifted");
    }
}

#[test]
fn workload_outputs_match_pinned_goldens_at_assembly_level() {
    for &(name, scale, want) in GOLDENS {
        let m = workload(name, scale_of(scale)).compile();
        let prog = compile_module(&m, &BackendConfig::default());
        let r = Machine::new(&m, &prog).run(&ExecConfig::default(), None);
        let got = decode_output(&r.output).join(" | ");
        assert_eq!(got, want, "{name}/{scale} drifted (asm)");
    }
}

#[test]
fn goldens_cover_all_workloads_at_both_scales() {
    assert_eq!(GOLDENS.len(), flowery_workloads::NAMES.len() * 2);
    for name in flowery_workloads::NAMES {
        assert!(GOLDENS.iter().any(|&(n, s, _)| n == name && s == "Tiny"), "{name}");
        assert!(GOLDENS.iter().any(|&(n, s, _)| n == name && s == "Standard"), "{name}");
    }
}
