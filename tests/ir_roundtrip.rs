//! Print/parse round-trip over every workload: the textual IR emitted by
//! the printer must parse back into a module with identical behaviour at
//! both layers (and identical protection behaviour after duplication).

use flowery_ir::interp::{ExecConfig, Interpreter};
use flowery_ir::printer::print_module;
use flowery_ir::textparse::parse_module;
use flowery_workloads::{all_workloads, Scale};

#[test]
fn all_workloads_round_trip_through_text() {
    for w in all_workloads(Scale::Tiny) {
        let m = w.compile();
        let text = print_module(&m);
        let m2 = parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: {e}\nfirst lines:\n{}", w.name, &text[..text.len().min(600)]));
        flowery_ir::verify::verify_module(&m2).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let r1 = Interpreter::new(&m).run(&ExecConfig::default(), None);
        let r2 = Interpreter::new(&m2).run(&ExecConfig::default(), None);
        assert_eq!(r1.status, r2.status, "{}", w.name);
        assert_eq!(r1.output, r2.output, "{}", w.name);
        assert_eq!(r1.dyn_insts, r2.dyn_insts, "{}", w.name);
        assert_eq!(r1.fault_sites, r2.fault_sites, "{}", w.name);
    }
}

#[test]
fn protected_module_round_trips() {
    use flowery_passes::{duplicate_module, DupConfig, ProtectionPlan};
    let mut m = flowery_workloads::workload("is", Scale::Tiny).compile();
    let plan = ProtectionPlan::full(&m);
    duplicate_module(&mut m, &plan, &DupConfig::default());
    let text = print_module(&m);
    let m2 = parse_module(&text).expect("protected module parses");
    let r1 = Interpreter::new(&m).run(&ExecConfig::default(), None);
    let r2 = Interpreter::new(&m2).run(&ExecConfig::default(), None);
    assert_eq!(r1.status, r2.status);
    assert_eq!(r1.output, r2.output);
    // Note: IrRole markers are printed as comments and not round-tripped;
    // behaviour (including checker firing) is, because the structure is.
    let prog1 = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
    let prog2 = flowery_backend::compile_module(&m2, &flowery_backend::BackendConfig::default());
    let a1 = flowery_backend::Machine::new(&m, &prog1).run(&ExecConfig::default(), None);
    let a2 = flowery_backend::Machine::new(&m2, &prog2).run(&ExecConfig::default(), None);
    assert_eq!(a1.status, a2.status);
    assert_eq!(a1.output, a2.output);
}

#[test]
fn machine_listing_prints_for_all_workloads() {
    for w in all_workloads(Scale::Tiny) {
        let m = w.compile();
        let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let listing = flowery_backend::print_program(&prog);
        assert!(listing.contains("main:"), "{}", w.name);
        assert!(listing.contains("push %rbp"), "{}", w.name);
        assert!(listing.lines().count() > prog.insts.len(), "{}", w.name);
    }
}
