//! Persistence round-trip for snapshot sets: capture → serialize →
//! deserialize → fast-forward must be **bit-identical** to fast-forward
//! off the freshly captured set (and hence to scratch execution, which
//! `snapshot_equivalence.rs` pins) at every sampled fault site, at both
//! layers. Corrupt, truncated, or mismatched files must be rejected with
//! an error — never a panic, never a silently wrong set.

use flowery_ir::interp::{ExecConfig, FaultSpec, Interpreter, IrScratch};
use proptest::prelude::*;

fn program(outer: u32, inner: u32, modulus: u32) -> String {
    format!(
        "global int arr[16] = {{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}};\n\
         int work(int x) {{\n\
           int j; int t = x;\n\
           for (j = 0; j < {inner}; j = j + 1) {{\n\
             t = t + arr[((t + j) % 16 + 16) % 16] * (j + 1);\n\
             arr[(t % 16 + 16) % 16] = t % {modulus};\n\
           }}\n\
           return t;\n\
         }}\n\
         int main() {{\n\
           int i; int s = 0;\n\
           for (i = 0; i < {outer}; i = i + 1) {{\n\
             s = s + work(i);\n\
             if (s % 5 == 0) {{ output(s); }}\n\
           }}\n\
           output(s);\n\
           return s & 65535;\n\
         }}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, max_shrink_iters: 50, ..ProptestConfig::default() })]

    #[test]
    fn reloaded_sets_fast_forward_bit_identically(
        ((outer, inner), modulus, bit) in ((10u32..60, 4u32..20), 97u32..9973, 0u8..64)
    ) {
        let src = program(outer, inner, modulus);
        let m = flowery_lang::compile("snapio", &src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{src}"));
        let exec = ExecConfig::default();

        // IR layer: every Nth fault site, spanning the whole dynamic range.
        let interp = Interpreter::new(&m);
        let set = interp.capture_snapshots_auto(&exec);
        let hash = 0xD15C0 ^ (u64::from(outer) << 32) ^ u64::from(inner);
        let bytes = set.to_bytes(hash);
        let loaded = flowery_ir::interp::IrSnapshotSet::from_bytes(&bytes, &m, hash);
        prop_assert!(loaded.is_ok(), "round trip must load: {:?}", loaded.err());
        let loaded = loaded.unwrap();
        prop_assert_eq!(loaded.golden(), set.golden(), "golden run survives the round trip");
        prop_assert_eq!(loaded.len(), set.len());
        let sites = set.golden().fault_sites;
        let step = (sites / 24).max(1);
        let mut scratch = IrScratch::new();
        for site in (0..sites).step_by(step as usize) {
            let spec = FaultSpec::single(site, u32::from(bit));
            let (fresh, s1) = interp.run_fast_forward(&exec, spec, &set, &mut scratch);
            let (reload, s2) = interp.run_fast_forward(&exec, spec, &loaded, &mut scratch);
            prop_assert_eq!(s1, s2, "skipped prefix @ site {}", site);
            prop_assert_eq!(&fresh, &reload, "IR trial @ site {} bit {}\n{}", site, bit, &src);
        }

        // Assembly layer.
        let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
        let mach = flowery_backend::Machine::new(&m, &prog);
        let set = mach.capture_snapshots_auto(&exec);
        let bytes = set.to_bytes(hash);
        let loaded = flowery_backend::AsmSnapshotSet::from_bytes(&bytes, &m, &prog, hash);
        prop_assert!(loaded.is_ok(), "asm round trip must load: {:?}", loaded.err());
        let loaded = loaded.unwrap();
        prop_assert_eq!(loaded.golden(), set.golden());
        let sites = set.golden().fault_sites;
        let step = (sites / 24).max(1);
        let mut scratch = flowery_backend::AsmScratch::new();
        for site in (0..sites).step_by(step as usize) {
            let spec = flowery_backend::AsmFaultSpec::single(site, u32::from(bit));
            let (fresh, s1) = mach.run_fast_forward(&exec, spec, &set, &mut scratch);
            let (reload, s2) = mach.run_fast_forward(&exec, spec, &loaded, &mut scratch);
            prop_assert_eq!(s1, s2, "asm skipped prefix @ site {}", site);
            prop_assert_eq!(&fresh, &reload, "asm trial @ site {} bit {}\n{}", site, bit, &src);
        }
    }
}

/// Every single-byte corruption and every truncation must fail the
/// checksum (or a later validation) — `from_bytes` returns `Err`, it
/// never panics and never yields a set.
#[test]
fn corrupted_and_mismatched_files_are_rejected() {
    let src = program(20, 6, 251);
    let m = flowery_lang::compile("snapio", &src).unwrap();
    let exec = ExecConfig::default();
    let interp = Interpreter::new(&m);
    let set = interp.capture_snapshots_auto(&exec);
    let bytes = set.to_bytes(42);

    // Wrong module hash: the file is intact but belongs to another program.
    assert!(flowery_ir::interp::IrSnapshotSet::from_bytes(&bytes, &m, 43).is_err());

    // Single-byte flips anywhere in the file (header, page data, checksum).
    for i in (0..bytes.len()).step_by(13) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        assert!(
            flowery_ir::interp::IrSnapshotSet::from_bytes(&bad, &m, 42).is_err(),
            "flip at byte {i} must be rejected"
        );
    }

    // Truncations, including mid-header and the empty file.
    for len in [0, 4, 8, 11, 20, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            flowery_ir::interp::IrSnapshotSet::from_bytes(&bytes[..len], &m, 42).is_err(),
            "truncation to {len} bytes must be rejected"
        );
    }

    // A bumped version field (bytes 8..12, after the 8-byte magic) must be
    // rejected even with the checksum recomputed to match.
    let mut vbump = bytes.clone();
    vbump[8] = vbump[8].wrapping_add(1);
    let body_len = vbump.len() - 8;
    let sum = {
        // fnv1a-64, the same checksum the writer uses.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &vbump[..body_len] {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    };
    vbump[body_len..].copy_from_slice(&sum.to_le_bytes());
    let err = flowery_ir::interp::IrSnapshotSet::from_bytes(&vbump, &m, 42).unwrap_err();
    assert!(err.contains("version"), "want a version error, got: {err}");

    // Same checks on the assembly format.
    let prog = flowery_backend::compile_module(&m, &flowery_backend::BackendConfig::default());
    let mach = flowery_backend::Machine::new(&m, &prog);
    let set = mach.capture_snapshots_auto(&exec);
    let bytes = set.to_bytes(42);
    assert!(flowery_backend::AsmSnapshotSet::from_bytes(&bytes, &m, &prog, 43).is_err());
    for i in (0..bytes.len()).step_by(13) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        assert!(
            flowery_backend::AsmSnapshotSet::from_bytes(&bad, &m, &prog, 42).is_err(),
            "asm flip at byte {i} must be rejected"
        );
    }
    for len in [0, 4, 8, 11, 20, bytes.len() / 2, bytes.len() - 1] {
        assert!(flowery_backend::AsmSnapshotSet::from_bytes(&bytes[..len], &m, &prog, 42).is_err());
    }
}
