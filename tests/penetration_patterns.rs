//! Structural integration tests: the five penetration signatures must be
//! present in compiled protected code (and absent/reduced after Flowery),
//! independently of fault-injection statistics.

use flowery_backend::mir::{AKind, AOp};
use flowery_backend::{compile_module, AsmRole, BackendConfig};
use flowery_ir::{InstKind, Module};
use flowery_passes::{apply_flowery, duplicate_module, DupConfig, FloweryConfig, ProtectionPlan};
use flowery_workloads::{workload, Scale};

fn protected(name: &str) -> Module {
    let mut m = workload(name, Scale::Tiny).compile();
    let plan = ProtectionPlan::full(&m);
    duplicate_module(&mut m, &plan, &DupConfig::default());
    m
}

fn count_store_reloads(m: &Module) -> usize {
    let prog = compile_module(m, &BackendConfig::default());
    prog.insts
        .iter()
        .filter(|i| {
            i.role == AsmRole::OperandReload
                && matches!(i.kind, AKind::Mov { src: AOp::Mem(_), dst: AOp::Reg(_), .. })
                && i.prov
                    .is_some_and(|(f, id)| matches!(m.functions[f.index()].inst(id).kind, InstKind::Store { .. }))
        })
        .count()
}

#[test]
fn store_penetration_sites_exist_and_shrink_with_eager_store() {
    for name in ["is", "pathfinder", "crc32"] {
        let m = protected(name);
        let before = count_store_reloads(&m);
        assert!(before > 0, "{name}: protected code must have store-feeding reloads");
        let mut fixed = m.clone();
        let stats = apply_flowery(&mut fixed, &FloweryConfig::default());
        assert!(stats.eager_stores > 0, "{name}");
        let after = count_store_reloads(&fixed);
        assert!(after < before, "{name}: {after} !< {before}");
    }
}

#[test]
fn branch_penetration_tests_exist_in_protected_code() {
    for name in ["quicksort", "needle"] {
        let m = protected(name);
        let prog = compile_module(&m, &BackendConfig::default());
        let tests = prog
            .insts
            .iter()
            .filter(|i| i.role == AsmRole::FlagSet && matches!(i.kind, AKind::Test { .. }))
            .count();
        assert!(tests > 0, "{name}: checker splits must force test-based branches");
    }
}

#[test]
fn comparison_checkers_fold_away_without_anti_cmp() {
    use flowery_passes::flowery::anti_cmp::surviving_compare_checkers;
    for name in ["bfs", "quicksort"] {
        let m = protected(name);
        let surviving = surviving_compare_checkers(&m);
        assert_eq!(surviving, 0, "{name}: plain ID comparison checkers must all fold");
        let mut fixed = m.clone();
        let stats = apply_flowery(&mut fixed, &FloweryConfig::default());
        assert!(stats.isolated_compares > 0, "{name}");
        assert!(
            surviving_compare_checkers(&fixed) > 0,
            "{name}: anti-cmp must preserve comparison checkers through folding"
        );
    }
}

#[test]
fn call_and_mapping_sites_exist_and_flowery_does_not_touch_them() {
    let m = protected("quicksort"); // recursive: plenty of calls
    let count = |m: &Module, role: AsmRole| {
        compile_module(m, &BackendConfig::default())
            .insts
            .iter()
            .filter(|i| i.role == role)
            .count()
    };
    let args_before = count(&m, AsmRole::ArgMove);
    let prologue_before = count(&m, AsmRole::Prologue);
    assert!(args_before > 0);
    assert!(prologue_before > 0);
    let mut fixed = m.clone();
    apply_flowery(&mut fixed, &FloweryConfig::default());
    // Flowery has no call/mapping patch (paper §6.3): those sites remain.
    assert_eq!(count(&fixed, AsmRole::ArgMove), args_before);
    assert_eq!(count(&fixed, AsmRole::Prologue), prologue_before);
}

#[test]
fn asm_fault_sites_exceed_ir_fault_sites_for_all_benchmarks() {
    use flowery_backend::Machine;
    use flowery_ir::interp::{ExecConfig, Interpreter};
    for w in flowery_workloads::all_workloads(Scale::Tiny) {
        let m = w.compile();
        let ir = Interpreter::new(&m).run(&ExecConfig::default(), None);
        let prog = compile_module(&m, &BackendConfig::default());
        let asm = Machine::new(&m, &prog).run(&ExecConfig::default(), None);
        assert!(
            asm.fault_sites > ir.fault_sites,
            "{}: asm {} vs IR {}",
            w.name,
            asm.fault_sites,
            ir.fault_sites
        );
    }
}

#[test]
fn reg_cache_ablation_removes_eager_store_benefit() {
    // DESIGN.md ablation 1: with the register cache off, eager store cannot
    // remove reload movs (every operand reloads regardless).
    let m = protected("is");
    let mut fixed = m.clone();
    apply_flowery(&mut fixed, &FloweryConfig { branch_check: false, anti_cmp: false, eager_store: true });
    let no_cache = BackendConfig { reg_cache: false, ..Default::default() };
    let count = |m: &Module, cfg: &BackendConfig| {
        compile_module(m, cfg)
            .insts
            .iter()
            .filter(|i| {
                i.role == AsmRole::OperandReload
                    && i.prov
                        .is_some_and(|(f, id)| matches!(m.functions[f.index()].inst(id).kind, InstKind::Store { .. }))
            })
            .count()
    };
    // With the cache: eager store removes reloads (tested above). Without
    // the cache, the reload count is identical before/after the patch —
    // static emission always reloads.
    assert_eq!(count(&m, &no_cache), count(&fixed, &no_cache));
}
